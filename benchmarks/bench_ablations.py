"""EXP-A1/A2/A3 — ablation studies beyond the paper's figures.

* A1: how much of BSA's advantage over the two-phase scheduler comes from
  joint assignment as communication latency grows;
* A2: the paper's literal Figure 6 test (cycneeded < II) vs the prose
  reading (cycneeded <= MII of the unrolled loop);
* A3: SMS ordering vs plain topological ordering inside BSA.
"""

from conftest import save_result

from repro.experiments import (
    run_ordering_ablation,
    run_selective_rule_ablation,
    run_singlepass_ablation,
)
from repro.perf import format_table


def test_ablation_singlepass(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_singlepass_ablation, args=(ctx,), rounds=1, iterations=1
    )
    by = {(p.bus_latency, p.algorithm): p.relative_ipc for p in points}
    # single-pass at least matches two-phase at every latency
    for latency in (1, 2, 4):
        assert by[(latency, "bsa")] >= by[(latency, "two-phase")] - 0.015
    rows = [
        {"bus_latency": p.bus_latency, "algorithm": p.algorithm,
         "relative_ipc": p.relative_ipc}
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_singlepass.txt",
        format_table(rows, title="A1: single-pass vs two-phase (4c, 1 bus)"),
    )


def test_ablation_selective_rule(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_selective_rule_ablation, args=(ctx,), rounds=1, iterations=1
    )
    rows = [
        {
            "rule": p.rule,
            "buses": p.n_buses,
            "bus_latency": p.bus_latency,
            "mean_ipc": p.mean_ipc,
            "unrolled_loops": p.unrolled_loops,
            "total_ops": p.total_ops,
        }
        for p in points
    ]
    # both rules must produce complete results on every scenario
    assert len(points) == 6
    save_result(
        results_dir,
        "ablation_selective_rule.txt",
        format_table(rows, title="A2: Figure 6 decision rule variants (4c)"),
    )


def test_ablation_ordering(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_ordering_ablation, args=(ctx,), rounds=1, iterations=1
    )
    by = {(p.n_clusters, p.ordering): p.relative_ipc for p in points}
    # SMS ordering should not lose to plain topological ordering
    for n_clusters in (2, 4):
        assert by[(n_clusters, "sms")] >= by[(n_clusters, "topological")] - 0.03
    rows = [
        {"clusters": p.n_clusters, "ordering": p.ordering,
         "relative_ipc": p.relative_ipc}
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_ordering.txt",
        format_table(rows, title="A3: BSA node ordering (1 bus, latency 1)"),
    )
