"""EXP-A4/A5/A6 — extended ablations.

* A4: circular vs least-loaded default-cluster rotation in BSA (the
  paper's Section 5.1 mentions both);
* A5: unroll-factor sweep — is U = n_clusters the right choice?
* A6: memory-stall sensitivity of the clustered/unified IPC gap
  (extension; the paper assumes perfect memory).
"""

from conftest import save_result

from repro.experiments import (
    run_default_cluster_ablation,
    run_stall_sensitivity,
    run_unroll_factor_sweep,
)
from repro.perf import format_table


def test_ablation_default_cluster(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_default_cluster_ablation, args=(ctx,), rounds=1, iterations=1
    )
    rows = [
        {
            "clusters": p.n_clusters,
            "policy": p.policy_label,
            "relative_ipc": p.relative_ipc,
        }
        for p in points
    ]
    # both policies must stay in a sane band; neither collapses
    for p in points:
        assert p.relative_ipc > 0.5
    save_result(
        results_dir,
        "ablation_default_cluster.txt",
        format_table(rows, title="A4: default-cluster policy (unroll-all)"),
    )


def test_ablation_unroll_factor(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_unroll_factor_sweep, args=(ctx,), rounds=1, iterations=1
    )
    by_factor = {p.factor: p for p in points}
    # U = n_clusters (4) beats no unrolling on the 4-cluster machine
    assert by_factor[4].mean_ipc > by_factor[1].mean_ipc
    # U = 2 sits between
    assert by_factor[2].mean_ipc >= by_factor[1].mean_ipc - 0.05
    rows = [
        {
            "factor": p.factor,
            "mean_ipc": p.mean_ipc,
            "unschedulable_loops": p.failed_loops,
        }
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_unroll_factor.txt",
        format_table(rows, title="A5: unroll factor sweep (4c, 1 bus, latency 1)"),
    )


def test_ablation_stall_sensitivity(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_stall_sensitivity, args=(ctx,), rounds=1, iterations=1
    )
    # stalls hit both machines equally -> the ratio drifts towards 1.0
    base = points[0].relative_ipc
    worst = points[-1].relative_ipc
    assert abs(worst - 1.0) <= abs(base - 1.0) + 0.02
    rows = [
        {
            "miss_rate": p.miss_rate,
            "miss_penalty": p.miss_penalty,
            "relative_ipc": p.relative_ipc,
        }
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_stalls.txt",
        format_table(
            rows, title="A6: memory-stall sensitivity (4c/1bus, selective unroll)"
        ),
    )
