"""EXP-A7/A8 — substrate ablations.

* A7: per-cluster register-file sweep — where the no-spill pressure wall
  sits relative to the paper's 16 registers/cluster;
* A8: modulo scheduling vs one-iteration list scheduling — the gap that
  motivates software pipelining in the first place.
"""

from conftest import save_result

from repro.experiments import run_pipelining_gain, run_register_sweep
from repro.perf import format_table
from repro.workloads.specfp import build_program

#: A7 uses a 4-program sub-suite: the sweep re-schedules everything per
#: register size, and four programs capture the pressure spectrum.
SWEEP_PROGRAMS = ("tomcatv", "swim", "applu", "fpppp")


def test_ablation_register_sweep(benchmark, results_dir):
    suite = [build_program(name) for name in SWEEP_PROGRAMS]
    points = benchmark.pedantic(
        run_register_sweep, args=(suite,), rounds=1, iterations=1
    )
    from repro.core.selective import UnrollPolicy

    by = {(p.regs_per_cluster, p.policy): p for p in points}
    # IPC grows (weakly) with the file size
    for policy in (UnrollPolicy.NONE, UnrollPolicy.SELECTIVE):
        assert by[(32, policy)].mean_ipc >= by[(8, policy)].mean_ipc - 0.05
    # the paper's 16 regs/cluster sits above the collapse region
    assert by[(16, UnrollPolicy.SELECTIVE)].mean_ipc > 0.8 * by[
        (32, UnrollPolicy.SELECTIVE)
    ].mean_ipc
    rows = [
        {
            "regs_per_cluster": p.regs_per_cluster,
            "policy": str(p.policy),
            "mean_ipc": p.mean_ipc,
            "fallback_loops": p.fallback_loops,
        }
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_register_sweep.txt",
        format_table(rows, title="A7: register-file sweep (4c, 1 bus, latency 1)"),
    )


def test_ablation_pipelining_gain(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_pipelining_gain, args=(ctx,), rounds=1, iterations=1
    )
    # software pipelining wins on every program, usually by a lot
    for p in points:
        assert p.gain > 1.5, p.program
    rows = [
        {
            "program": p.program,
            "list_ipc": p.list_ipc,
            "modulo_ipc": p.modulo_ipc,
            "gain": p.gain,
        }
        for p in points
    ]
    save_result(
        results_dir,
        "ablation_pipelining_gain.txt",
        format_table(
            rows, title="A8: modulo scheduling vs list scheduling (4c/1bus)"
        ),
    )
