"""EXP-F10 — Figure 10: static code size under the unrolling policies.

Paper shape: NOP padding grows as the fabric starves when not unrolling;
blanket unrolling multiplies useful code by the unroll factor; selective
unrolling costs clearly less than blanket unrolling, with the biggest
savings on high-bandwidth fabrics where few loops are bus limited.
"""

from conftest import save_result

from repro.core.selective import UnrollPolicy
from repro.experiments import fig10_rows, run_fig10
from repro.perf import format_table


def _pt(points, n_clusters, n_buses, latency, policy):
    return next(
        p
        for p in points
        if p.n_clusters == n_clusters
        and p.n_buses == n_buses
        and p.bus_latency == latency
        and p.policy is policy
    )


def test_fig10(benchmark, ctx, results_dir):
    points = benchmark.pedantic(run_fig10, args=(ctx,), rounds=1, iterations=1)

    for n_clusters in (2, 4):
        none_fast = _pt(points, n_clusters, 2, 1, UnrollPolicy.NONE)
        all_fast = _pt(points, n_clusters, 2, 1, UnrollPolicy.ALL)
        sel_fast = _pt(points, n_clusters, 2, 1, UnrollPolicy.SELECTIVE)

        # 1. blanket unrolling costs clearly more useful code (the kernel
        # carries factor-times the ops; shallower pipelines claw some back)
        growth = 1.25 if n_clusters == 2 else 1.5
        assert all_fast.useful_ops_ratio > growth * none_fast.useful_ops_ratio
        # 2. selective stays below blanket unrolling
        assert sel_fast.useful_ops_ratio < all_fast.useful_ops_ratio
        assert sel_fast.total_ops_ratio < all_fast.total_ops_ratio
        # 3. savings shrink when the fabric starves (more loops unroll)
        sel_starved = _pt(points, n_clusters, 1, 4, UnrollPolicy.SELECTIVE)
        all_starved = _pt(points, n_clusters, 1, 4, UnrollPolicy.ALL)
        saving_fast = all_fast.useful_ops_ratio - sel_fast.useful_ops_ratio
        saving_starved = all_starved.useful_ops_ratio - sel_starved.useful_ops_ratio
        assert saving_fast >= saving_starved - 0.05

    save_result(
        results_dir,
        "fig10.txt",
        format_table(
            fig10_rows(points),
            title=(
                "Figure 10: code size normalised to unified/no-unroll "
                "(total = useful + NOP)"
            ),
        ),
    )
