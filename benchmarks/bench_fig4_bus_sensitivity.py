"""EXP-F4 — Figure 4: relative IPC vs number of buses, BSA vs two-phase.

Paper shape: BSA (single-pass assign-and-schedule) above N&E (two-phase)
across the sweep — about 7% at the N&E configurations (2c/2b, 4c/4b,
latency 1); both approach unified parity as buses grow; both degrade as
buses shrink or slow, the two-phase approach faster.
"""

from conftest import save_result

from repro.core.selective import UnrollPolicy
from repro.experiments import fig4_rows, run_fig4
from repro.perf import format_table

#: trimmed sweep keeps the bench under a few minutes while covering the
#: paper's interesting region (scarce buses) and the saturation end.
BUS_SWEEP = (1, 2, 4, 8)


def _points_by(points, **filters):
    out = []
    for p in points:
        if all(getattr(p, k) == v for k, v in filters.items()):
            out.append(p)
    return out


def test_fig4(benchmark, ctx, results_dir):
    points = benchmark.pedantic(
        run_fig4, args=(ctx,), kwargs={"bus_sweep": BUS_SWEEP}, rounds=1, iterations=1
    )

    # --- paper-shape assertions -------------------------------------
    for n_clusters in (2, 4):
        for latency in (1, 2):
            bsa = {
                p.n_buses: p.relative_ipc
                for p in _points_by(
                    points, n_clusters=n_clusters, algorithm="bsa", bus_latency=latency
                )
            }
            nee = {
                p.n_buses: p.relative_ipc
                for p in _points_by(
                    points,
                    n_clusters=n_clusters,
                    algorithm="two-phase",
                    bus_latency=latency,
                )
            }
            # 1. more buses never hurt much (monotone-ish recovery)
            assert bsa[max(BUS_SWEEP)] >= bsa[1] - 0.02
            # 2. plenty of buses approaches unified parity for BSA
            assert bsa[max(BUS_SWEEP)] > 0.85
            # 3. single-pass at least matches two-phase on average
            bsa_mean = sum(bsa.values()) / len(bsa)
            nee_mean = sum(nee.values()) / len(nee)
            assert bsa_mean >= nee_mean - 0.01

    # 4. the N&E configurations of the paper (latency 1): BSA wins
    for n_clusters in (2, 4):
        at_nee_config = n_clusters  # 2c/2b and 4c/4b in the paper
        bus = 2 if n_clusters == 2 else 4
        bsa_pt = _points_by(
            points, n_clusters=n_clusters, algorithm="bsa", bus_latency=1, n_buses=bus
        )[0]
        nee_pt = _points_by(
            points,
            n_clusters=n_clusters,
            algorithm="two-phase",
            bus_latency=1,
            n_buses=bus,
        )[0]
        assert bsa_pt.relative_ipc >= nee_pt.relative_ipc - 0.01

    save_result(
        results_dir,
        "fig4.txt",
        format_table(
            fig4_rows(points),
            title="Figure 4: relative IPC (clustered/unified) vs number of buses",
        ),
    )
