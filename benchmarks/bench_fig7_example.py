"""EXP-F7 — Figure 7: the unrolling walk-through examples.

Paper numbers for the 6-node graph: ResMII = ceil(6/4) = 2,
RecMII = ceil(3/2) = 2, non-unrolled schedule settles at II = 3 because
the single bus saturates; unrolling by 2 hides the communication latency.
"""

from conftest import save_result

from repro.experiments import fig7_rows, run_fig7, run_fig7_ladder
from repro.perf import format_table


def test_fig7_paper_graph(benchmark, results_dir):
    case = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    assert case.res_mii == 2
    assert case.rec_mii == 2
    assert case.unified_schedule.ii == 2
    assert case.base_schedule.ii == 3  # the paper's bus-limited II
    assert case.base_schedule.was_bus_limited
    assert case.unrolled_ii_per_iteration <= 2.0  # parity or better
    save_result(
        results_dir,
        "fig7_paper_graph.txt",
        format_table(fig7_rows(case), title="Figure 7 (paper 6-node graph)"),
    )


def test_fig7_ladder(benchmark, results_dir):
    case = benchmark.pedantic(run_fig7_ladder, rounds=1, iterations=1)
    assert case.unified_schedule.ii == 3
    assert case.base_schedule.ii == 6  # 2x degradation without unrolling
    assert case.unrolled_schedule.ii == 6  # parity: 3 per source iteration
    assert case.unrolled_schedule.communication_count == 0
    save_result(
        results_dir,
        "fig7_ladder.txt",
        format_table(fig7_rows(case), title="Figure 7 (ladder variant, bus latency 2)"),
    )
