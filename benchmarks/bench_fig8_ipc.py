"""EXP-F8 — Figure 8: per-program IPC under the three unrolling policies.

Paper shape: without unrolling, clustered IPC falls as buses shrink or
slow; unrolling all loops recovers to roughly unified parity (sometimes
above); selective unrolling tracks full unrolling closely; tomcatv is the
worst 4-cluster unrolling case.
"""

from conftest import save_result

from repro.core.selective import UnrollPolicy
from repro.experiments import average_ipc, fig8_rows, run_fig8
from repro.perf import format_table


def _mean(points, n_clusters, n_buses, latency, policy):
    vals = [
        p.ipc
        for p in points
        if p.n_clusters == n_clusters
        and p.n_buses == n_buses
        and p.bus_latency == latency
        and p.policy is policy
    ]
    return sum(vals) / len(vals)


def test_fig8(benchmark, ctx, results_dir):
    points = benchmark.pedantic(run_fig8, args=(ctx,), rounds=1, iterations=1)

    unified_ipc = {
        p.program: p.ipc for p in points if p.n_clusters == 1
    }
    mean_unified = sum(unified_ipc.values()) / len(unified_ipc)

    for n_clusters in (2, 4):
        # 1. NU degrades with fewer buses and higher latency
        nu_good = _mean(points, n_clusters, 2, 1, UnrollPolicy.NONE)
        nu_bad = _mean(points, n_clusters, 1, 4, UnrollPolicy.NONE)
        assert nu_bad < nu_good
        # 2. unrolling recovers to near (or above) unified on the fast fabric
        for policy in (UnrollPolicy.ALL, UnrollPolicy.SELECTIVE):
            rec = _mean(points, n_clusters, 1, 1, policy)
            assert rec / mean_unified > 0.9, (n_clusters, policy)
        # 3. unrolled configurations are less sensitive to the fabric
        nu_spread = nu_good - nu_bad
        su_spread = _mean(points, n_clusters, 2, 1, UnrollPolicy.SELECTIVE) - _mean(
            points, n_clusters, 1, 4, UnrollPolicy.SELECTIVE
        )
        assert su_spread < nu_spread
        # 4. selective tracks full unrolling
        for n_buses in (1, 2):
            for latency in (1, 2, 4):
                a = _mean(points, n_clusters, n_buses, latency, UnrollPolicy.ALL)
                s = _mean(points, n_clusters, n_buses, latency, UnrollPolicy.SELECTIVE)
                assert abs(a - s) / a < 0.15

    # 5. tomcatv is among the weakest unrolling beneficiaries at 4 clusters
    tomcatv_ratio = next(
        p.ipc
        for p in points
        if p.program == "tomcatv"
        and p.n_clusters == 4
        and p.n_buses == 1
        and p.bus_latency == 1
        and p.policy is UnrollPolicy.ALL
    ) / unified_ipc["tomcatv"]
    others = [
        next(
            p.ipc
            for p in points
            if p.program == name
            and p.n_clusters == 4
            and p.n_buses == 1
            and p.bus_latency == 1
            and p.policy is UnrollPolicy.ALL
        )
        / unified_ipc[name]
        for name in unified_ipc
        if name != "tomcatv"
    ]
    assert tomcatv_ratio <= sorted(others)[len(others) // 2]  # below the median

    text = format_table(
        fig8_rows(points), title="Figure 8: IPC per program and scenario"
    )
    text += "\n\n" + format_table(
        average_ipc(points), title="Figure 8: suite-average IPC per scenario"
    )
    save_result(results_dir, "fig8.txt", text)
