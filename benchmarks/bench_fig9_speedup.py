"""EXP-F9 — Figure 9: cycle-time-aware speed-up over the unified machine.

Paper headline: every clustered configuration outperforms the unified one
once the clock is factored in; the best is 4-cluster / 1 bus / selective
unrolling at ~3.6x.  Reproduced: same winner at ~3.5x.
"""

from conftest import save_result

from repro.experiments import best_speedup, fig9_rows, run_fig9
from repro.perf import format_table


def test_fig9(benchmark, ctx, results_dir):
    points = benchmark.pedantic(run_fig9, args=(ctx,), rounds=1, iterations=1)

    # 1. every clustered configuration beats the unified machine
    for p in points:
        assert p.report.speedup > 1.0, (p.n_clusters, p.n_buses, p.scenario)

    # 2. selective unrolling helps at every configuration
    by_key = {(p.n_clusters, p.n_buses, p.scenario): p.report.speedup for p in points}
    for n_clusters in (2, 4):
        for n_buses in (1, 2):
            assert (
                by_key[(n_clusters, n_buses, "SU")]
                >= by_key[(n_clusters, n_buses, "NU")]
            )

    # 3. the winner is the paper's: 4-cluster, 1 bus, selective unrolling,
    #    in the 3.3x-3.8x band around the paper's 3.6x
    best = best_speedup(points)
    assert best.n_clusters == 4
    assert best.scenario == "SU"
    assert 3.3 <= best.report.speedup <= 3.8

    save_result(
        results_dir,
        "fig9.txt",
        format_table(
            fig9_rows(points),
            title="Figure 9: speed-up over unified (cycle time factored in)",
        )
        + f"\nbest: {best.n_clusters}-cluster / {best.n_buses} bus / "
        f"{best.scenario} -> {best.report.speedup:.2f}x (paper: 3.6x)",
    )
