"""Classic-kernels study: the Livermore loops on the paper's machines.

Hand-written kernels with exactly known dependence structure, scheduled on
all three Table-1 machines with and without selective unrolling: the
recurrence-bound kernels (ll3, ll5, ll11) must be immune to unrolling,
the parallel ones must recover unified parity on the clustered machines.
"""

from conftest import save_result

from repro.arch.configs import (
    four_cluster_config,
    two_cluster_config,
    unified_config,
)
from repro.core.bsa import BsaScheduler
from repro.core.selective import UnrollPolicy, schedule_with_policy
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.perf import format_table
from repro.workloads.livermore import LIVERMORE_KERNELS, RECURRENCE_BOUND


def run_livermore_study():
    unified = unified_config()
    machines = (two_cluster_config(1, 1), four_cluster_config(1, 1))
    rows = []
    for name, build in sorted(LIVERMORE_KERNELS.items()):
        graph = build()
        u = UnifiedScheduler(unified).schedule(graph)
        verify_schedule(u)
        row = {"kernel": name, "ops": len(graph), "unified_ii": u.ii}
        for cfg in machines:
            nu = schedule_with_policy(
                graph, BsaScheduler(cfg), UnrollPolicy.NONE
            )
            su = schedule_with_policy(
                graph, BsaScheduler(cfg), UnrollPolicy.SELECTIVE
            )
            verify_schedule(nu.schedule)
            verify_schedule(su.schedule)
            label = f"{cfg.n_clusters}c"
            row[f"{label}_nu_ii"] = nu.schedule.ii
            row[f"{label}_su_ii_per_iter"] = su.ii_per_original_iteration
            row[f"{label}_unrolled"] = su.unroll_factor > 1
        rows.append(row)
    return rows


def test_livermore_study(benchmark, results_dir):
    rows = benchmark.pedantic(run_livermore_study, rounds=1, iterations=1)

    by_name = {r["kernel"]: r for r in rows}
    # recurrence-bound kernels never unroll and keep their RecMII rate
    for name in RECURRENCE_BOUND:
        assert not by_name[name]["4c_unrolled"], name
        assert by_name[name]["4c_su_ii_per_iter"] >= by_name[name]["unified_ii"]
    # parallel kernels stay within 1 cycle/iteration of the unified rate
    for name, row in by_name.items():
        if name in RECURRENCE_BOUND:
            continue
        assert row["4c_su_ii_per_iter"] <= row["unified_ii"] + 1.0, name

    save_result(
        results_dir,
        "livermore.txt",
        format_table(rows, title="Livermore kernels across the Table-1 machines"),
    )
