"""EXP-R1 — the runner's cache replay: warm figure data without scheduling.

Measures how fast a cached Figure 8 slice replays through
``repro.runner`` (deserialising schedules from the content-addressed
cache instead of rescheduling), and asserts the engine's contract: the
replayed rows are byte-identical to the cold run's and zero points are
executed the second time.
"""

import json

from conftest import save_result

from repro.experiments import ExperimentContext, fig8_rows, run_fig8
from repro.runner import ResultCache
from repro.workloads.specfp import build_program

DIMS = dict(cluster_counts=(4,), bus_counts=(1,), latencies=(1, 4))


def _suite():
    return [build_program("swim"), build_program("applu")]


def test_runner_cache_replay(benchmark, results_dir, tmp_path):
    cache = ResultCache(tmp_path / "cache", code_version="bench")
    cold_ctx = ExperimentContext(suite=_suite(), cache=cache)
    cold_rows = fig8_rows(run_fig8(cold_ctx, **DIMS))
    assert cold_ctx.stats.executed == cold_ctx.stats.total > 0

    def replay():
        ctx = ExperimentContext(suite=_suite(), cache=cache)
        return ctx, fig8_rows(run_fig8(ctx, **DIMS))

    warm_ctx, warm_rows = benchmark.pedantic(replay, rounds=3, iterations=1)
    assert warm_ctx.stats.executed == 0
    assert warm_ctx.stats.cached == warm_ctx.stats.total
    assert json.dumps(warm_rows, sort_keys=True) == json.dumps(
        cold_rows, sort_keys=True
    )

    stats = cache.stats()
    save_result(
        results_dir,
        "runner_cache.txt",
        "runner cache replay (fig8 slice, 2 programs): "
        f"{warm_ctx.stats.total} points, {stats.entries} cache entries, "
        f"{stats.total_bytes / 1024:.0f} KiB",
    )
