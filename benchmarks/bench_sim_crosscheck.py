"""SIM-XC — simulator throughput and model cross-validation.

Two tracked numbers:

* **Throughput** — machine cycles simulated per second of wall time, over
  a mix of kernels and machines (the simulator is a verification tool;
  it must stay fast enough to cross-check whole experiment grids).
* **Exactness** — under a perfect memory every simulated run must equal
  the analytic ``(K + SC - 1) * II`` cycle count and IPC exactly.
"""

from __future__ import annotations

import time

from conftest import save_result

from repro.arch.configs import four_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.unified import UnifiedScheduler
from repro.perf import format_table
from repro.sim import crosscheck_schedule, simulate_schedule
from repro.workloads.kernels import ALL_KERNELS

#: (kernel, config label, niter) — enough dynamic cycles to time reliably.
SCENARIOS = (
    ("daxpy", "unified", 20_000),
    ("stencil5", "unified", 10_000),
    ("stencil5", "4-cluster", 10_000),
    ("cmul", "4-cluster", 10_000),
    ("fir4", "4-cluster", 10_000),
    ("ladder", "4-cluster", 10_000),
)


def _schedules():
    configs = {
        "unified": unified_config(),
        "4-cluster": four_cluster_config(n_buses=1, bus_latency=1),
    }
    out = []
    for kernel, label, niter in SCENARIOS:
        config = configs[label]
        scheduler = (
            UnifiedScheduler(config)
            if config.n_clusters == 1
            else BsaScheduler(config)
        )
        out.append((kernel, label, scheduler.schedule(ALL_KERNELS[kernel]()), niter))
    return out


def test_sim_crosscheck(benchmark, results_dir):
    schedules = _schedules()

    def run_all():
        return [
            (kernel, label, niter, simulate_schedule(sched, niter))
            for kernel, label, sched, niter in schedules
        ]

    start = time.perf_counter()
    runs = benchmark.pedantic(run_all, rounds=3, iterations=1)
    elapsed = (time.perf_counter() - start) / 3

    rows = []
    total_cycles = 0
    for (kernel, label, sched, niter), (_, _, _, report) in zip(schedules, runs):
        check = crosscheck_schedule(sched, niter)
        assert check.exact, f"{kernel} on {label}: {check.render()}"
        total_cycles += report.cycles
        rows.append(
            {
                "kernel": kernel,
                "config": label,
                "niter": niter,
                "cycles": report.cycles,
                "ipc": report.ipc,
                "max_bus_occupancy": max(report.bus_occupancy, default=0.0),
                "peak_live": max(report.peak_live),
            }
        )
    throughput = total_cycles / elapsed
    assert throughput > 50_000, f"simulator too slow: {throughput:.0f} cycles/s"

    text = format_table(rows, title="Simulator cross-check (perfect memory)")
    text += (
        f"\n\n{total_cycles} cycles simulated per round, "
        f"~{throughput / 1e6:.2f} M cycles/sec"
    )
    save_result(results_dir, "sim_crosscheck.txt", text)
