"""EXP-T1 — Table 1: the evaluated machine configurations."""

from conftest import save_result

from repro.experiments import run_table1
from repro.perf import format_table


def test_table1(benchmark, results_dir):
    rows = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    assert len(rows) == 3
    assert all(r["total_issue_width"] == 12 for r in rows)
    assert all(r["total_registers"] == 64 for r in rows)
    save_result(
        results_dir,
        "table1.txt",
        format_table(rows, title="Table 1: clustered VLIW configurations"),
    )
