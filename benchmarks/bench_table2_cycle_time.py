"""EXP-T2 — Table 2: cycle times from the Palacharla-style delay model.

Paper: the cycle-time ratios make the 4-cluster machine ~3.6x faster at
IPC parity.  Reproduced: unified 1520 ps, 2-cluster 760 ps, 4-cluster
420 ps (1 bus), i.e. clock ratios 2.0x and 3.62x.
"""

from conftest import save_result

from repro.experiments import run_table2
from repro.perf import format_table


def test_table2(benchmark, results_dir):
    rows = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    by_name = {r["config"]: r for r in rows}
    assert by_name["unified"]["cycle_ps"] > by_name["2-cluster"]["cycle_ps"]
    assert by_name["2-cluster"]["cycle_ps"] > by_name["4-cluster"]["cycle_ps"]
    ratio = by_name["unified"]["cycle_ps"] / by_name["4-cluster"]["cycle_ps"]
    assert 3.4 <= ratio <= 3.8  # supports the paper's 3.6x headline

    text = format_table(
        rows, title="Table 2: cycle times (ps, 0.18um model, 1 bus)", floatfmt=".1f"
    )
    both = text + "\n\n" + format_table(
        run_table2(n_buses=2),
        title="Table 2 variant: 2 buses (extra register-file ports)",
        floatfmt=".1f",
    )
    save_result(results_dir, "table2.txt", both)
