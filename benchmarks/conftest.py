"""Shared infrastructure for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures.  All
benches share one :class:`~repro.experiments.common.ExperimentContext` per
pytest process, so scenario points computed for one figure are reused by
the others (Figure 9 reuses Figure 8's schedules, etc.).

Every bench also writes its rendered table to ``benchmarks/results/`` so
EXPERIMENTS.md can quote the exact reproduced numbers.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: pathlib.Path, name: str, text: str) -> None:
    path = results_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
