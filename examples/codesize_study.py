#!/usr/bin/env python
"""Code-size study: what unrolling costs in instruction memory.

The embedded-systems angle of Section 6.4: for each unrolling policy on
the 4-cluster machine, measure static code size (useful operations and
NOP padding) across a program, and show where selective unrolling saves
memory relative to unrolling everything.

Run:  python examples/codesize_study.py [program]
"""

import sys

from repro import UnrollPolicy, unified_config
from repro.codegen import schedule_code_size
from repro.experiments import ExperimentContext, paper_machine
from repro.perf import format_table
from repro.workloads import build_program


def main(program_name: str = "applu"):
    program = build_program(program_name)
    ctx = ExperimentContext(suite=[program])
    config = paper_machine(4, 1, 1)

    rows = []
    unrolled_loops = {}
    for policy in (UnrollPolicy.NONE, UnrollPolicy.ALL, UnrollPolicy.SELECTIVE):
        useful = nops = 0
        names = []
        for loop in program.eligible_loops():
            result = ctx.schedule_loop(loop, config, "bsa", policy)
            size = schedule_code_size(result.schedule)
            useful += size.useful_ops
            nops += size.nop_ops
            if result.unroll_factor > 1:
                names.append(loop.name)
        unrolled_loops[policy] = names
        rows.append(
            {
                "policy": str(policy),
                "useful_ops": useful,
                "nop_ops": nops,
                "total_ops": useful + nops,
            }
        )

    print(format_table(rows, title=f"static code size of {program.name!r} (4c/1bus)"))
    base = rows[0]["total_ops"]
    for row in rows:
        print(f"  {row['policy']:22s} {row['total_ops'] / base:5.2f}x of no-unrolling")
    print(
        f"\nselective unrolling expanded "
        f"{len(unrolled_loops[UnrollPolicy.SELECTIVE])}/"
        f"{len(program.eligible_loops())} loops: "
        f"{', '.join(unrolled_loops[UnrollPolicy.SELECTIVE]) or '(none)'}"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "applu")
