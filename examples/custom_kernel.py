#!/usr/bin/env python
"""Bring your own loop: an IIR filter cascade, scheduled and analysed.

Shows the full user workflow on a kernel that is *not* in the library:

1. express the loop with :class:`repro.LoopBuilder`, including a true
   recurrence (the IIR state) and a loop-carried input reuse;
2. check the MII decomposition (is it recurrence- or resource-bound?);
3. schedule on the 4-cluster machine, verify, and inspect register
   pressure per cluster;
4. ask the selective-unrolling policy whether unrolling pays off — for a
   recurrence-bound loop it must decline.

Run:  python examples/custom_kernel.py
"""

from repro import (
    BsaScheduler,
    LoopBuilder,
    UnrollPolicy,
    four_cluster_config,
    mii_report,
    schedule_with_policy,
    verify_schedule,
)
from repro.core import cluster_pressures


def build_iir_cascade(stages: int = 2):
    """y[i] = sum of cascaded first-order IIR sections.

    Each section: s_k[i] = a_k * s_k[i-1] + x_k[i], with the section input
    x_k chained from the previous section's output.
    """
    b = LoopBuilder(f"iir{stages}")
    signal = b.load("x[i]")
    for k in range(stages):
        fb = b.fmul(b.live_in(f"a{k}"), b.live_in(f"s{k}_prev"), tag=f"a{k}*s{k}")
        state = b.fadd(fb, signal, tag=f"s{k}[i]")
        b.carried_use(state, fb, distance=1)  # the IIR recurrence
        signal = state
    b.store(signal, tag="y[i]")
    return b.build()


def main():
    graph = build_iir_cascade()
    print(graph.describe())
    print()

    config = four_cluster_config(n_buses=1, bus_latency=1)
    report = mii_report(graph, config)
    bound = "recurrences" if report.recurrence_bound else "resources"
    print(
        f"ResMII={report.res_mii}  RecMII={report.rec_mii}  "
        f"-> MII={report.mii}, bound by {bound}"
    )

    sched = BsaScheduler(config).schedule(graph)
    verify_schedule(sched)
    print(
        f"\n4-cluster schedule: II={sched.ii}, SC={sched.stage_count}, "
        f"{sched.communication_count} communication(s)"
    )
    pressures = cluster_pressures(sched)
    for cluster, pressure in sorted(pressures.items()):
        print(
            f"  cluster {cluster}: {pressure:2d}/{config.regs_per_cluster} "
            f"registers"
        )

    result = schedule_with_policy(
        graph, BsaScheduler(config), UnrollPolicy.SELECTIVE
    )
    if result.unroll_factor == 1:
        print(
            "\nselective unrolling declined (the IIR recurrence serialises "
            "iterations; unrolling cannot create parallelism here)"
        )
    else:
        print(f"\nselective unrolling chose factor {result.unroll_factor}")
    assert result.unroll_factor == 1  # recurrence-bound: must decline


if __name__ == "__main__":
    main()
