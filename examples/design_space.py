#!/usr/bin/env python
"""Design-space exploration: clusters x buses x latency for one program.

Answers the architect's question the paper poses: given 12 functional
units and 64 registers, how should they be clustered, and how much bus
bandwidth is enough?  Evaluates one synthetic SPECfp95 program over the
whole fabric grid, with and without selective unrolling, reporting IPC,
cycle time and end-to-end speed-up against the unified machine.

Run:  python examples/design_space.py [program]
"""

import sys

from repro import UnrollPolicy, cycle_time_ps, unified_config
from repro.experiments import ExperimentContext, paper_machine
from repro.perf import format_table
from repro.workloads import build_program


def main(program_name: str = "hydro2d"):
    program = build_program(program_name)
    ctx = ExperimentContext(suite=[program])
    unified = unified_config()
    unified_ipc = ctx.program_ipc(program, unified, "bsa", UnrollPolicy.NONE).ipc
    unified_cycle = cycle_time_ps(unified)
    print(
        f"program {program.name!r}: {len(program.eligible_loops())} loops, "
        f"unified IPC {unified_ipc:.2f} at {unified_cycle:.0f} ps"
    )

    rows = []
    for n_clusters in (2, 4):
        for n_buses in (1, 2):
            for latency in (1, 2, 4):
                config = paper_machine(n_clusters, n_buses, latency)
                cycle = cycle_time_ps(config)
                for policy in (UnrollPolicy.NONE, UnrollPolicy.SELECTIVE):
                    ipc = ctx.program_ipc(program, config, "bsa", policy).ipc
                    speedup = (ipc / unified_ipc) * (unified_cycle / cycle)
                    rows.append(
                        {
                            "clusters": n_clusters,
                            "buses": n_buses,
                            "bus_latency": latency,
                            "policy": str(policy),
                            "ipc": ipc,
                            "rel_ipc": ipc / unified_ipc,
                            "cycle_ps": round(cycle),
                            "speedup": speedup,
                        }
                    )

    print()
    print(format_table(rows, title=f"design space for {program.name!r}"))
    best = max(rows, key=lambda r: r["speedup"])
    print(
        f"\nbest point: {best['clusters']} clusters, {best['buses']} bus(es), "
        f"latency {best['bus_latency']}, {best['policy']} -> "
        f"{best['speedup']:.2f}x over unified"
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "hydro2d")
