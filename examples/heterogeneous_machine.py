#!/usr/bin/env python
"""Beyond the paper's tables: a non-homogeneous clustered machine.

Section 3 notes the proposed techniques "can easily be generalized for
non-homogeneous configurations".  This example builds a 2-cluster machine
with an FP-heavy cluster and an integer/memory cluster (in the spirit of
the TI C6000's asymmetric datapaths the paper cites), schedules mixed
kernels on it, and compares against the homogeneous split of the same
total resources.

Run:  python examples/heterogeneous_machine.py
"""

from repro import BsaScheduler, verify_schedule
from repro.arch import BusSpec, FuSet, MachineConfig, heterogeneous_config
from repro.perf import format_table, schedule_stats
from repro.workloads.kernels import ALL_KERNELS


def machines():
    hetero = heterogeneous_config(
        "fp-island",
        cluster_fus=(FuSet(1, 3, 2), FuSet(3, 1, 2)),  # FP cluster + int cluster
        regs_per_cluster=32,
        buses=BusSpec(1, 1),
    )
    homo = MachineConfig(
        "balanced",
        n_clusters=2,
        fu_per_cluster=FuSet(2, 2, 2),
        regs_per_cluster=32,
        buses=BusSpec(1, 1),
    )
    return hetero, homo


def main():
    hetero, homo = machines()
    print(hetero.describe())
    print(homo.describe())
    print()

    rows = []
    for name in ("daxpy", "stencil5", "cmul", "gather", "fir4", "hydro"):
        graph = ALL_KERNELS[name]()
        row = {"kernel": name, "ops": len(graph)}
        for config in (hetero, homo):
            sched = BsaScheduler(config).schedule(graph)
            verify_schedule(sched)
            stats = schedule_stats(sched)
            row[f"{config.name}_ii"] = sched.ii
            row[f"{config.name}_comms"] = stats.n_communications
        rows.append(row)

    print(format_table(rows, title="heterogeneous vs balanced 2-cluster (II / comms)"))
    print(
        "\nFP-heavy kernels keep their chains on the FP island; integer "
        "address work (gather) prefers the integer cluster — the profit "
        "rule of Figure 5 adapts without any change to the algorithm."
    )


if __name__ == "__main__":
    main()
