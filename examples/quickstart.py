#!/usr/bin/env python
"""Quickstart: build a loop, schedule it on three machines, read the result.

Run:  python examples/quickstart.py
"""

from repro import (
    BsaScheduler,
    LoopBuilder,
    UnifiedScheduler,
    four_cluster_config,
    mii_report,
    two_cluster_config,
    unified_config,
    verify_schedule,
)
from repro.codegen import render_schedule


def build_daxpy():
    """y[i] = a * x[i] + y[i] — the canonical parallel loop."""
    b = LoopBuilder("daxpy")
    x = b.load("x[i]")
    y = b.load("y[i]")
    ax = b.fmul(x, b.live_in("a"), tag="a*x")
    s = b.fadd(ax, y, tag="a*x+y")
    b.store(s, tag="y[i]")
    return b.build()


def main():
    graph = build_daxpy()
    print(graph.describe())
    print()

    # Lower bounds on the initiation interval.
    unified = unified_config()
    report = mii_report(graph, unified)
    print(f"ResMII={report.res_mii}  RecMII={report.rec_mii}  MII={report.mii}")
    print()

    # 1. The unified (single-cluster) machine: plain swing modulo scheduling.
    sched = UnifiedScheduler(unified).schedule(graph)
    verify_schedule(sched)
    print(f"unified:   II={sched.ii}  SC={sched.stage_count}")

    # 2. Clustered machines: BSA assigns clusters and cycles in one pass.
    for config in (two_cluster_config(1, 1), four_cluster_config(1, 1)):
        sched = BsaScheduler(config).schedule(graph)
        verify_schedule(sched)
        print(
            f"{config.name}: II={sched.ii}  SC={sched.stage_count}  "
            f"communications={sched.communication_count}"
        )

    # 3. Inspect the software-pipelined kernel of the 4-cluster schedule.
    sched = BsaScheduler(four_cluster_config(1, 1)).schedule(graph)
    print()
    print(render_schedule(sched))


if __name__ == "__main__":
    main()
