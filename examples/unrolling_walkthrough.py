#!/usr/bin/env python
"""The paper's Figure 7 walk-through: why unrolling hides communication.

Schedules the paper's 6-operation example and the assignment-proof ladder
variant on the 2-cluster machine, before and after unrolling by 2, and
prints the initiation intervals, communications and the selective-unroll
decision at each step.

Run:  python examples/unrolling_walkthrough.py
"""

from repro import (
    BsaScheduler,
    UnrollPolicy,
    count_cross_copy_deps,
    schedule_with_policy,
    two_cluster_config,
    unroll_graph,
    verify_schedule,
)
from repro.codegen import render_schedule
from repro.experiments import fig7_rows, run_fig7, run_fig7_ladder
from repro.perf import format_table
from repro.workloads import figure7_graph
from repro.workloads.kernels import ladder_graph


def main():
    # --- the paper's 6-node graph ------------------------------------
    graph = figure7_graph()
    print(graph.describe())
    print()
    case = run_fig7()
    print(
        f"ResMII={case.res_mii} (6 ops / 4 units), "
        f"RecMII={case.rec_mii} (A->B->D->A: latency 3, distance 2)"
    )
    print(format_table(fig7_rows(case), title="paper 6-node graph"))
    print()
    print("non-unrolled kernel (bus limited at II=3):")
    print(render_schedule(case.base_schedule))
    print()
    print(
        f"cross-copy deps after unrolling by 2: "
        f"{count_cross_copy_deps(graph, 2)} "
        "(the carried A->E edge becomes A->E' and A'->E, the paper's two"
        " communications)"
    )
    print()

    # --- the ladder: no assignment can dodge the bus ------------------
    case = run_fig7_ladder()
    print(format_table(fig7_rows(case), title="ladder variant (bus latency 2)"))
    print()

    # --- the selective-unroll decision on the ladder -------------------
    config = two_cluster_config(n_buses=1, bus_latency=2)
    result = schedule_with_policy(
        ladder_graph(), BsaScheduler(config), UnrollPolicy.SELECTIVE
    )
    verify_schedule(result.schedule)
    print(
        f"selective unrolling on the ladder: base II="
        f"{result.base_schedule.ii} (bus limited: "
        f"{result.base_schedule.was_bus_limited}) -> "
        f"unrolled x{result.unroll_factor}, II={result.ii} "
        f"({result.ii_per_original_iteration:.1f} cycles per source iteration"
        f" = unified parity)"
    )


if __name__ == "__main__":
    main()
