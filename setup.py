"""Compatibility shim — all metadata lives in pyproject.toml.

Kept so ``pip install -e . --no-use-pep517`` works on machines without
the ``wheel`` package or network access for build isolation (PEP 660
editable installs need ``bdist_wheel``).
"""

from setuptools import setup

setup()
