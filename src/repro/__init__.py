"""repro — modulo scheduling for clustered VLIW architectures.

A faithful reimplementation of Sánchez & González, *The Effectiveness of
Loop Unrolling for Modulo Scheduling in Clustered VLIW Architectures*
(ICPP 2000): the single-pass assign-and-schedule modulo scheduler (BSA),
the two-phase Nystrom & Eichenberger comparator, selective loop unrolling,
the clustered VLIW machine model, and the full experiment harness for the
paper's tables and figures.

Quick start::

    from repro import (
        LoopBuilder, four_cluster_config, unified_config,
        BsaScheduler, UnifiedScheduler, verify_schedule,
    )

    b = LoopBuilder("daxpy")
    x = b.load("x[i]"); y = b.load("y[i]")
    s = b.fadd(b.fmul(x, b.live_in("a")), y)
    b.store(s, "y[i]")
    graph = b.build()

    sched = BsaScheduler(four_cluster_config()).schedule(graph)
    verify_schedule(sched)
    print(sched.describe())
"""

from .arch import (
    BusSpec,
    FuSet,
    MachineConfig,
    clustered_config,
    cycle_time_ps,
    four_cluster_config,
    paper_configs,
    two_cluster_config,
    unified_config,
)
from .core import (
    BsaScheduler,
    ModuloSchedule,
    ScheduledLoopResult,
    SelectiveRule,
    TwoPhaseScheduler,
    UnifiedScheduler,
    UnrollPolicy,
    mii,
    mii_report,
    rec_mii,
    res_mii,
    schedule_with_policy,
    sms_order,
    verify_schedule,
)
from .codegen import RenamedKernel, rename_kernel
from .errors import (
    ConfigError,
    GraphError,
    ParseError,
    ReproError,
    SchedulingError,
    SimulationError,
    VerificationError,
    WorkloadError,
)
from .ir import (
    DEFAULT_CATALOG,
    Dependence,
    DependenceGraph,
    DepKind,
    FuClass,
    Loop,
    LoopBuilder,
    OpCatalog,
    Opcode,
    Operation,
    Program,
    count_cross_copy_deps,
    parse_file,
    parse_program,
    unroll_graph,
)
from .runner import (
    PointResult,
    ResultCache,
    ScenarioPoint,
    run_sweep,
    scenario_for,
)
from .workloads import (
    register_workload,
    resolve_workload,
    workload_table,
    workloads,
)
from .sim import (
    PerfectMemory,
    RandomMissMemory,
    SimReport,
    crosscheck_schedule,
    simulate_result,
    simulate_schedule,
)

__version__ = "1.8.0"

__all__ = [
    "BsaScheduler",
    "BusSpec",
    "ConfigError",
    "DEFAULT_CATALOG",
    "Dependence",
    "DependenceGraph",
    "DepKind",
    "FuClass",
    "FuSet",
    "GraphError",
    "Loop",
    "LoopBuilder",
    "MachineConfig",
    "ModuloSchedule",
    "OpCatalog",
    "Opcode",
    "Operation",
    "ParseError",
    "PerfectMemory",
    "PointResult",
    "Program",
    "RandomMissMemory",
    "RenamedKernel",
    "ReproError",
    "ResultCache",
    "ScenarioPoint",
    "ScheduledLoopResult",
    "SchedulingError",
    "SelectiveRule",
    "SimReport",
    "SimulationError",
    "TwoPhaseScheduler",
    "UnifiedScheduler",
    "UnrollPolicy",
    "VerificationError",
    "WorkloadError",
    "clustered_config",
    "count_cross_copy_deps",
    "crosscheck_schedule",
    "cycle_time_ps",
    "four_cluster_config",
    "mii",
    "mii_report",
    "paper_configs",
    "parse_file",
    "parse_program",
    "rec_mii",
    "register_workload",
    "rename_kernel",
    "res_mii",
    "resolve_workload",
    "run_sweep",
    "scenario_for",
    "schedule_with_policy",
    "simulate_result",
    "simulate_schedule",
    "sms_order",
    "two_cluster_config",
    "unified_config",
    "unroll_graph",
    "verify_schedule",
    "workload_table",
    "workloads",
]
