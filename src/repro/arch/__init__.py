"""Clustered VLIW machine model: clusters, buses, configurations, timing."""

from .cluster import MachineConfig, heterogeneous_config
from .configs import (
    PAPER_BUS_COUNTS,
    PAPER_BUS_LATENCIES,
    clustered_config,
    four_cluster_config,
    paper_configs,
    table1_rows,
    two_cluster_config,
    unified_config,
)
from .isa import (
    BusField,
    ClusterInstruction,
    FuSlot,
    VliwInstruction,
    empty_instruction,
    slots_per_instruction,
)
from .resources import BusSpec, FuSet
from .timing import (
    CycleTimeBreakdown,
    bypass_delay_ps,
    clock_speedup,
    cycle_time_breakdown,
    cycle_time_ps,
    register_file_delay_ps,
    register_file_ports,
    table2_rows,
)

__all__ = [
    "BusField",
    "BusSpec",
    "ClusterInstruction",
    "CycleTimeBreakdown",
    "FuSet",
    "FuSlot",
    "MachineConfig",
    "heterogeneous_config",
    "PAPER_BUS_COUNTS",
    "PAPER_BUS_LATENCIES",
    "VliwInstruction",
    "bypass_delay_ps",
    "clock_speedup",
    "clustered_config",
    "cycle_time_breakdown",
    "cycle_time_ps",
    "empty_instruction",
    "four_cluster_config",
    "paper_configs",
    "register_file_delay_ps",
    "register_file_ports",
    "slots_per_instruction",
    "table1_rows",
    "two_cluster_config",
    "table2_rows",
    "unified_config",
]
