"""Machine configurations: clusters, register files and buses (Section 3).

A :class:`MachineConfig` describes a clustered VLIW machine:
``n_clusters`` clusters, each with a private register file and a set of
typed functional units, connected by ``buses.count`` shared buses of
latency ``buses.latency``.  The *unified* architecture of the paper is
simply the single-cluster special case with no buses.

The paper evaluates homogeneous machines but notes the techniques
"can easily be generalized for non-homogeneous configurations"
(Section 3); ``cluster_fus`` realises that generalisation — give each
cluster its own :class:`~repro.arch.resources.FuSet` (e.g. an FP-heavy
cluster next to an integer/memory cluster, TI C6000 style).  All
schedulers in :mod:`repro.core` work unchanged on such machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..ir.operation import FuClass
from .resources import BusSpec, FuSet


@dataclass(frozen=True)
class MachineConfig:
    """A (possibly clustered, possibly heterogeneous) VLIW machine.

    Attributes
    ----------
    name:
        Label used in reports (e.g. ``"4-cluster"``).
    n_clusters:
        Number of clusters.
    fu_per_cluster:
        Functional units of each class inside one cluster (homogeneous
        machines; ignored when ``cluster_fus`` is given, but kept as the
        nominal per-cluster shape for reports).
    regs_per_cluster:
        Size of each cluster's local register file (the paper uses no spill
        code, so placements exceeding this are rejected by schedulers).
    buses:
        Shared inter-cluster bus fabric; irrelevant when ``n_clusters == 1``.
    cluster_fus:
        Optional per-cluster functional-unit sets for non-homogeneous
        machines; must have exactly ``n_clusters`` entries.
    """

    name: str
    n_clusters: int
    fu_per_cluster: FuSet
    regs_per_cluster: int
    buses: BusSpec = field(default=BusSpec(0, 1))
    cluster_fus: tuple[FuSet, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.regs_per_cluster < 1:
            raise ConfigError(
                f"regs_per_cluster must be >= 1, got {self.regs_per_cluster}"
            )
        if self.n_clusters > 1 and self.buses.count < 1:
            raise ConfigError(
                "a clustered machine needs at least one bus to communicate values"
            )
        if self.cluster_fus is not None and len(self.cluster_fus) != self.n_clusters:
            raise ConfigError(
                f"cluster_fus has {len(self.cluster_fus)} entries for "
                f"{self.n_clusters} clusters"
            )

    # ------------------------------------------------------------------
    @property
    def is_clustered(self) -> bool:
        return self.n_clusters > 1

    @property
    def is_homogeneous(self) -> bool:
        return self.cluster_fus is None or all(
            fus == self.cluster_fus[0] for fus in self.cluster_fus
        )

    def fu_set(self, cluster: int) -> FuSet:
        """The functional units of one cluster."""
        self._check_cluster(cluster)
        if self.cluster_fus is not None:
            return self.cluster_fus[cluster]
        return self.fu_per_cluster

    @property
    def total_fus(self) -> FuSet:
        """Functional units summed over all clusters."""
        if self.cluster_fus is None:
            return self.fu_per_cluster.scaled(self.n_clusters)
        total = FuSet(
            sum(f.int_units for f in self.cluster_fus),
            sum(f.fp_units for f in self.cluster_fus),
            sum(f.mem_units for f in self.cluster_fus),
        )
        return total

    @property
    def issue_width(self) -> int:
        """Operations issued per cycle machine-wide (FU slots only)."""
        return self.total_fus.total

    @property
    def max_fus_in_a_cluster(self) -> int:
        """The largest per-cluster FU count (drives the bypass delay)."""
        return max(self.fu_set(c).total for c in self.clusters())

    @property
    def total_registers(self) -> int:
        return self.regs_per_cluster * self.n_clusters

    def fu_count(self, cluster: int, fu_class: FuClass) -> int:
        """Units of *fu_class* inside one cluster."""
        return self.fu_set(cluster).count(fu_class)

    def clusters(self) -> range:
        return range(self.n_clusters)

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.n_clusters:
            raise ConfigError(
                f"cluster index {cluster} out of range 0..{self.n_clusters - 1}"
            )

    # ------------------------------------------------------------------
    def with_buses(self, count: int, latency: int) -> "MachineConfig":
        """Same clusters, different bus fabric."""
        return MachineConfig(
            name=self.name,
            n_clusters=self.n_clusters,
            fu_per_cluster=self.fu_per_cluster,
            regs_per_cluster=self.regs_per_cluster,
            buses=BusSpec(count, latency),
            cluster_fus=self.cluster_fus,
        )

    def unified_equivalent(self, name: str | None = None) -> "MachineConfig":
        """The unified machine with the same *total* resources.

        This is the hypothetical comparison point used throughout the paper
        (Sections 4 and 6): all functional units and registers pooled into
        one cluster, no buses.
        """
        return MachineConfig(
            name=name or f"{self.name}-unified",
            n_clusters=1,
            fu_per_cluster=self.total_fus,
            regs_per_cluster=self.total_registers,
            buses=BusSpec(0, 1),
        )

    def describe(self) -> str:
        parts = [f"{self.name}: {self.n_clusters} cluster(s)"]
        if self.cluster_fus is not None and not self.is_homogeneous:
            fus = " + ".join(str(f) for f in self.cluster_fus)
            parts.append(f"FUs {fus}")
        else:
            parts.append(f"FUs/cluster {self.fu_set(0)}")
        parts.append(f"{self.regs_per_cluster} regs/cluster")
        if self.is_clustered:
            parts.append(str(self.buses))
        return ", ".join(parts)

    def __str__(self) -> str:
        return self.describe()


def heterogeneous_config(
    name: str,
    cluster_fus: tuple[FuSet, ...],
    regs_per_cluster: int,
    buses: BusSpec,
) -> MachineConfig:
    """Convenience constructor for a non-homogeneous machine."""
    if not cluster_fus:
        raise ConfigError("heterogeneous machine needs at least one cluster")
    return MachineConfig(
        name=name,
        n_clusters=len(cluster_fus),
        fu_per_cluster=cluster_fus[0],
        regs_per_cluster=regs_per_cluster,
        buses=buses,
        cluster_fus=tuple(cluster_fus),
    )
