"""The paper's evaluated configurations (Table 1, Section 6.1).

Three machines share a total of 12 functional units (4 integer, 4 floating
point, 4 memory) and 64 registers:

* ``unified``  — 1 cluster x (4I/4F/4M FUs, 64 registers), no buses;
* ``2-cluster`` — 2 clusters x (2I/2F/2M FUs, 32 registers);
* ``4-cluster`` — 4 clusters x (1I/1F/1M FUs, 16 registers).

Clustered configurations are evaluated with 1 or 2 buses and bus latencies
of 1, 2 or 4 cycles (Section 6.2); Figure 4 additionally sweeps wider bus
counts.
"""

from __future__ import annotations

from .cluster import MachineConfig
from .resources import BusSpec, FuSet

#: Bus counts shown in the IPC figures (Figure 8).
PAPER_BUS_COUNTS = (1, 2)
#: Bus latencies shown in the IPC figures (Figure 8).
PAPER_BUS_LATENCIES = (1, 2, 4)


def unified_config() -> MachineConfig:
    """The paper's baseline: one cluster with all resources."""
    return MachineConfig(
        name="unified",
        n_clusters=1,
        fu_per_cluster=FuSet(4, 4, 4),
        regs_per_cluster=64,
        buses=BusSpec(0, 1),
    )


def two_cluster_config(n_buses: int = 1, bus_latency: int = 1) -> MachineConfig:
    """2 clusters x 2I/2F/2M FUs, 32 registers each."""
    return MachineConfig(
        name="2-cluster",
        n_clusters=2,
        fu_per_cluster=FuSet(2, 2, 2),
        regs_per_cluster=32,
        buses=BusSpec(n_buses, bus_latency),
    )


def four_cluster_config(n_buses: int = 1, bus_latency: int = 1) -> MachineConfig:
    """4 clusters x 1I/1F/1M FUs, 16 registers each."""
    return MachineConfig(
        name="4-cluster",
        n_clusters=4,
        fu_per_cluster=FuSet(1, 1, 1),
        regs_per_cluster=16,
        buses=BusSpec(n_buses, bus_latency),
    )


def clustered_config(
    n_clusters: int, n_buses: int = 1, bus_latency: int = 1
) -> MachineConfig:
    """The paper-style machine with *n_clusters* clusters (2 or 4)."""
    if n_clusters == 1:
        return unified_config()
    if n_clusters == 2:
        return two_cluster_config(n_buses, bus_latency)
    if n_clusters == 4:
        return four_cluster_config(n_buses, bus_latency)
    raise ValueError(f"paper configurations have 1, 2 or 4 clusters, not {n_clusters}")


def paper_configs() -> dict[str, MachineConfig]:
    """All Table 1 machines at their default (1 bus, latency 1) fabric."""
    return {
        "unified": unified_config(),
        "2-cluster": two_cluster_config(),
        "4-cluster": four_cluster_config(),
    }


def table1_rows() -> list[dict]:
    """Table 1 as data: one row per configuration."""
    rows = []
    for cfg in paper_configs().values():
        rows.append(
            {
                "config": cfg.name,
                "clusters": cfg.n_clusters,
                "int_fus_per_cluster": cfg.fu_per_cluster.int_units,
                "fp_fus_per_cluster": cfg.fu_per_cluster.fp_units,
                "mem_fus_per_cluster": cfg.fu_per_cluster.mem_units,
                "regs_per_cluster": cfg.regs_per_cluster,
                "total_issue_width": cfg.issue_width,
                "total_registers": cfg.total_registers,
            }
        )
    return rows
