"""The VLIW instruction format (Figure 3 of the paper).

One VLIW instruction is fetched per cycle and split into per-cluster
sub-instructions.  Each sub-instruction carries:

* one operation slot per functional unit of the cluster (``FUj`` fields),
* an ``IN BUS`` field: if the incoming-value register (IRV) holds a value
  this cycle, which local register to store it into (or none if the value
  is consumed directly through the multiplexers),
* an ``OUT BUS`` field: what to drive onto a bus, either the output of a
  functional unit or a local register (or nothing).

These classes are a *format* description used by code generation and the
code-size model; scheduling itself works on reservation tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.operation import FuClass
from .cluster import MachineConfig


@dataclass(frozen=True)
class FuSlot:
    """One operation slot of a sub-instruction (None = NOP).

    ``node`` and ``stage`` tie a filled slot back to the scheduled graph
    node and its pipeline stage, so consumers of emitted code (the
    simulator, tooling) need not parse ``op_label`` text.
    """

    fu_class: FuClass
    fu_index: int
    op_label: str | None = None  # None encodes a NOP
    node: int | None = None
    stage: int | None = None

    @property
    def is_nop(self) -> bool:
        return self.op_label is None

    def render(self) -> str:
        body = self.op_label if self.op_label is not None else "nop"
        return f"{self.fu_class.value}{self.fu_index}:{body}"


@dataclass(frozen=True)
class BusField:
    """IN BUS / OUT BUS control of one sub-instruction.

    ``out_source`` identifies what is driven onto the bus ("fu:<i>" or
    "reg"); ``in_store`` is True when the IRV value is written into the
    local register file this cycle.
    """

    bus_index: int | None = None
    out_source: str | None = None
    in_store: bool = False

    @property
    def is_idle(self) -> bool:
        return self.bus_index is None and not self.in_store

    def render(self) -> str:
        parts = []
        if self.bus_index is not None and self.out_source is not None:
            parts.append(f"out[bus{self.bus_index}]={self.out_source}")
        if self.in_store:
            parts.append("in->reg")
        return " ".join(parts) if parts else "-"


@dataclass
class ClusterInstruction:
    """The sub-instruction executed by one cluster in one cycle."""

    cluster: int
    slots: list[FuSlot] = field(default_factory=list)
    bus: BusField = field(default_factory=BusField)

    @property
    def useful_ops(self) -> int:
        return sum(1 for s in self.slots if not s.is_nop)

    @property
    def nop_ops(self) -> int:
        return sum(1 for s in self.slots if s.is_nop)

    def render(self) -> str:
        inner = " | ".join(s.render() for s in self.slots)
        return f"c{self.cluster}[{inner} || {self.bus.render()}]"


@dataclass
class VliwInstruction:
    """One machine-wide VLIW instruction (one per cycle)."""

    cycle: int
    clusters: list[ClusterInstruction] = field(default_factory=list)

    @property
    def useful_ops(self) -> int:
        return sum(c.useful_ops for c in self.clusters)

    @property
    def nop_ops(self) -> int:
        return sum(c.nop_ops for c in self.clusters)

    @property
    def total_slots(self) -> int:
        return sum(len(c.slots) for c in self.clusters)

    def render(self) -> str:
        body = "  ".join(c.render() for c in self.clusters)
        return f"{self.cycle:4d}: {body}"


def empty_instruction(config: MachineConfig, cycle: int) -> VliwInstruction:
    """A VLIW instruction with every slot set to NOP."""
    clusters = []
    for c in config.clusters():
        slots = []
        for fu_class in (FuClass.INT, FuClass.FP, FuClass.MEM):
            for i in range(config.fu_count(c, fu_class)):
                slots.append(FuSlot(fu_class, i))
        clusters.append(ClusterInstruction(cluster=c, slots=slots))
    return VliwInstruction(cycle=cycle, clusters=clusters)


def slots_per_instruction(config: MachineConfig) -> int:
    """Operation slots in one VLIW instruction (FU slots, machine-wide).

    Bus control fields are not operation slots; Section 6.4 counts code
    size in operations (useful + NOP), which is what this feeds.
    """
    return config.issue_width
