"""Low-level resource descriptions of the clustered VLIW machine."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..ir.operation import FuClass


@dataclass(frozen=True)
class FuSet:
    """How many functional units of each class a cluster owns."""

    int_units: int
    fp_units: int
    mem_units: int

    def __post_init__(self) -> None:
        for label, n in (
            ("int", self.int_units),
            ("fp", self.fp_units),
            ("mem", self.mem_units),
        ):
            if n < 0:
                raise ConfigError(f"negative {label} unit count: {n}")
        if self.total == 0:
            raise ConfigError("a cluster must own at least one functional unit")

    def count(self, fu_class: FuClass) -> int:
        return {
            FuClass.INT: self.int_units,
            FuClass.FP: self.fp_units,
            FuClass.MEM: self.mem_units,
        }[fu_class]

    @property
    def total(self) -> int:
        return self.int_units + self.fp_units + self.mem_units

    def scaled(self, factor: int) -> "FuSet":
        """A set with every count multiplied by *factor*."""
        return FuSet(
            self.int_units * factor, self.fp_units * factor, self.mem_units * factor
        )

    def as_dict(self) -> dict[FuClass, int]:
        return {
            FuClass.INT: self.int_units,
            FuClass.FP: self.fp_units,
            FuClass.MEM: self.mem_units,
        }

    def __str__(self) -> str:
        return f"{self.int_units}I/{self.fp_units}F/{self.mem_units}M"


@dataclass(frozen=True)
class BusSpec:
    """The shared inter-cluster communication fabric.

    ``count`` buses are shared by all clusters; a value transfer occupies
    one bus for ``latency`` consecutive cycles (Section 3: "when one
    particular cluster places a data on the bus, this bus will be busy
    during the entirety of the communication latency").
    """

    count: int
    latency: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError(f"negative bus count: {self.count}")
        if self.count and self.latency < 1:
            raise ConfigError(f"bus latency must be >= 1, got {self.latency}")

    def __str__(self) -> str:
        if self.count == 0:
            return "no buses"
        return f"{self.count} bus(es), latency {self.latency}"
