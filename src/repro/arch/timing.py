"""Cycle-time model in the style of Palacharla, Jouppi and Smith.

Section 6.3 of the paper derives per-configuration cycle times (Table 2)
from the delay models of Palacharla et al. [16], assuming the cycle is set
by ``max(bypass delay, register-file access time)``:

* the *bypass* network spans every functional unit of a cluster, so its
  wire grows with the FU count and its RC delay grows quadratically;
* the *register file* access time grows with the number of registers
  (bitline length) and with the square of the port count (each port adds
  wire in both dimensions of the cell array).  Ports are ``2 read + 1
  write`` per functional unit plus ``1 read + 1 write`` per bus.

The scanned Table 2 of the paper is illegible, so the coefficients below
are calibrated (see ``_CALIBRATION``) to reproduce the paper's end-to-end
headline: with selective unrolling the 4-cluster/1-bus machine runs ~3.6x
faster than the unified machine once IPC parity holds.  The *functional
form* is Palacharla's; only the three technology constants are fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cluster import MachineConfig

#: Fitted technology constants for a 0.18 um process, in picoseconds.
#: regfile(r, p) = RF_BASE_PS + RF_PER_REG_PS * r + RF_PER_PORT2_PS * p**2
#: chosen so the three Table 1 machines get cycle times 1520 / 760 / 420 ps
#: (unified / 2-cluster / 4-cluster at one bus), giving the 2.0x and 3.62x
#: clock ratios consistent with the paper's reported 3.6x total speed-up.
RF_BASE_PS = 117.4
RF_PER_REG_PS = 17.123
RF_PER_PORT2_PS = 0.23669
#: bypass(n) = BYPASS_PER_FU2_PS * n**2 (quadratic wire RC across n FUs).
BYPASS_PER_FU2_PS = 9.0

_CALIBRATION = (
    "constants fitted to cycle times 1520/760/420 ps for the unified, "
    "2-cluster and 4-cluster machines with one bus"
)


@dataclass(frozen=True)
class CycleTimeBreakdown:
    """Cycle time of a machine with its two contributing delays."""

    config_name: str
    bypass_ps: float
    regfile_ps: float

    @property
    def cycle_ps(self) -> float:
        return max(self.bypass_ps, self.regfile_ps)

    @property
    def critical_path(self) -> str:
        return "bypass" if self.bypass_ps >= self.regfile_ps else "regfile"


def register_file_ports(config: MachineConfig) -> int:
    """Read+write ports on one cluster's register file.

    2 read + 1 write per functional unit, plus 1 read + 1 write per bus
    (Section 6.3).  The unified machine has no buses.
    """
    fu_ports = 3 * config.max_fus_in_a_cluster
    bus_ports = 2 * config.buses.count if config.is_clustered else 0
    return fu_ports + bus_ports


def bypass_delay_ps(config: MachineConfig) -> float:
    """Bypass-network delay of one cluster in picoseconds."""
    n = config.max_fus_in_a_cluster
    return BYPASS_PER_FU2_PS * n * n


def register_file_delay_ps(config: MachineConfig) -> float:
    """Register-file access time of one cluster in picoseconds."""
    regs = config.regs_per_cluster
    ports = register_file_ports(config)
    return RF_BASE_PS + RF_PER_REG_PS * regs + RF_PER_PORT2_PS * ports * ports


def cycle_time_breakdown(config: MachineConfig) -> CycleTimeBreakdown:
    """Both contributing delays for *config*."""
    return CycleTimeBreakdown(
        config_name=config.name,
        bypass_ps=bypass_delay_ps(config),
        regfile_ps=register_file_delay_ps(config),
    )


def cycle_time_ps(config: MachineConfig) -> float:
    """Cycle time of *config*: max(bypass, register file)."""
    return cycle_time_breakdown(config).cycle_ps


def clock_speedup(clustered: MachineConfig, unified: MachineConfig) -> float:
    """How much faster the clustered clock ticks than the unified one."""
    return cycle_time_ps(unified) / cycle_time_ps(clustered)


def table2_rows(configs: list[MachineConfig]) -> list[dict]:
    """Table 2 as data: cycle time per configuration."""
    rows = []
    for cfg in configs:
        bd = cycle_time_breakdown(cfg)
        rows.append(
            {
                "config": cfg.name,
                "fus_per_cluster": cfg.max_fus_in_a_cluster,
                "regs_per_cluster": cfg.regs_per_cluster,
                "rf_ports": register_file_ports(cfg),
                "bypass_ps": round(bd.bypass_ps, 1),
                "regfile_ps": round(bd.regfile_ps, 1),
                "cycle_ps": round(bd.cycle_ps, 1),
                "critical_path": bd.critical_path,
            }
        )
    return rows
