"""Continuous micro-benchmark harness (``repro-vliw bench``).

Times the package's hot paths — schedule construction, the cycle-accurate
simulator and a miniature runner sweep — on *pinned* kernels and machine
configurations, so successive runs measure code speed and nothing else.
The trajectory is recorded as ``BENCH_<n>.json`` files (the repo root by
convention): ``--record`` writes the next file in the sequence,
``--baseline FILE`` embeds a previous run's numbers as the before/after
comparison, and ``--compare FILE`` turns the run into a regression gate
that fails when any benchmark got more than ``--threshold`` slower
(20% by default) — the mode CI runs.

Methodology:

* every benchmark is a closure over prebuilt inputs (graph construction
  and config setup are *not* timed) and runs an identical workload in
  quick and full mode — ``--quick`` only trims repeats and skips the
  benchmarks marked *heavy*, so any two runs of the same benchmark name
  are comparable;
* each benchmark runs once untimed (warm-up), then ``--repeat`` times;
  the *best* wall-clock time is the recorded figure (minimum over
  repeats is the standard noise filter), with the mean kept for context;
* a fixed pure-Python *calibration* spin is timed alongside and stored in
  every document; the regression gate rescales baseline times by the
  calibration ratio, so a baseline recorded on a faster or slower host
  still gates meaningfully;
* after the timed repeats, each benchmark runs one extra pass with the
  ``repro.obs`` phase-profiling hooks enabled; the per-phase wall-time
  breakdown (ordering / placement probe / commit / sim) is stored under
  ``"phases"`` in the document, never inside the timed figures.
"""

from __future__ import annotations

import gc
import json
import platform
import re
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from .arch.configs import four_cluster_config, two_cluster_config, unified_config
from .ir.ddg import DependenceGraph
from .obs.trace import PHASES
from .ir.unroll import unroll_graph
from .workloads.generator import LoopShape, RecurrenceSpec, generate_loop
from .workloads.kernels import fir_filter, hydro_fragment, stencil5

#: Benchmark file format version (bump on incompatible schema changes).
BENCH_FORMAT = 1

#: Regression threshold for ``--compare`` (fractional slowdown).
DEFAULT_THRESHOLD = 0.20

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


# ----------------------------------------------------------------------
# Pinned workloads
# ----------------------------------------------------------------------
def pinned_graphs() -> list[DependenceGraph]:
    """The scheduling workload: unrolled kernels plus synthetic bodies.

    Chosen to exercise every placement-engine path: recurrences (pressure
    probes), unrolled copies (cross-cluster communications) and plain DAG
    parallelism (FU contention).  Identical for every run — only the code
    under test may change the timings.
    """
    graphs: list[DependenceGraph] = [
        unroll_graph(fir_filter(6), 2),
        unroll_graph(stencil5(), 2),
        hydro_fragment(),
        unroll_graph(hydro_fragment(), 4),
    ]
    shapes = [
        LoopShape(
            name="bench-syn32",
            seed=1201,
            n_ops=32,
            recurrences=(RecurrenceSpec(3, 1),),
        ),
        LoopShape(
            name="bench-syn40",
            seed=7,
            n_ops=40,
            recurrences=(RecurrenceSpec(2, 1),),
            carried_edge_prob=0.03,
        ),
        LoopShape(
            name="bench-syn48",
            seed=1202,
            n_ops=48,
            recurrences=(RecurrenceSpec(2, 2), RecurrenceSpec(4, 1)),
            carried_edge_prob=0.05,
        ),
    ]
    graphs.extend(generate_loop(shape) for shape in shapes)
    return graphs


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------
@dataclass
class Benchmark:
    """One named micro-benchmark: a prepared closure plus its work count."""

    name: str
    description: str
    #: Build the timed closure (called once, outside the timed region);
    #: returns the closure and the number of logical work items per run.
    prepare: Callable[[], tuple[Callable[[], object], int]]
    #: Heavy benchmarks are skipped under ``--quick`` (the CI mode).
    heavy: bool = False


def _bench_placement_bsa() -> Benchmark:
    def prepare():
        from .core.bsa import BsaScheduler

        graphs = pinned_graphs()
        configs = [four_cluster_config(1, 1), two_cluster_config(1, 2)]

        def run():
            for cfg in configs:
                scheduler = BsaScheduler(cfg)
                for g in graphs:
                    scheduler.schedule(g)

        return run, len(graphs) * len(configs)

    return Benchmark(
        "schedule.placement",
        "BSA placement hot path: pinned kernels on clustered machines",
        prepare,
    )


def _bench_placement_twophase() -> Benchmark:
    def prepare():
        from .core.twophase import TwoPhaseScheduler

        graphs = pinned_graphs()
        cfg = four_cluster_config(1, 1)

        def run():
            scheduler = TwoPhaseScheduler(cfg)
            for g in graphs:
                scheduler.schedule(g)

        return run, len(graphs)

    return Benchmark(
        "schedule.twophase",
        "Two-phase (partition-then-schedule) comparator on the same kernels",
        prepare,
    )


def _bench_unified_sms() -> Benchmark:
    def prepare():
        from .core.unified import UnifiedScheduler

        graphs = pinned_graphs()
        cfg = unified_config()

        def run():
            scheduler = UnifiedScheduler(cfg)
            for g in graphs:
                scheduler.schedule(g)

        return run, len(graphs)

    return Benchmark(
        "schedule.unified",
        "SMS on the unified machine (no communications, pure scan)",
        prepare,
    )


def _bench_pressure_scratch() -> Benchmark:
    def prepare():
        from .core.bsa import BsaScheduler
        from .core.lifetimes import cluster_pressures

        cfg = four_cluster_config(1, 1)
        schedules = [BsaScheduler(cfg).schedule(g) for g in pinned_graphs()]
        reps = 50

        def run():
            for _ in range(reps):
                for sched in schedules:
                    cluster_pressures(sched)

        return run, reps * len(schedules)

    return Benchmark(
        "pressure.scratch",
        "From-scratch MaxLive recomputation on completed schedules",
        prepare,
    )


def _bench_simulate() -> Benchmark:
    def prepare():
        from .core.bsa import BsaScheduler
        from .sim import crosscheck_schedule

        cfg = four_cluster_config(1, 1)
        graph = unroll_graph(fir_filter(6), 2)
        sched = BsaScheduler(cfg).schedule(graph)
        niter = 200

        def run():
            crosscheck_schedule(
                sched, niter, unroll_factor=2, ops_per_source_iteration=len(graph) // 2
            )

        return run, niter

    return Benchmark(
        "sim.execute",
        "Cycle-accurate simulation of a scheduled, unrolled kernel",
        prepare,
    )


def _bench_sweep_micro() -> Benchmark:
    def prepare():
        from .core.selective import UnrollPolicy
        from .experiments import suite_grid
        from .runner import run_sweep
        from .workloads.specfp import build_program

        suite = [build_program("applu")]
        items = suite_grid(suite, two_cluster_config(1, 1), "bsa", UnrollPolicy.NONE)

        def run():
            run_sweep(items, cache=None)

        return run, len(items)

    return Benchmark(
        "sweep.micro",
        "Uncached single-process runner sweep over one SPECfp program",
        prepare,
        heavy=True,
    )


def _bench_service_submit() -> Benchmark:
    def prepare():
        import shutil
        import tempfile

        from .runner.cache import ResultCache
        from .service.client import default_mix
        from .service.core import ScheduleRequest, SchedulingService

        root = tempfile.mkdtemp(prefix="repro-bench-service-")
        service = SchedulingService(
            cache=ResultCache(root, code_version="bench"), workers=0
        )
        requests = [ScheduleRequest.from_payload(p) for p in default_mix()]
        # Warm every scenario once: the benchmark then measures the warm
        # submit round-trip (queue -> dispatch -> memo/cache hit ->
        # response), i.e. the service overhead on top of the runner.
        for request in requests:
            service.submit_schedule(request).wait(60.0)
        reps = 4

        def run():
            for _ in range(reps):
                jobs = [service.submit_schedule(r) for r in requests]
                for job in jobs:
                    job.wait(60.0)
            # The tempdir is only cleaned when the interpreter exits the
            # benchmark; repeated runs reuse the warm cache by design.

        run.cleanup = lambda: (service.close(), shutil.rmtree(root, True))  # type: ignore[attr-defined]
        return run, reps * len(requests)

    return Benchmark(
        "service.submit",
        "Warm-cache submit round-trip through the scheduling service queue",
        prepare,
    )


def all_benchmarks() -> list[Benchmark]:
    """The benchmark registry, in reporting order."""
    return [
        _bench_placement_bsa(),
        _bench_placement_twophase(),
        _bench_unified_sms(),
        _bench_pressure_scratch(),
        _bench_simulate(),
        _bench_sweep_micro(),
        _bench_service_submit(),
    ]


def calibration_spin() -> float:
    """Seconds for a fixed pure-Python workload (host-speed yardstick)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        acc = 0
        for i in range(200_000):
            acc = (acc + i * i) % 1_000_003
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Running and recording
# ----------------------------------------------------------------------
@dataclass
class BenchResult:
    """Timings of one benchmark across repeats."""

    name: str
    description: str
    runs: list[float]
    calls: int
    #: Per-phase wall-time breakdown (``repro.obs.trace.PHASES`` snapshot)
    #: from one extra *untimed* profiled pass; empty when no hooks fired.
    phases: dict = field(default_factory=dict)

    @property
    def best_s(self) -> float:
        return min(self.runs)

    @property
    def mean_s(self) -> float:
        return sum(self.runs) / len(self.runs)

    def to_dict(self) -> dict:
        doc = {
            "description": self.description,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "runs": self.runs,
            "calls": self.calls,
        }
        if self.phases:
            doc["phases"] = self.phases
        return doc


@dataclass
class BenchReport:
    """All results of one harness invocation plus environment metadata."""

    results: list[BenchResult]
    quick: bool
    repeats: int
    calibration_s: float
    baseline: dict | None = None
    baseline_source: str | None = None
    created_unix: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        from .runner.cache import default_code_version

        doc = {
            "format": BENCH_FORMAT,
            "created_unix": self.created_unix,
            "code_version": default_code_version(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "quick": self.quick,
            "repeats": self.repeats,
            "calibration_s": self.calibration_s,
            "results": {r.name: r.to_dict() for r in self.results},
        }
        if self.baseline is not None:
            doc["baseline"] = {
                "source": self.baseline_source,
                "code_version": self.baseline.get("code_version"),
                "created_unix": self.baseline.get("created_unix"),
                "calibration_s": self.baseline.get("calibration_s"),
                "results": {
                    name: {"best_s": entry.get("best_s"), "mean_s": entry.get("mean_s")}
                    for name, entry in self.baseline.get("results", {}).items()
                },
            }
        return doc

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable table, with speedups when a baseline is loaded."""
        base = (self.baseline or {}).get("results", {})
        header = f"{'benchmark':<22} {'best':>10} {'mean':>10} {'calls':>6}"
        if base:
            header += f" {'baseline':>10} {'speedup':>8}"
        lines = [header, "-" * len(header)]
        for r in self.results:
            line = (
                f"{r.name:<22} {r.best_s * 1e3:>8.1f}ms {r.mean_s * 1e3:>8.1f}ms"
                f" {r.calls:>6}"
            )
            if base:
                before = base.get(r.name, {}).get("best_s")
                if before:
                    line += f" {before * 1e3:>8.1f}ms {before / r.best_s:>7.2f}x"
                else:
                    line += f" {'-':>10} {'-':>8}"
            lines.append(line)
        return "\n".join(lines)


def run_benchmarks(
    *,
    quick: bool = False,
    repeats: int | None = None,
    only: str | None = None,
    baseline: dict | None = None,
    baseline_source: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> BenchReport:
    """Execute the registry and return the report.

    ``only`` filters benchmarks by substring; ``baseline`` (a previously
    recorded document) is embedded for before/after reporting.
    """
    if repeats is None:
        repeats = 2 if quick else 5
    calibration_before = calibration_spin()
    results: list[BenchResult] = []
    for bench in all_benchmarks():
        if only and only not in bench.name:
            continue
        if quick and bench.heavy:
            continue
        if progress:
            progress(f"{bench.name}: preparing")
        run, calls = bench.prepare()
        run()  # warm-up: fills caches (bytecode, allocator) outside timing
        runs = []
        phases: dict = {}
        gc.collect()  # start from a clean heap; prior benchmarks' garbage
        gc_was_enabled = gc.isenabled()
        gc.disable()  # ... and no collector pauses inside the timed region
        try:
            for _ in range(repeats):
                t0 = time.perf_counter()
                run()
                runs.append(time.perf_counter() - t0)
            # One extra pass with phase profiling on — *after* the timed
            # repeats and never counted in them, since the hooks
            # themselves cost a little.  Yields the per-phase breakdown
            # (ordering / probe / commit / sim) stored per benchmark.
            PHASES.reset()
            PHASES.enabled = True
            try:
                run()
            finally:
                PHASES.enabled = False
            phases = PHASES.snapshot()
            PHASES.reset()
        finally:
            if gc_was_enabled:
                gc.enable()
            # Benchmarks owning external state (a live service, a temp
            # cache dir) attach a ``cleanup`` attribute to the closure.
            cleanup = getattr(run, "cleanup", None)
            if cleanup is not None:
                cleanup()
        results.append(
            BenchResult(bench.name, bench.description, runs, calls, phases=phases)
        )
        if progress:
            progress(f"{bench.name}: best {min(runs) * 1e3:.1f}ms over {repeats} runs")
    # Sample the host yardstick before AND after the benchmarks and keep
    # the slower spin: burstable/shared CPUs throttle *during* a
    # sustained run, and a start-only sample would under-scale the
    # baseline in --compare and fail the gate on unchanged code.
    calibration_s = max(calibration_before, calibration_spin())
    return BenchReport(
        results=results,
        quick=quick,
        repeats=repeats,
        calibration_s=calibration_s,
        baseline=baseline,
        baseline_source=baseline_source,
    )


# ----------------------------------------------------------------------
# BENCH_<n>.json management
# ----------------------------------------------------------------------
def existing_bench_files(directory: Path) -> list[tuple[int, Path]]:
    """(index, path) of every ``BENCH_<n>.json`` in *directory*, sorted."""
    found = []
    if directory.is_dir():
        for path in directory.iterdir():
            m = _BENCH_NAME.match(path.name)
            if m:
                found.append((int(m.group(1)), path))
    return sorted(found)


def next_bench_path(directory: Path) -> Path:
    """Where ``--record`` writes: the next free ``BENCH_<n>.json``."""
    files = existing_bench_files(directory)
    n = files[-1][0] + 1 if files else 1
    return directory / f"BENCH_{n}.json"


def latest_bench_path(directory: Path) -> Path | None:
    """The highest-numbered ``BENCH_<n>.json``, or None."""
    files = existing_bench_files(directory)
    return files[-1][1] if files else None


def load_bench(path: Path) -> dict:
    """Load and minimally validate a recorded benchmark document."""
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or "results" not in doc:
        raise ValueError(f"{path}: not a benchmark document")
    return doc


def write_bench(report: BenchReport, path: Path) -> Path:
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One benchmark that got slower than the gate allows."""

    name: str
    baseline_s: float
    current_s: float

    @property
    def slowdown(self) -> float:
        return self.current_s / self.baseline_s


def find_regressions(
    report: BenchReport, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> list[Regression]:
    """Benchmarks slower than ``baseline`` by more than ``threshold``.

    Baseline times are rescaled by the calibration ratio when both
    documents carry one, so a baseline recorded on different hardware
    still gates meaningfully.  Benchmarks present on only one side are
    skipped (renames and new benchmarks must not fail the gate).
    """
    out = []
    base = baseline.get("results", {})
    scale = 1.0
    base_cal = baseline.get("calibration_s")
    if base_cal and report.calibration_s:
        scale = report.calibration_s / base_cal
    for r in report.results:
        before = base.get(r.name, {}).get("best_s")
        if not before:
            continue
        adjusted = before * scale
        if r.best_s > adjusted * (1.0 + threshold):
            out.append(Regression(r.name, adjusted, r.best_s))
    return out
