"""Command-line entry point: ``repro-vliw <command>``.

Commands map one-to-one onto the paper's artefacts::

    repro-vliw table1              # machine configurations
    repro-vliw table2 [--buses N]  # cycle-time model
    repro-vliw fig4  [--quick]     # bus-sensitivity sweep
    repro-vliw fig7                # unrolling walk-through examples
    repro-vliw fig8  [--quick]     # per-program IPC grid
    repro-vliw fig9  [--quick]     # cycle-time-aware speed-ups
    repro-vliw fig10 [--quick]     # code-size impact
    repro-vliw gap   [--quick]     # heuristic-vs-optimal II/MaxLive table
    repro-vliw schedule KERNEL [--scheduler NAME]
                                   # schedule a named kernel and print it
    repro-vliw schedule --list     # the kernel and scheduler catalogues
    repro-vliw simulate KERNEL [--niter N] [--miss-rate R]
                                   # execute the emitted code cycle by cycle
    repro-vliw schedule FILE.loop  # schedule a textual loop-IR program
    repro-vliw simulate FILE.loop  # ... and run its renamed kernel
    repro-vliw workloads [--tag T] # the full workload registry
    repro-vliw crossval [--quick]  # Figure 8 grid re-run under simulation
    repro-vliw sweep GRID          # run any declared grid via the runner
    repro-vliw sweep GRID --distributed
                                   # same grid on fabric workers (byte-identical)
    repro-vliw worker --coordinator URL
                                   # pull-based sweep worker for the fabric
    repro-vliw report FILE         # aggregate a recorded run report
    repro-vliw cache [stats|clear] # inspect / wipe the result cache
    repro-vliw serve               # persistent scheduling service (HTTP)
    repro-vliw submit KERNEL       # schedule via a running service
    repro-vliw loadtest            # drive N concurrent synthetic clients

Every grid command (fig4/fig8/fig9/fig10, gap, crossval, sweep) executes
through the parallel, cache-backed runner: ``--jobs N`` shards the work
across N worker processes, results persist in the on-disk cache
(``~/.cache/repro-vliw`` or ``$REPRO_VLIW_CACHE``) so repeated and
interrupted runs resume from what is already computed, ``--fresh``
recomputes ignoring cached entries, and ``--no-cache`` disables
persistence entirely.  ``--quick`` trims sweeps (fewer bus counts /
cluster counts) for fast inspection; full runs regenerate exactly what
EXPERIMENTS.md records.

``--report-out FILE`` on any grid command records a structured run
report (one record per scenario point: II, MII, MaxLive, cache source,
wall time, trace id) that ``repro-vliw report FILE`` aggregates into
per-kernel / per-config / per-scheduler tables.
"""

from __future__ import annotations

import argparse
import sys

from .arch.configs import clustered_config, unified_config
from .codegen.vliw import render_schedule
from .core.verify import verify_schedule
from .errors import ParseError, ReproError, WorkloadError
from .experiments import (
    ExperimentContext,
    average_ipc,
    best_speedup,
    crossval_rows,
    fig4_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    make_scheduler,
    max_cycle_divergence,
    max_ipc_divergence,
    render_gap,
    run_crossval,
    run_fig4,
    run_fig7,
    run_fig7_ladder,
    run_fig8,
    run_fig9,
    run_fig10,
    run_gap,
    run_table1,
    run_table2,
)
from .codegen.rename import rename_kernel
from .ir.frontend import LOOP_SUFFIX, parse_file
from .ir.unroll import unroll_graph
from .perf.report import format_table
from .runner import GRIDS, SCHEDULERS, ResultCache, scheduler_table
from .sim import PerfectMemory, RandomMissMemory, crosscheck_schedule
from .workloads.kernels import kernel_table, resolve_kernel
from .workloads.registry import workload_table


def _cache(args: argparse.Namespace) -> ResultCache | None:
    """The result cache selected by the command's flags."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    return ResultCache(cache_dir)


def _ctx(args: argparse.Namespace) -> ExperimentContext:
    """An experiment context wired to the CLI's cache/jobs/fresh flags."""
    recorder = None
    if getattr(args, "report_out", None):
        from .obs.report import RunRecorder

        recorder = RunRecorder()
    return ExperimentContext(
        cache=_cache(args),
        jobs=getattr(args, "jobs", 1),
        fresh=getattr(args, "fresh", False),
        recorder=recorder,
    )


def _write_report(args: argparse.Namespace, ctx: ExperimentContext, sweep: str) -> None:
    """Save the context's recorded run report when --report-out was given."""
    out = getattr(args, "report_out", None)
    if not out or ctx.recorder is None:
        return
    from pathlib import Path

    report = ctx.recorder.report(sweep=sweep)
    report.save(Path(out))
    print(f"\nrun report ({len(report.records)} point(s)) -> {out}")


def _sweep_flags(parser: argparse.ArgumentParser) -> None:
    """The shared runner flags: --jobs / --fresh / --no-cache / --cache-dir."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep (default: 1, in-process)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="recompute every point, ignoring cached results",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_VLIW_CACHE or ~/.cache/repro-vliw)",
    )
    parser.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="record a structured run report (for: repro-vliw report FILE)",
    )


def cmd_table1(_args: argparse.Namespace) -> None:
    print(format_table(run_table1(), title="Table 1: configurations"))


def cmd_table2(args: argparse.Namespace) -> None:
    rows = run_table2(n_buses=args.buses)
    print(format_table(rows, title="Table 2: cycle times (ps)", floatfmt=".1f"))


def cmd_fig4(args: argparse.Namespace) -> None:
    sweep = (1, 2, 4) if args.quick else None
    kwargs = {"bus_sweep": sweep} if sweep else {}
    ctx = _ctx(args)
    points = run_fig4(ctx, **kwargs)
    print(format_table(fig4_rows(points), title="Figure 4: relative IPC vs buses"))
    print(f"\n[{ctx.stats.render()}]")
    _write_report(args, ctx, "fig4")


def cmd_fig7(_args: argparse.Namespace) -> None:
    case = run_fig7()
    print(format_table(fig7_rows(case), title="Figure 7 (paper 6-node graph)"))
    print()
    case = run_fig7_ladder()
    print(format_table(fig7_rows(case), title="Figure 7 (ladder variant)"))


def cmd_fig8(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    ctx = _ctx(args)
    points = run_fig8(ctx, **kwargs)
    print(format_table(fig8_rows(points), title="Figure 8: IPC per program"))
    print()
    print(format_table(average_ipc(points), title="Figure 8: averages"))
    print(f"\n[{ctx.stats.render()}]")
    _write_report(args, ctx, "fig8")


def cmd_fig9(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"cluster_counts": (4,), "bus_counts": (1,)}
    ctx = _ctx(args)
    points = run_fig9(ctx, **kwargs)
    print(format_table(fig9_rows(points), title="Figure 9: speed-up vs unified"))
    best = best_speedup(points)
    print(
        f"\nbest: {best.n_clusters}-cluster / {best.n_buses} bus / "
        f"{best.scenario} -> {best.report.speedup:.2f}x"
    )
    print(f"\n[{ctx.stats.render()}]")
    _write_report(args, ctx, "fig9")


def cmd_fig10(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    ctx = _ctx(args)
    points = run_fig10(ctx, **kwargs)
    print(format_table(fig10_rows(points), title="Figure 10: code size (normalised)"))
    print(f"\n[{ctx.stats.render()}]")
    _write_report(args, ctx, "fig10")


def cmd_gap(args: argparse.Namespace) -> None:
    ctx = _ctx(args)
    points = run_gap(ctx, quick=args.quick)
    print(render_gap(points, args.format))
    if args.format == "text":
        print(f"\n[{ctx.stats.render()}]")
    _write_report(args, ctx, "gap")


def _resolve_kernel_or_exit(name: str):
    try:
        return resolve_kernel(name)[1]
    except WorkloadError as exc:
        sys.exit(str(exc))  # includes the did-you-mean suggestion
    except KeyError as exc:
        sys.exit(str(exc.args[0]))


def _loop_file_or_none(name: str, command: str):
    """Parse *name* as a ``.loop`` program when it denotes a file.

    Anything ending in ``.loop`` (or any path to an existing file) goes
    through the textual frontend; plain names fall back to the workload
    registry.  Returns the parsed :class:`~repro.ir.loop.Loop` or
    ``None``.
    """
    import os

    if not (name.endswith(LOOP_SUFFIX) or os.path.sep in name or os.path.isfile(name)):
        return None
    try:
        return parse_file(name)
    except ParseError as exc:
        sys.exit(f"{command}: {exc}")


def _schedule_kernel(args: argparse.Namespace, graph):
    name = getattr(args, "scheduler", "bsa")
    if args.clusters == 1:
        config = unified_config()
    else:
        config = clustered_config(args.clusters, args.buses, args.latency)
    try:
        scheduler = make_scheduler(name, config)
    except KeyError:
        sys.exit(
            f"schedule: unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        )
    sched = scheduler.schedule(graph)
    verify_schedule(sched)
    return sched


def cmd_schedule(args: argparse.Namespace) -> None:
    if args.list:
        print(
            format_table(
                kernel_table(), title="Kernels (canonical name and alias)"
            )
        )
        print()
        print(
            format_table(
                scheduler_table(), title="Schedulers (--scheduler NAME)"
            )
        )
        return
    if not args.kernel:
        sys.exit("schedule: a KERNEL name or FILE.loop is required (or use --list)")
    loop = _loop_file_or_none(args.kernel, "schedule")
    if loop is not None:
        graph = loop.graph
    else:
        graph = _resolve_kernel_or_exit(args.kernel)()
    try:
        sched = _schedule_kernel(args, graph)
    except ReproError as exc:
        sys.exit(f"schedule: {exc}")
    print(sched.describe())
    print()
    print(render_schedule(sched))


def cmd_simulate(args: argparse.Namespace) -> None:
    loop = _loop_file_or_none(args.kernel, "simulate")
    if loop is not None:
        graph = loop.graph
        if args.niter == -1:
            args.niter = loop.trip_count
    else:
        graph = _resolve_kernel_or_exit(args.kernel)()
    if args.niter == -1:
        args.niter = 100
    source_ops = len(graph)
    try:
        if args.unroll > 1:
            graph = unroll_graph(graph, args.unroll)
        sched = _schedule_kernel(args, graph)
        memory = (
            RandomMissMemory(args.miss_rate, args.miss_penalty, args.seed)
            if args.miss_rate > 0.0
            else PerfectMemory()
        )
        check = crosscheck_schedule(
            sched,
            args.niter,
            unroll_factor=args.unroll,
            ops_per_source_iteration=source_ops,
            memory=memory,
        )
    except (ValueError, ReproError) as exc:
        sys.exit(f"simulate: {exc}")
    print(check.report.render())
    print()
    print(check.render())
    if loop is not None:
        # Frontend programs get the full executable artefact: the
        # MVE-unrolled, register-renamed kernel the simulator timed.
        print()
        print(rename_kernel(sched).render())


def cmd_workloads(args: argparse.Namespace) -> None:
    rows = workload_table(args.tag)
    if not rows:
        sys.exit(f"workloads: no workloads tagged {args.tag!r}")
    title = "Workload registry" + (f" (tag={args.tag})" if args.tag else "")
    print(format_table(rows, title=title))


def cmd_crossval(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"cluster_counts": (4,), "bus_counts": (1,), "latencies": (1, 4)}
    ctx = _ctx(args)
    points = run_crossval(ctx, **kwargs)
    print(
        format_table(
            crossval_rows(points),
            title="Cross-validation: analytic model vs simulation (Figure 8 grid)",
            floatfmt=".3e",
        )
    )
    print(
        f"\n{len(points)} loop executions simulated; max IPC divergence "
        f"{max_ipc_divergence(points):.3e}, max cycle divergence "
        f"{max_cycle_divergence(points)}"
    )
    print(f"[{ctx.stats.render()}]")
    _write_report(args, ctx, "crossval")


def cmd_sweep(args: argparse.Namespace) -> None:
    if args.list or not args.grid:
        rows = [
            {"grid": spec.name, "description": spec.description}
            for spec in GRIDS.values()
        ]
        print(format_table(rows, title="Declared grids (repro-vliw sweep GRID)"))
        if not args.list and not args.grid:
            sys.exit("sweep: a GRID name is required (or use --list)")
        return
    spec = GRIDS.get(args.grid)
    if spec is None:
        sys.exit(f"sweep: unknown grid {args.grid!r}; known: {sorted(GRIDS)}")
    if args.coordinator and not args.distributed:
        sys.exit("sweep: --coordinator requires --distributed")
    if args.distributed:
        output = _distributed_sweep(args, spec)
    else:
        ctx = _ctx(args)
        output = spec.run(ctx, args.quick)
        print(output)
        print(f"\n[{ctx.stats.render()}]")
        _write_report(args, ctx, args.grid)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(output + "\n")
        print(f"rendered output -> {args.out}", file=sys.stderr)


def _distributed_sweep(args: argparse.Namespace, spec) -> str:
    """Run one grid on the fabric; returns (and prints) the rendered output.

    Two modes:

    * ``--coordinator URL`` — submit the grid as a distributed job to a
      *running* ``repro-vliw serve`` instance and let its fabric (and
      whatever workers are pulling from it) execute the misses.
    * no ``--coordinator`` — start an **embedded** coordinator: serve on
      ``--host``/``--port``, print the ``repro-vliw worker`` line to
      attach workers, run the grid through the fabric, shut down.  The
      sweep blocks until workers complete it (or ``--timeout`` passes).
    """
    from .errors import ServiceError

    if args.coordinator:
        from .fabric.worker import client_from_url

        try:
            client = client_from_url(args.coordinator, timeout=args.timeout)
        except ValueError as exc:
            sys.exit(f"sweep: {exc}")
        if not client.wait_until_healthy(timeout=10.0):
            sys.exit(f"sweep: no service answering at {client.base_url}")
        try:
            doc = client.sweep(
                grid=spec.name,
                quick=args.quick,
                distributed=True,
                timeout_s=args.timeout,
            )
            if doc["status"] in ("queued", "running"):
                doc = client.poll_job(doc["job"], timeout=args.timeout)
        except ServiceError as exc:
            sys.exit(f"sweep: {exc}")
        if doc["status"] != "done":
            sys.exit(
                f"sweep: job {doc.get('job')} ended {doc['status']!r}: "
                f"{doc.get('error')}"
            )
        print(doc["output"])
        return doc["output"]

    import threading

    from .service import SchedulingService, ServiceServer

    service = SchedulingService(
        cache=_cache(args),
        workers=0,
        fabric_opts={"sweep_timeout_s": args.timeout},
    )
    try:
        server = ServiceServer(service, args.host, args.port)
    except OSError as exc:
        service.close()
        sys.exit(f"sweep: cannot bind {args.host}:{args.port}: {exc}")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(
        f"coordinator listening on {server.url} — attach workers with:\n"
        f"  repro-vliw worker --coordinator {server.url}",
        file=sys.stderr,
        flush=True,
    )
    ctx = _ctx(args)
    ctx.executor = service.fabric.execute
    try:
        try:
            output = spec.run(ctx, args.quick)
        except ServiceError as exc:
            sys.exit(f"sweep: {exc}")
        print(output)
        print(f"\n[{ctx.stats.render()}]")
        _write_report(args, ctx, args.grid)
        return output
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(5.0)


def cmd_worker(args: argparse.Namespace) -> None:
    from .errors import ServiceError
    from .fabric.worker import FabricWorker, WorkerDied

    progress = None
    if not args.quiet:
        progress = lambda msg: print(f"[{msg}]", file=sys.stderr, flush=True)  # noqa: E731
    try:
        worker = FabricWorker(
            args.coordinator,
            worker_id=args.id,
            max_shards=args.max_shards,
            fail_after=args.fail_after,
            idle_exit_s=args.idle_exit,
            poll_s=args.poll,
            timeout=args.timeout,
            wait_healthy_s=args.wait_healthy,
            progress=progress,
        )
    except ValueError as exc:
        sys.exit(f"worker: {exc}")
    try:
        stats = worker.run()
    except WorkerDied as exc:
        print(worker.stats.render(), file=sys.stderr)
        sys.exit(f"worker: {exc}")
    except ServiceError as exc:
        sys.exit(f"worker: {exc}")
    except KeyboardInterrupt:
        print(worker.stats.render(), file=sys.stderr)
        sys.exit(130)
    print(stats.render())


def cmd_bench(args: argparse.Namespace) -> None:
    from pathlib import Path

    from . import bench

    directory = Path(args.dir)
    baseline_doc = None
    baseline_source = None
    compare_doc = None
    compare_source = None
    try:
        if args.baseline:
            baseline_source = args.baseline
            baseline_doc = bench.load_bench(Path(args.baseline))
        if args.compare is not None:
            compare_path = (
                Path(args.compare) if args.compare else bench.latest_bench_path(directory)
            )
            if compare_path is None:
                sys.exit(f"bench: no BENCH_<n>.json found in {directory} to compare against")
            compare_source = str(compare_path)
            compare_doc = bench.load_bench(compare_path)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench: {exc}")

    # A --compare baseline doubles as the report's before/after reference
    # unless an explicit --baseline was given.
    if baseline_doc is None and compare_doc is not None:
        baseline_doc, baseline_source = compare_doc, compare_source

    report = bench.run_benchmarks(
        quick=args.quick,
        repeats=args.repeat,
        only=args.only,
        baseline=baseline_doc,
        baseline_source=baseline_source,
        progress=(None if args.quiet else lambda msg: print(f"  [{msg}]")),
    )
    print()
    print(report.render())

    if args.record:
        path = bench.next_bench_path(directory)
        bench.write_bench(report, path)
        print(f"\nrecorded -> {path}")
    if args.output:
        bench.write_bench(report, Path(args.output))
        print(f"\nwritten -> {args.output}")

    if compare_doc is not None:
        regressions = bench.find_regressions(report, compare_doc, args.threshold)
        if regressions:
            print(f"\nREGRESSION vs {compare_source} (threshold {args.threshold:.0%}):")
            for reg in regressions:
                print(
                    f"  {reg.name}: {reg.baseline_s * 1e3:.1f}ms -> "
                    f"{reg.current_s * 1e3:.1f}ms ({reg.slowdown:.2f}x slower)"
                )
            sys.exit(1)
        print(f"\nno regression vs {compare_source} (threshold {args.threshold:.0%})")


def cmd_serve(args: argparse.Namespace) -> None:
    from .service import SchedulingService, ServiceServer

    service = SchedulingService(cache=_cache(args), workers=args.workers)
    try:
        server = ServiceServer(
            service, args.host, args.port, quiet=not args.verbose
        )
    except OSError as exc:
        service.close()
        sys.exit(f"serve: cannot bind {args.host}:{args.port}: {exc}")
    cache_line = (
        str(service.cache.root) if service.cache is not None else "disabled"
    )
    print(
        f"repro-vliw service listening on {server.url} "
        f"(workers={service.workers}, cache={cache_line})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (finishing the batch in flight) ...")
    finally:
        server.server_close()
        service.close()


def _service_client(args: argparse.Namespace):
    from .service import ServiceClient

    return ServiceClient(args.host, args.port, timeout=args.timeout)


def cmd_submit(args: argparse.Namespace) -> None:
    import json as _json

    from .errors import ServiceError

    payload = {
        "kernel": args.kernel,
        "clusters": args.clusters,
        "buses": args.buses,
        "latency": args.latency,
        "scheduler": args.scheduler,
        "policy": args.policy,
    }
    if args.simulate:
        payload.update(
            simulate=True,
            niter=args.niter,
            miss_rate=args.miss_rate,
            miss_penalty=args.miss_penalty,
            seed=args.seed,
        )
    client = _service_client(args)
    try:
        if args.no_wait:
            doc = client.schedule(payload, wait=False)
            print(f"queued {doc['job']} (poll GET /jobs/{doc['job']})")
            return
        doc = client.schedule(payload)
    except ServiceError as exc:
        sys.exit(f"submit: {exc}")
    if doc["status"] != "done":
        sys.exit(f"submit: job {doc.get('job')} ended {doc['status']!r}: "
                 f"{doc.get('error')}")
    result = doc["result"]
    if args.json:
        print(_json.dumps(result, indent=2, sort_keys=True))
        return
    print(result["rendered"])
    if result.get("sim") is not None:
        sim = result["sim"]
        print()
        print(
            f"simulated {sim['simulated_cycles']} cycles "
            f"(analytic {sim['analytic_cycles']}), "
            f"IPC {sim['simulated_ipc']:.3f}"
        )


def cmd_loadtest(args: argparse.Namespace) -> None:
    import json as _json

    from .errors import ServiceError
    from .service import run_loadtest

    client = _service_client(args)
    if not client.wait_until_healthy(timeout=args.wait_healthy):
        sys.exit(
            f"loadtest: no service answering at {client.base_url} "
            f"(start one with: repro-vliw serve --port {args.port})"
        )
    try:
        report = run_loadtest(
            args.host,
            args.port,
            clients=args.clients,
            requests=args.requests,
            verify=not args.no_verify,
            timeout=args.timeout,
        )
    except (ServiceError, ValueError) as exc:
        sys.exit(f"loadtest: {exc}")
    if args.json:
        print(_json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(
            _json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"report -> {args.out}")
    if not report.ok:
        sys.exit(1)
    if report.hit_rate < args.min_hit_rate:
        sys.exit(
            f"loadtest: cache-hit rate {report.hit_rate:.1%} below required "
            f"{args.min_hit_rate:.1%}"
        )
    if args.max_p95_ms is not None and report.p95_s * 1e3 > args.max_p95_ms:
        sys.exit(
            f"loadtest: p95 latency {report.p95_s * 1e3:.1f}ms above allowed "
            f"{args.max_p95_ms:.1f}ms"
        )


def cmd_report(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .obs.report import RunReport, render_report

    try:
        report = RunReport.load(Path(args.file))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        sys.exit(f"report: cannot load {args.file!r}: {exc}")
    try:
        print(render_report(report, by=args.by, fmt=args.format))
    except (KeyError, ValueError) as exc:
        sys.exit(f"report: {exc}")


def cmd_cache(args: argparse.Namespace) -> None:
    cache = ResultCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return
    print(cache.stats().render())


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro-vliw",
        description="Reproduction of Sanchez & Gonzalez, ICPP 2000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1").set_defaults(func=cmd_table1)
    p = sub.add_parser("table2")
    p.add_argument("--buses", type=int, default=1)
    p.set_defaults(func=cmd_table2)
    for name, func, has_quick in (
        ("fig4", cmd_fig4, True),
        ("fig7", cmd_fig7, False),
        ("fig8", cmd_fig8, True),
        ("fig9", cmd_fig9, True),
        ("fig10", cmd_fig10, True),
        ("crossval", cmd_crossval, True),
    ):
        p = sub.add_parser(name)
        if has_quick:
            p.add_argument("--quick", action="store_true")
        if name != "fig7":
            _sweep_flags(p)
        p.set_defaults(func=func)
    p = sub.add_parser("gap")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "markdown"),
                   help="output format (default: text)")
    _sweep_flags(p)
    p.set_defaults(func=cmd_gap)
    p = sub.add_parser(
        "sweep", help="run a declared scenario grid through the runner"
    )
    p.add_argument("grid", nargs="?", help=f"one of: {', '.join(sorted(GRIDS))}")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--list", action="store_true", help="list declared grids")
    p.add_argument("--distributed", action="store_true",
                   help="execute cache misses on fabric workers (pull-based) "
                        "instead of local processes; byte-identical output")
    p.add_argument("--coordinator", default=None, metavar="URL",
                   help="submit to a running repro-vliw serve instance "
                        "(default: start an embedded coordinator)")
    p.add_argument("--host", default="127.0.0.1",
                   help="embedded coordinator bind host (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8537,
                   help="embedded coordinator port (0 = ephemeral; default 8537)")
    p.add_argument("--timeout", type=float, default=900.0,
                   help="distributed sweep deadline in seconds (default: 900)")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the rendered tables to FILE "
                        "(byte-identity checks diff these)")
    _sweep_flags(p)
    p.set_defaults(func=cmd_sweep)
    p = sub.add_parser(
        "worker",
        help="pull-based sweep worker: claim shards from a coordinator, "
             "execute, post results",
    )
    p.add_argument("--coordinator", default="http://127.0.0.1:8537",
                   metavar="URL",
                   help="coordinator URL (default: http://127.0.0.1:8537)")
    p.add_argument("--id", default=None,
                   help="worker identity in leases/stats (default: generated)")
    p.add_argument("--max-shards", type=int, default=None, metavar="N",
                   help="exit after completing N shards")
    p.add_argument("--fail-after", type=int, default=None, metavar="N",
                   help="die after executing N points (fault injection)")
    p.add_argument("--idle-exit", type=float, default=None, metavar="S",
                   help="exit after S seconds with no work (default: poll "
                        "until the coordinator goes away)")
    p.add_argument("--poll", type=float, default=0.05, metavar="S",
                   help="idle poll interval in seconds (default: 0.05)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request HTTP timeout in seconds")
    p.add_argument("--wait-healthy", type=float, default=10.0,
                   help="seconds to wait for the coordinator's /healthz")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-shard progress lines")
    p.set_defaults(func=cmd_worker)
    p = sub.add_parser(
        "bench", help="micro-benchmark the hot paths; record/compare BENCH_<n>.json"
    )
    p.add_argument("--quick", action="store_true",
                   help="fewer repeats, skip heavy benchmarks (the CI mode)")
    p.add_argument("--repeat", type=int, default=None,
                   help="timed repeats per benchmark (default: 5, quick: 2)")
    p.add_argument("--only", default=None, metavar="SUBSTR",
                   help="run only benchmarks whose name contains SUBSTR")
    p.add_argument("--record", action="store_true",
                   help="write the next BENCH_<n>.json in --dir")
    p.add_argument("--compare", nargs="?", const="", default=None, metavar="FILE",
                   help="fail on >threshold regression vs FILE "
                        "(default: latest BENCH_<n>.json in --dir)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="embed FILE's numbers as the before/after reference")
    p.add_argument("--threshold", type=float, default=0.20,
                   help="fractional slowdown tolerated by --compare (default 0.20)")
    p.add_argument("--dir", default=".",
                   help="directory for BENCH_<n>.json files (default: cwd)")
    p.add_argument("--output", default=None, metavar="PATH",
                   help="also write the report JSON to an explicit path")
    p.add_argument("--quiet", action="store_true", help="suppress progress lines")
    p.set_defaults(func=cmd_bench)
    p = sub.add_parser(
        "serve", help="run the persistent scheduling service (JSON over HTTP)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8537,
                   help="listen port (0 picks an ephemeral port; default 8537)")
    p.add_argument("--workers", type=int, default=2,
                   help="shared worker processes (0 = in-process execution)")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.add_argument(
        "--no-cache", action="store_true",
        help="do not read or write the on-disk result cache",
    )
    p.add_argument(
        "--cache-dir", default=None,
        help="cache directory (default: $REPRO_VLIW_CACHE or ~/.cache/repro-vliw)",
    )
    p.set_defaults(func=cmd_serve)
    p = sub.add_parser(
        "submit", help="schedule a kernel through a running service"
    )
    p.add_argument("kernel")
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.add_argument("--scheduler", default="bsa")
    p.add_argument("--policy", default="none",
                   help="unrolling policy: none / all / selective")
    p.add_argument("--simulate", action="store_true",
                   help="also execute the schedule on the simulator")
    p.add_argument("--niter", type=int, default=100)
    p.add_argument("--miss-rate", type=float, default=0.0)
    p.add_argument("--miss-penalty", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="enqueue and print the job id instead of waiting")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON result payload")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8537)
    p.add_argument("--timeout", type=float, default=120.0)
    p.set_defaults(func=cmd_submit)
    p = sub.add_parser(
        "loadtest",
        help="drive concurrent synthetic clients against a running service",
    )
    p.add_argument("--clients", type=int, default=8)
    p.add_argument("--requests", type=int, default=64)
    p.add_argument("--no-verify", action="store_true",
                   help="skip the byte-identity check against the direct path")
    p.add_argument("--min-hit-rate", type=float, default=0.0, metavar="FRAC",
                   help="fail unless the cache-hit rate reaches FRAC (0..1)")
    p.add_argument("--max-p95-ms", type=float, default=None, metavar="MS",
                   help="fail if p95 request latency exceeds MS milliseconds")
    p.add_argument("--out", default=None, metavar="FILE",
                   help="also write the full report (latency histogram, "
                        "trace ids of failed requests) as JSON to FILE")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8537)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-request HTTP timeout in seconds")
    p.add_argument("--wait-healthy", type=float, default=10.0,
                   help="seconds to wait for /healthz before giving up")
    p.set_defaults(func=cmd_loadtest)
    p = sub.add_parser(
        "report",
        help="aggregate a run report recorded with --report-out",
    )
    p.add_argument("file", help="run-report JSON written by --report-out")
    p.add_argument("--by", default="kernel",
                   choices=("kernel", "config", "scheduler", "policy"),
                   help="grouping dimension (default: kernel)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "markdown"),
                   help="output format (default: text)")
    p.set_defaults(func=cmd_report)
    p = sub.add_parser("cache", help="result-cache statistics / clearing")
    p.add_argument(
        "action", nargs="?", choices=("stats", "clear"), default="stats"
    )
    p.add_argument("--cache-dir", default=None)
    p.set_defaults(func=cmd_cache)
    p = sub.add_parser("workloads")
    p.add_argument("--list", action="store_true",
                   help="list every registered workload (the default)")
    p.add_argument("--tag", default=None,
                   help="filter by registry tag (kernel, livermore, specfp, ...)")
    p.set_defaults(func=cmd_workloads)
    p = sub.add_parser("schedule")
    p.add_argument("kernel", nargs="?", metavar="KERNEL|FILE.loop")
    p.add_argument("--list", action="store_true",
                   help="list kernels, aliases and schedulers")
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.add_argument("--scheduler", default="bsa",
                   help="registered scheduler (see --list; default: bsa)")
    p.set_defaults(func=cmd_schedule)
    p = sub.add_parser("simulate")
    p.add_argument("kernel", metavar="KERNEL|FILE.loop")
    p.add_argument("--niter", type=int, default=-1,
                   help="iterations to simulate (default: the .loop trip "
                        "directive, else 100)")
    p.add_argument("--miss-rate", type=float, default=0.0)
    p.add_argument("--miss-penalty", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.set_defaults(func=cmd_simulate)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
