"""Command-line entry point: ``repro-vliw <command>``.

Commands map one-to-one onto the paper's artefacts::

    repro-vliw table1              # machine configurations
    repro-vliw table2 [--buses N]  # cycle-time model
    repro-vliw fig4  [--quick]     # bus-sensitivity sweep
    repro-vliw fig7                # unrolling walk-through examples
    repro-vliw fig8  [--quick]     # per-program IPC grid
    repro-vliw fig9                # cycle-time-aware speed-ups
    repro-vliw fig10 [--quick]     # code-size impact
    repro-vliw schedule KERNEL     # schedule a named kernel and print it

``--quick`` trims sweeps (fewer bus counts / cluster counts) for fast
inspection; full runs regenerate exactly what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys

from .arch.configs import clustered_config, unified_config
from .codegen.vliw import render_schedule
from .core.bsa import BsaScheduler
from .core.unified import UnifiedScheduler
from .core.verify import verify_schedule
from .experiments import (
    ExperimentContext,
    average_ipc,
    best_speedup,
    fig4_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    run_fig4,
    run_fig7,
    run_fig7_ladder,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
)
from .perf.report import format_table
from .workloads.kernels import ALL_KERNELS


def _ctx() -> ExperimentContext:
    return ExperimentContext()


def cmd_table1(_args: argparse.Namespace) -> None:
    print(format_table(run_table1(), title="Table 1: configurations"))


def cmd_table2(args: argparse.Namespace) -> None:
    rows = run_table2(n_buses=args.buses)
    print(format_table(rows, title="Table 2: cycle times (ps)", floatfmt=".1f"))


def cmd_fig4(args: argparse.Namespace) -> None:
    sweep = (1, 2, 4) if args.quick else None
    kwargs = {"bus_sweep": sweep} if sweep else {}
    points = run_fig4(_ctx(), **kwargs)
    print(format_table(fig4_rows(points), title="Figure 4: relative IPC vs buses"))


def cmd_fig7(_args: argparse.Namespace) -> None:
    case = run_fig7()
    print(format_table(fig7_rows(case), title="Figure 7 (paper 6-node graph)"))
    print()
    case = run_fig7_ladder()
    print(format_table(fig7_rows(case), title="Figure 7 (ladder variant)"))


def cmd_fig8(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    points = run_fig8(_ctx(), **kwargs)
    print(format_table(fig8_rows(points), title="Figure 8: IPC per program"))
    print()
    print(format_table(average_ipc(points), title="Figure 8: averages"))


def cmd_fig9(_args: argparse.Namespace) -> None:
    points = run_fig9(_ctx())
    print(format_table(fig9_rows(points), title="Figure 9: speed-up vs unified"))
    best = best_speedup(points)
    print(
        f"\nbest: {best.n_clusters}-cluster / {best.n_buses} bus / "
        f"{best.scenario} -> {best.report.speedup:.2f}x"
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    points = run_fig10(_ctx(), **kwargs)
    print(format_table(fig10_rows(points), title="Figure 10: code size (normalised)"))


def cmd_schedule(args: argparse.Namespace) -> None:
    try:
        graph = ALL_KERNELS[args.kernel]()
    except KeyError:
        sys.exit(f"unknown kernel {args.kernel!r}; choose from {sorted(ALL_KERNELS)}")
    if args.clusters == 1:
        config = unified_config()
        scheduler = UnifiedScheduler(config)
    else:
        config = clustered_config(args.clusters, args.buses, args.latency)
        scheduler = BsaScheduler(config)
    sched = scheduler.schedule(graph)
    verify_schedule(sched)
    print(sched.describe())
    print()
    print(render_schedule(sched))


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro-vliw",
        description="Reproduction of Sanchez & Gonzalez, ICPP 2000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1").set_defaults(func=cmd_table1)
    p = sub.add_parser("table2")
    p.add_argument("--buses", type=int, default=1)
    p.set_defaults(func=cmd_table2)
    for name, func, has_quick in (
        ("fig4", cmd_fig4, True),
        ("fig7", cmd_fig7, False),
        ("fig8", cmd_fig8, True),
        ("fig9", cmd_fig9, False),
        ("fig10", cmd_fig10, True),
    ):
        p = sub.add_parser(name)
        if has_quick:
            p.add_argument("--quick", action="store_true")
        p.set_defaults(func=func)
    p = sub.add_parser("schedule")
    p.add_argument("kernel")
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.set_defaults(func=cmd_schedule)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
