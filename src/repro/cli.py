"""Command-line entry point: ``repro-vliw <command>``.

Commands map one-to-one onto the paper's artefacts::

    repro-vliw table1              # machine configurations
    repro-vliw table2 [--buses N]  # cycle-time model
    repro-vliw fig4  [--quick]     # bus-sensitivity sweep
    repro-vliw fig7                # unrolling walk-through examples
    repro-vliw fig8  [--quick]     # per-program IPC grid
    repro-vliw fig9  [--quick]     # cycle-time-aware speed-ups
    repro-vliw fig10 [--quick]     # code-size impact
    repro-vliw schedule KERNEL     # schedule a named kernel and print it
    repro-vliw simulate KERNEL [--niter N] [--miss-rate R]
                                   # execute the emitted code cycle by cycle
    repro-vliw crossval [--quick]  # Figure 8 grid re-run under simulation

``--quick`` trims sweeps (fewer bus counts / cluster counts) for fast
inspection; full runs regenerate exactly what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys

from .arch.configs import clustered_config, unified_config
from .codegen.vliw import render_schedule
from .core.bsa import BsaScheduler
from .core.unified import UnifiedScheduler
from .core.verify import verify_schedule
from .errors import ReproError
from .experiments import (
    ExperimentContext,
    average_ipc,
    best_speedup,
    crossval_rows,
    fig4_rows,
    fig7_rows,
    fig8_rows,
    fig9_rows,
    fig10_rows,
    max_cycle_divergence,
    max_ipc_divergence,
    run_crossval,
    run_fig4,
    run_fig7,
    run_fig7_ladder,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
)
from .ir.unroll import unroll_graph
from .perf.report import format_table
from .sim import PerfectMemory, RandomMissMemory, crosscheck_schedule
from .workloads.kernels import resolve_kernel


def _ctx() -> ExperimentContext:
    return ExperimentContext()


def cmd_table1(_args: argparse.Namespace) -> None:
    print(format_table(run_table1(), title="Table 1: configurations"))


def cmd_table2(args: argparse.Namespace) -> None:
    rows = run_table2(n_buses=args.buses)
    print(format_table(rows, title="Table 2: cycle times (ps)", floatfmt=".1f"))


def cmd_fig4(args: argparse.Namespace) -> None:
    sweep = (1, 2, 4) if args.quick else None
    kwargs = {"bus_sweep": sweep} if sweep else {}
    points = run_fig4(_ctx(), **kwargs)
    print(format_table(fig4_rows(points), title="Figure 4: relative IPC vs buses"))


def cmd_fig7(_args: argparse.Namespace) -> None:
    case = run_fig7()
    print(format_table(fig7_rows(case), title="Figure 7 (paper 6-node graph)"))
    print()
    case = run_fig7_ladder()
    print(format_table(fig7_rows(case), title="Figure 7 (ladder variant)"))


def cmd_fig8(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    points = run_fig8(_ctx(), **kwargs)
    print(format_table(fig8_rows(points), title="Figure 8: IPC per program"))
    print()
    print(format_table(average_ipc(points), title="Figure 8: averages"))


def cmd_fig9(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"cluster_counts": (4,), "bus_counts": (1,)}
    points = run_fig9(_ctx(), **kwargs)
    print(format_table(fig9_rows(points), title="Figure 9: speed-up vs unified"))
    best = best_speedup(points)
    print(
        f"\nbest: {best.n_clusters}-cluster / {best.n_buses} bus / "
        f"{best.scenario} -> {best.report.speedup:.2f}x"
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"bus_counts": (1,), "latencies": (1, 4)}
    points = run_fig10(_ctx(), **kwargs)
    print(format_table(fig10_rows(points), title="Figure 10: code size (normalised)"))


def _resolve_kernel_or_exit(name: str):
    try:
        return resolve_kernel(name)[1]
    except KeyError as exc:
        sys.exit(str(exc.args[0]))


def _schedule_kernel(args: argparse.Namespace, graph):
    if args.clusters == 1:
        config = unified_config()
        scheduler = UnifiedScheduler(config)
    else:
        config = clustered_config(args.clusters, args.buses, args.latency)
        scheduler = BsaScheduler(config)
    sched = scheduler.schedule(graph)
    verify_schedule(sched)
    return sched


def cmd_schedule(args: argparse.Namespace) -> None:
    factory = _resolve_kernel_or_exit(args.kernel)
    sched = _schedule_kernel(args, factory())
    print(sched.describe())
    print()
    print(render_schedule(sched))


def cmd_simulate(args: argparse.Namespace) -> None:
    factory = _resolve_kernel_or_exit(args.kernel)
    graph = factory()
    source_ops = len(graph)
    try:
        if args.unroll > 1:
            graph = unroll_graph(graph, args.unroll)
        sched = _schedule_kernel(args, graph)
        memory = (
            RandomMissMemory(args.miss_rate, args.miss_penalty, args.seed)
            if args.miss_rate > 0.0
            else PerfectMemory()
        )
        check = crosscheck_schedule(
            sched,
            args.niter,
            unroll_factor=args.unroll,
            ops_per_source_iteration=source_ops,
            memory=memory,
        )
    except (ValueError, ReproError) as exc:
        sys.exit(f"simulate: {exc}")
    print(check.report.render())
    print()
    print(check.render())


def cmd_crossval(args: argparse.Namespace) -> None:
    kwargs = {}
    if args.quick:
        kwargs = {"cluster_counts": (4,), "bus_counts": (1,), "latencies": (1, 4)}
    points = run_crossval(_ctx(), **kwargs)
    print(
        format_table(
            crossval_rows(points),
            title="Cross-validation: analytic model vs simulation (Figure 8 grid)",
            floatfmt=".3e",
        )
    )
    print(
        f"\n{len(points)} loop executions simulated; max IPC divergence "
        f"{max_ipc_divergence(points):.3e}, max cycle divergence "
        f"{max_cycle_divergence(points)}"
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro-vliw",
        description="Reproduction of Sanchez & Gonzalez, ICPP 2000.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1").set_defaults(func=cmd_table1)
    p = sub.add_parser("table2")
    p.add_argument("--buses", type=int, default=1)
    p.set_defaults(func=cmd_table2)
    for name, func, has_quick in (
        ("fig4", cmd_fig4, True),
        ("fig7", cmd_fig7, False),
        ("fig8", cmd_fig8, True),
        ("fig9", cmd_fig9, True),
        ("fig10", cmd_fig10, True),
        ("crossval", cmd_crossval, True),
    ):
        p = sub.add_parser(name)
        if has_quick:
            p.add_argument("--quick", action="store_true")
        p.set_defaults(func=func)
    p = sub.add_parser("schedule")
    p.add_argument("kernel")
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.set_defaults(func=cmd_schedule)
    p = sub.add_parser("simulate")
    p.add_argument("kernel")
    p.add_argument("--niter", type=int, default=100)
    p.add_argument("--miss-rate", type=float, default=0.0)
    p.add_argument("--miss-penalty", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--clusters", type=int, default=4)
    p.add_argument("--buses", type=int, default=1)
    p.add_argument("--latency", type=int, default=1)
    p.set_defaults(func=cmd_simulate)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
