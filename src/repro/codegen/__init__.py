"""VLIW code generation and code-size accounting."""

from .codesize import ZERO_SIZE, CodeSize, schedule_code_size
from .vliw import (
    KernelCode,
    expand_software_pipeline,
    generate_kernel,
    render_schedule,
)

__all__ = [
    "CodeSize",
    "KernelCode",
    "ZERO_SIZE",
    "expand_software_pipeline",
    "generate_kernel",
    "render_schedule",
    "schedule_code_size",
]
