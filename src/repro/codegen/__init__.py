"""VLIW code generation, code-size accounting and execution lowering."""

from .codesize import ZERO_SIZE, CodeSize, schedule_code_size
from .linear import BusRecord, IssueRecord, LinearCode, OperandRead, linearize
from .rename import RenamedKernel, RenamedOp, rename_kernel
from .vliw import (
    KernelCode,
    expand_software_pipeline,
    generate_kernel,
    render_schedule,
)

__all__ = [
    "BusRecord",
    "CodeSize",
    "IssueRecord",
    "KernelCode",
    "LinearCode",
    "OperandRead",
    "RenamedKernel",
    "RenamedOp",
    "ZERO_SIZE",
    "expand_software_pipeline",
    "generate_kernel",
    "linearize",
    "rename_kernel",
    "render_schedule",
    "schedule_code_size",
]
