"""Static code-size accounting (Section 6.4 / Figure 10).

The paper measures code size in *operations*: white bars count every slot
of every static VLIW instruction (useful operations plus NOPs), black bars
count useful operations only.  For a modulo-scheduled loop:

* static VLIW instructions = prologue + kernel + epilogue
  = ``(2*SC - 1) * II``;
* each instruction carries ``issue_width`` operation slots;
* each of the graph's operations appears once in the kernel and ``SC - 1``
  more times across the prologue/epilogue (stage *s* of the pipeline is
  present in ``SC - 1 - s`` prologue instructions groups and ``s`` epilogue
  groups), so useful operations = ``ops * SC``;
* everything else is NOP padding.

Program code size sums the eligible (modulo-scheduled) loops; Figure 10
normalises to the unified machine without unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..arch.isa import slots_per_instruction
from ..core.schedule import ModuloSchedule


@dataclass(frozen=True)
class CodeSize:
    """Operation-slot accounting of one loop or one program."""

    useful_ops: int
    nop_ops: int

    @property
    def total_ops(self) -> int:
        return self.useful_ops + self.nop_ops

    def __add__(self, other: "CodeSize") -> "CodeSize":
        return CodeSize(
            self.useful_ops + other.useful_ops, self.nop_ops + other.nop_ops
        )

    def normalised_to(self, baseline: "CodeSize") -> tuple[float, float]:
        """(total ratio, useful ratio) against *baseline* (Figure 10 bars)."""
        return (
            self.total_ops / baseline.total_ops,
            self.useful_ops / baseline.useful_ops,
        )


ZERO_SIZE = CodeSize(0, 0)


def schedule_code_size(
    schedule: ModuloSchedule, *, with_mve: bool = False
) -> CodeSize:
    """Static code size of one modulo-scheduled loop.

    With ``with_mve=True`` the kernel is charged its modulo-variable-
    expansion replication (values living longer than II need renamed
    kernel copies on machines without rotating register files); the paper
    counts plain kernels — the option quantifies what rotating files save.
    """
    config: MachineConfig = schedule.config
    ii = schedule.ii
    sc = schedule.stage_count
    kernel_copies = 1
    if with_mve:
        from ..core.lifetimes import mve_factor

        kernel_copies = mve_factor(schedule)
    instructions = (2 * sc - 1 + (kernel_copies - 1)) * ii
    slots = instructions * slots_per_instruction(config)
    useful = len(schedule.ops) * (sc + kernel_copies - 1)
    return CodeSize(useful_ops=useful, nop_ops=slots - useful)
