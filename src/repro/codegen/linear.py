"""Linearised issue plan of a modulo schedule, for execution.

:func:`linearize` lowers a :class:`~repro.core.schedule.ModuloSchedule`
into the per-row issue records the cycle-accurate simulator
(:mod:`repro.sim`) executes.  Where :mod:`repro.codegen.vliw` renders the
*format* of the emitted code (Figure 3 fields, NOP slots, code size), this
module keeps the *semantics*: for every kernel row, which operations issue
there, what values they read (producer node and iteration distance), what
they produce, and which bus transfers start.

Dynamic execution follows the standard software-pipeline identity: the
instance of operation *v* (schedule cycle ``c = stage*II + row``) that
belongs to kernel iteration *i* issues in dynamic II-group ``g = i +
stage`` at row ``row`` — so prologue groups are ``g < SC-1``, kernel
executions ``SC-1 <= g < K`` and epilogue groups ``g >= K`` for a run of
*K* kernel iterations.  The simulator iterates groups and predicates each
record on ``0 <= g - stage < K``, which also handles trip counts too short
to fill the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import ModuloSchedule
from ..ir.operation import FuClass


@dataclass(frozen=True)
class OperandRead:
    """One value an operation consumes: its producer, *distance* iterations back."""

    producer: int
    distance: int


@dataclass(frozen=True)
class IssueRecord:
    """One operation's slot in the kernel, with everything execution needs."""

    node: int
    cluster: int
    fu_class: FuClass
    fu_index: int
    row: int
    stage: int
    latency: int
    opcode: str
    writes_register: bool
    is_load: bool
    reads: tuple[OperandRead, ...]


@dataclass(frozen=True)
class BusRecord:
    """One inter-cluster transfer: starts at (row, stage), runs latbus cycles."""

    producer: int
    src_cluster: int
    bus: int
    row: int
    stage: int
    readers: tuple[int, ...]


@dataclass(frozen=True)
class LinearCode:
    """The kernel as row-indexed issue/bus records (see module docstring)."""

    ii: int
    stage_count: int
    #: ``rows[r]`` — operations issuing at kernel row *r*.
    rows: tuple[tuple[IssueRecord, ...], ...]
    #: ``bus_rows[r]`` — transfers starting at kernel row *r*.
    bus_rows: tuple[tuple[BusRecord, ...], ...]

    @property
    def ops_per_kernel_iteration(self) -> int:
        return sum(len(r) for r in self.rows)

    @property
    def comms_per_kernel_iteration(self) -> int:
        return sum(len(r) for r in self.bus_rows)


def linearize(schedule: ModuloSchedule) -> LinearCode:
    """Lower *schedule* into the issue plan the simulator executes."""
    graph = schedule.graph
    ii = schedule.ii
    rows: list[list[IssueRecord]] = [[] for _ in range(ii)]
    bus_rows: list[list[BusRecord]] = [[] for _ in range(ii)]

    for node, placed in schedule.ops.items():
        op = graph.operation(node)
        reads = tuple(
            OperandRead(dep.src, dep.distance)
            for dep in graph.flow_producers(node)
        )
        rows[placed.cycle % ii].append(
            IssueRecord(
                node=node,
                cluster=placed.cluster,
                fu_class=op.fu_class,
                fu_index=placed.fu_index,
                row=placed.cycle % ii,
                stage=placed.cycle // ii,
                latency=op.latency,
                opcode=op.opcode.name,
                writes_register=op.writes_register,
                is_load=op.fu_class is FuClass.MEM and op.writes_register,
                reads=reads,
            )
        )

    for comm in schedule.comms:
        bus_rows[comm.start_cycle % ii].append(
            BusRecord(
                producer=comm.producer,
                src_cluster=comm.src_cluster,
                bus=comm.bus,
                row=comm.start_cycle % ii,
                stage=comm.start_cycle // ii,
                readers=tuple(sorted(comm.readers)),
            )
        )

    return LinearCode(
        ii=ii,
        stage_count=schedule.stage_count,
        rows=tuple(tuple(r) for r in rows),
        bus_rows=tuple(tuple(r) for r in bus_rows),
    )
