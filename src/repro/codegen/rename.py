"""Modulo variable expansion (MVE): register renaming for the kernel.

A modulo-scheduled kernel overlaps ``SC`` iterations, so a value whose
lifetime exceeds ``II`` cycles would be overwritten by the next
iteration's definition before its last consumer reads it.  Rotating
register files solve this in hardware; on a conventional register file
the compiler solves it by *modulo variable expansion* (Lam, 1988): unroll
the kernel ``KUF`` times and rotate each long-lived value through
``n_v = ceil(lifetime_v / II)`` register names, where ``KUF`` is the
least common multiple of all ``n_v``.

:func:`rename_kernel` applies MVE to a verified
:class:`~repro.core.schedule.ModuloSchedule`: it computes per-value
lifetimes from the placed cycles (a consumer at distance ``d`` reads
``d * II`` cycles later than its same-iteration slot), assigns register
names ``r<node>.<k>``, and emits the unrolled, renamed kernel.  In copy
``u`` of the unrolled kernel, node ``v`` defines ``r<v>.<u % n_v>`` and a
reader at iteration distance ``d`` reads ``r<v>.<(u - d) % n_v>``.

Every renaming is self-verified: for each flow edge the span from
definition to read must fit inside ``n_v * II`` cycles (reads at exactly
the overwrite cycle are safe — the register file reads before it
writes), otherwise :class:`~repro.errors.VerificationError` is raised.
This turns the simulator's timing record for any frontend-supplied
program into a real executable kernel, not just a cycle count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.schedule import ModuloSchedule
from ..errors import VerificationError
from .linear import LinearCode, linearize

__all__ = ["RenamedOp", "RenamedKernel", "rename_kernel"]


@dataclass(frozen=True)
class RenamedOp:
    """One operation instance in the unrolled, register-renamed kernel."""

    node: int
    copy: int
    row: int
    stage: int
    cluster: int
    fu: str
    opcode: str
    tag: str
    #: Destination register name, ``None`` for stores.
    dest: str | None
    #: Renamed source registers, one per flow operand.
    sources: tuple[str, ...]

    def render(self) -> str:
        lhs = f"{self.dest} = " if self.dest else ""
        srcs = ", ".join(self.sources)
        tag = f" ; {self.tag}" if self.tag else ""
        return (
            f"[c{self.cluster} {self.fu}] "
            f"{lhs}{self.opcode}{f' {srcs}' if srcs else ''}{tag}"
        )


@dataclass(frozen=True)
class RenamedKernel:
    """The MVE-unrolled kernel: ``kuf`` copies of ``ii`` rows each.

    ``copies[u][r]`` holds the renamed operations of unroll copy ``u``
    issuing at kernel row ``r``; ``register_copies[v]`` is ``n_v``, the
    number of rotating names value ``v`` cycles through.
    """

    loop: str
    ii: int
    stage_count: int
    kuf: int
    register_copies: dict[int, int]
    lifetimes: dict[int, int]
    copies: tuple[tuple[tuple[RenamedOp, ...], ...], ...]

    @property
    def total_registers(self) -> int:
        """Register names consumed by the kernel's rotating values."""
        return sum(self.register_copies.values())

    def describe(self) -> str:
        expanded = [v for v, n in self.register_copies.items() if n > 1]
        return (
            f"renamed kernel of {self.loop!r}: II={self.ii}, SC={self.stage_count}, "
            f"KUF={self.kuf}, {self.total_registers} register(s), "
            f"{len(expanded)} value(s) expanded"
        )

    def render(self) -> str:
        lines = [self.describe()]
        for value in sorted(self.lifetimes):
            n = self.register_copies[value]
            if n > 1:
                lines.append(
                    f"  value {value}: lifetime {self.lifetimes[value]} > "
                    f"II -> {n} rotating name(s)"
                )
        for u, rows in enumerate(self.copies):
            lines.append(f"  copy {u}:")
            for r, ops in enumerate(rows):
                if not ops:
                    continue
                body = " || ".join(op.render() for op in ops)
                lines.append(f"    row {r}: {body}")
        return "\n".join(lines)


def _lifetimes(schedule: ModuloSchedule) -> dict[int, int]:
    """Def-to-last-read span of every register-writing node, in cycles."""
    graph = schedule.graph
    ii = schedule.ii
    spans: dict[int, int] = {}
    for node, placed in schedule.ops.items():
        if not graph.operation(node).writes_register:
            continue
        # The value exists once its latency has elapsed; that is the
        # minimum span even with no readers.
        span = graph.operation(node).latency
        for dep in graph.flow_consumers(node):
            consumer_cycle = schedule.ops[dep.dst].cycle + ii * dep.distance
            span = max(span, consumer_cycle - placed.cycle)
        spans[node] = span
    return spans


def rename_kernel(schedule: ModuloSchedule) -> RenamedKernel:
    """Apply modulo variable expansion to a modulo schedule."""
    code: LinearCode = linearize(schedule)
    graph = schedule.graph
    ii = schedule.ii
    lifetimes = _lifetimes(schedule)
    copies_of = {
        node: max(1, math.ceil(span / ii)) for node, span in lifetimes.items()
    }
    kuf = math.lcm(*copies_of.values()) if copies_of else 1

    # Self-check: every flow edge's def-to-read span must fit in the
    # producer's rotation period (reads at the overwrite cycle are safe).
    for node in lifetimes:
        period = copies_of[node] * ii
        for dep in graph.flow_consumers(node):
            span = (
                schedule.ops[dep.dst].cycle
                + ii * dep.distance
                - schedule.ops[node].cycle
            )
            if span > period:
                raise VerificationError(
                    f"MVE: value {node} read {span} cycles after its "
                    f"definition but rotates every {period} cycles"
                )
        if kuf % copies_of[node]:
            raise VerificationError(
                f"MVE: KUF={kuf} is not a multiple of n_{node}="
                f"{copies_of[node]}"
            )

    def reg(producer: int, copy: int, distance: int = 0) -> str:
        n = copies_of[producer]
        return f"r{producer}.{(copy - distance) % n}"

    unrolled: list[tuple[tuple[RenamedOp, ...], ...]] = []
    for u in range(kuf):
        rows: list[tuple[RenamedOp, ...]] = []
        for r, records in enumerate(code.rows):
            ops = []
            for rec in records:
                sources = tuple(
                    reg(read.producer, u, read.distance) for read in rec.reads
                )
                ops.append(
                    RenamedOp(
                        node=rec.node,
                        copy=u,
                        row=r,
                        stage=rec.stage,
                        cluster=rec.cluster,
                        fu=f"{rec.fu_class.name}{rec.fu_index}",
                        opcode=rec.opcode,
                        tag=graph.operation(rec.node).tag,
                        dest=reg(rec.node, u) if rec.writes_register else None,
                        sources=sources,
                    )
                )
            rows.append(tuple(ops))
        unrolled.append(tuple(rows))

    return RenamedKernel(
        loop=graph.name,
        ii=ii,
        stage_count=code.stage_count,
        kuf=kuf,
        register_copies=copies_of,
        lifetimes=lifetimes,
        copies=tuple(unrolled),
    )
