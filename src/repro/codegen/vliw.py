"""VLIW code generation from a modulo schedule.

Renders the kernel (II instructions), and expands the prologue and
epilogue of the software-pipelined loop, in the instruction format of the
paper's Figure 3.  This is what the code-size study (Section 6.4) counts,
and what the examples print so a schedule can be eyeballed.

Kernel construction: the operation scheduled at absolute cycle *t* appears
in kernel row ``t mod II`` on its (cluster, FU).  Prologue: for ramp-up
stage ``k`` (0-based, ``k < SC-1``), instruction ``k*II + r`` contains the
ops of rows ``r`` of stages ``0..k`` — equivalently, every op whose stage
is ``<= k``.  The epilogue mirrors it, draining stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.cluster import MachineConfig
from ..arch.isa import VliwInstruction, empty_instruction
from ..core.schedule import ModuloSchedule
from ..ir.operation import FuClass


@dataclass
class KernelCode:
    """The software-pipelined loop body plus its ramp up/down sizes."""

    schedule: ModuloSchedule
    kernel: list[VliwInstruction] = field(default_factory=list)

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def stage_count(self) -> int:
        return self.schedule.stage_count

    @property
    def prologue_instructions(self) -> int:
        return (self.stage_count - 1) * self.ii

    @property
    def epilogue_instructions(self) -> int:
        return (self.stage_count - 1) * self.ii

    @property
    def total_instructions(self) -> int:
        """Static VLIW instructions: prologue + kernel + epilogue."""
        return self.prologue_instructions + self.ii + self.epilogue_instructions

    def render(self) -> str:
        lines = [
            f"kernel of {self.schedule.graph.name!r}: II={self.ii}, "
            f"SC={self.stage_count}, prologue/epilogue "
            f"{self.prologue_instructions}/{self.epilogue_instructions} instr"
        ]
        lines.extend(instr.render() for instr in self.kernel)
        return "\n".join(lines)


def _place_in_slot(
    instr: VliwInstruction,
    config: MachineConfig,
    cluster: int,
    fu_class: FuClass,
    fu_index: int,
    label: str,
    *,
    node: int | None = None,
    stage: int | None = None,
) -> None:
    """Fill one FU slot of *instr* (slots are laid out INT, FP, MEM)."""
    offset = 0
    for cls in (FuClass.INT, FuClass.FP, FuClass.MEM):
        if cls is fu_class:
            break
        offset += config.fu_count(cluster, cls)
    slot_idx = offset + fu_index
    slots = instr.clusters[cluster].slots
    old = slots[slot_idx]
    assert old.is_nop, f"slot collision at cluster {cluster} slot {slot_idx}"
    slots[slot_idx] = type(old)(
        old.fu_class, old.fu_index, label, node=node, stage=stage
    )


def expand_software_pipeline(schedule: ModuloSchedule) -> list[VliwInstruction]:
    """The complete static code: prologue + kernel + epilogue, expanded.

    Stage ``s`` of the pipeline (ops with ``cycle // II == s``) is present:

    * in prologue group ``k`` (0-based, ``k < SC-1``) iff ``s <= k``;
    * in the kernel always;
    * in epilogue group ``k`` iff ``s > k`` — the tail of iterations
      started during the last kernel executions.

    Bus fields are expanded with the same membership rule applied to the
    communication's own stage.
    """
    config = schedule.config
    ii = schedule.ii
    sc = schedule.stage_count
    out: list[VliwInstruction] = []
    groups = [("prologue", k) for k in range(sc - 1)]
    groups.append(("kernel", sc - 1))
    groups.extend(("epilogue", k) for k in range(sc - 1))

    cycle_counter = 0
    for phase, k in groups:
        rows = [empty_instruction(config, cycle_counter + r) for r in range(ii)]
        for node, placed in schedule.ops.items():
            stage = placed.cycle // ii
            if phase == "prologue" and stage > k:
                continue
            if phase == "epilogue" and stage <= k:
                continue
            op = schedule.graph.operation(node)
            label = f"{op.opcode.name}.{node}"
            _place_in_slot(
                rows[placed.cycle % ii], config, placed.cluster, op.fu_class,
                placed.fu_index, label, node=node, stage=stage,
            )
        out.extend(rows)
        cycle_counter += ii
    return out


def generate_kernel(schedule: ModuloSchedule) -> KernelCode:
    """Build the II kernel instructions with bus fields filled in."""
    config = schedule.config
    ii = schedule.ii
    rows = [empty_instruction(config, r) for r in range(ii)]
    for node, placed in schedule.ops.items():
        op = schedule.graph.operation(node)
        stage = placed.cycle // ii
        label = f"{op.opcode.name}.{node}" + (f"s{stage}" if stage else "")
        _place_in_slot(
            rows[placed.cycle % ii], config, placed.cluster, op.fu_class,
            placed.fu_index, label, node=node, stage=stage,
        )
    # Bus control fields: an OUT on the producing cluster at the start row,
    # an IN (store into register file) on every reader at the arrival row.
    latbus = config.buses.latency
    for comm in schedule.comms:
        out_row = comm.start_cycle % ii
        out_cluster = rows[out_row].clusters[comm.src_cluster]
        out_cluster.bus = type(out_cluster.bus)(
            bus_index=comm.bus,
            out_source=f"n{comm.producer}",
            in_store=out_cluster.bus.in_store,
        )
        in_row = (comm.start_cycle + latbus) % ii
        for reader in comm.readers:
            in_cluster = rows[in_row].clusters[reader]
            in_cluster.bus = type(in_cluster.bus)(
                bus_index=in_cluster.bus.bus_index,
                out_source=in_cluster.bus.out_source,
                in_store=True,
            )
    return KernelCode(schedule=schedule, kernel=rows)


def render_schedule(schedule: ModuloSchedule) -> str:
    """Human-readable kernel listing (examples, debugging)."""
    return generate_kernel(schedule).render()
