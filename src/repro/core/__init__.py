"""Modulo scheduling core: MII, SMS, BSA, two-phase, selective unrolling."""

from .base import SchedulerBase, default_ii_budget
from .bsa import BsaScheduler, cluster_out_edges, join_profit, out_edges_if_joined
from .comm import AddReader, CommPlan, NewTransfer
from .engine import FailReason, Placement, PlacementEngine
from .exact import ExactScheduler, resolve_backend
from .lifetimes import cluster_pressures, max_pressure, mve_factor, pressure_ok
from .list_schedule import list_schedule
from .mii import MiiReport, mii, mii_report, rec_mii, rec_mii_exact, res_mii
from .mrt import ReservationTable
from .pressure import PressureTracker
from .schedule import Communication, FailureLog, ModuloSchedule, ScheduledOp
from .selective import (
    ScheduledLoopResult,
    SelectiveRule,
    UnrollPolicy,
    schedule_with_policy,
    selective_unroll_decision,
)
from .sms import (
    NodeTiming,
    compute_timings,
    ordering_sets,
    recurrence_sets,
    sms_order,
    topological_order,
)
from .twophase import TwoPhaseScheduler, partition_graph
from .unified import UnifiedScheduler
from .verify import verify_schedule

__all__ = [
    "AddReader",
    "BsaScheduler",
    "CommPlan",
    "Communication",
    "ExactScheduler",
    "FailReason",
    "FailureLog",
    "MiiReport",
    "ModuloSchedule",
    "NewTransfer",
    "NodeTiming",
    "Placement",
    "PlacementEngine",
    "PressureTracker",
    "ReservationTable",
    "ScheduledLoopResult",
    "ScheduledOp",
    "SchedulerBase",
    "SelectiveRule",
    "TwoPhaseScheduler",
    "UnifiedScheduler",
    "UnrollPolicy",
    "cluster_out_edges",
    "cluster_pressures",
    "join_profit",
    "list_schedule",
    "mve_factor",
    "compute_timings",
    "default_ii_budget",
    "max_pressure",
    "mii",
    "mii_report",
    "ordering_sets",
    "out_edges_if_joined",
    "partition_graph",
    "pressure_ok",
    "rec_mii",
    "rec_mii_exact",
    "recurrence_sets",
    "res_mii",
    "resolve_backend",
    "schedule_with_policy",
    "selective_unroll_decision",
    "sms_order",
    "topological_order",
    "verify_schedule",
]
