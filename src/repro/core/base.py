"""Scheduler driver: the II search loop shared by all algorithms.

Every modulo scheduler here follows the classic iterative discipline (Rau;
also the paper's Figure 5 step (5)): try II = MII; if any node cannot be
placed, abandon the attempt, increment II and restart from scratch.  The
:class:`SchedulerBase` owns that loop, the failure bookkeeping that feeds
the paper's ``LimitedByBus`` predicate, and a generous II budget that makes
non-termination a loud error instead of a hang.
"""

from __future__ import annotations

import abc

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from .engine import PlacementEngine
from .mii import mii as compute_mii
from .schedule import ModuloSchedule


def default_ii_budget(graph: DependenceGraph, config: MachineConfig) -> int:
    """A ceiling on II beyond which something is definitely wrong.

    A fully sequential schedule (one operation per cycle, one communication
    per value) always fits within roughly the total latency plus the total
    communication time, so allow that plus slack.
    """
    total_latency = sum(op.latency for op in graph.operations())
    comm_slack = len(graph) * (config.buses.latency + 1) if config.is_clustered else 0
    return max(16, total_latency + comm_slack + len(graph) + 8)


class SchedulerBase(abc.ABC):
    """Common II-search loop; subclasses place nodes for one fixed II."""

    #: Human-readable algorithm name (reports, experiment tables, and the
    #: scheduler registry key in :data:`repro.runner.engine.SCHEDULERS`).
    name: str = "base"

    def __init__(self, config: MachineConfig, *, max_ii: int | None = None):
        """Bind the scheduler to one machine configuration.

        Parameters
        ----------
        config:
            The (clustered or unified) machine to schedule for.
        max_ii:
            Optional hard II ceiling; when ``None`` (the default) the
            budget is ``MII + default_ii_budget(graph, config)``,
            computed per graph.
        """
        self.config = config
        self.max_ii = max_ii

    def schedule(self, graph: DependenceGraph) -> ModuloSchedule:
        """Modulo-schedule *graph* on this scheduler's machine.

        Runs the classic iterative II search: start at MII, ask the
        subclass to place every node (:meth:`_place_all`), and on any
        failure restart from scratch at II + 1, logging why the attempt
        failed (the bookkeeping behind the paper's ``LimitedByBus``).

        Returns
        -------
        ModuloSchedule
            A complete, finalised schedule with its attempt-failure log.

        Raises
        ------
        SchedulingError
            Only if the II budget is exhausted or the graph is
            register-pressure bound with no progress (which indicates a
            bug or an impossible machine, not a hard loop) — callers
            such as the experiment harness fall back to list scheduling.
        """
        graph.validate()
        if len(graph) == 0:
            raise SchedulingError(f"graph {graph.name!r} has no operations")
        start_ii = compute_mii(graph, self.config)
        budget = self.max_ii or (start_ii + default_ii_budget(graph, self.config))
        failures = []
        stuck_count = 0
        last_placed = -1
        for ii in range(start_ii, budget + 1):
            engine = PlacementEngine(graph, self.config, ii, start_ii)
            if self._place_all(engine):
                sched = engine.finalize()
                sched.attempt_failures = failures
                return sched
            failures.append(engine.fail)
            # Register pressure, unlike FU/bus contention, need not relent
            # as II grows (live sets are a property of the graph, not the
            # row count).  When progress stalls with pressure failures
            # present, further II increments are futile — give up early so
            # callers can fall back instead of grinding the whole budget.
            placed = len(engine.schedule.ops)
            if placed <= last_placed and engine.fail.register_pressure > 0:
                stuck_count += 1
                if stuck_count >= 8:
                    raise SchedulingError(
                        f"{self.name}: {graph.name!r} on {self.config.name!r} "
                        f"is register-pressure bound (stuck at {placed}/"
                        f"{len(graph)} ops for {stuck_count} II attempts, "
                        f"II reached {ii})",
                        ii_tried=ii,
                    )
            else:
                stuck_count = 0
            last_placed = max(last_placed, placed)
        raise SchedulingError(
            f"{self.name}: no schedule for {graph.name!r} on {self.config.name!r} "
            f"within II <= {budget}",
            ii_tried=budget,
        )

    @abc.abstractmethod
    def _place_all(self, engine: PlacementEngine) -> bool:
        """Place every node at the engine's II; False aborts the attempt."""
