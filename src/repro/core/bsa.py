"""The paper's Basic Scheduling Algorithm (BSA, Figure 5).

BSA performs cluster assignment and cycle assignment in a *single pass*
(the unified assign-and-schedule strategy of Ozer et al., transplanted to
modulo scheduling).  Nodes are visited in SMS order; for the current node:

1. if it has no scheduled predecessor or successor (a new subgraph is
   starting), the *default cluster* advances circularly — this is what
   spreads the iterations of an unrolled loop across clusters;
2. each cluster is tried (``TryNodeOnCluster``): clusters with no free
   functional-unit slot, no feasible bus slots for the required
   communications, or that would overflow their register file are
   discarded;
3. feasible clusters are ranked by *profit* — the reduction in the number
   of value edges leaving the cluster's current node set if the node joins
   it — and the best-profit candidates are kept;
4. ties are broken in the paper's priority order: the only candidate; a
   candidate holding a scheduled predecessor/successor of the node; the
   default cluster; the candidate minimising register requirements;
5. if no cluster is feasible, II is incremented and everything restarts.

The ordering function is pluggable (``order="sms"`` or ``"topo"``) to
support the ordering ablation study.
"""

from __future__ import annotations

from typing import Callable

from ..arch.cluster import MachineConfig
from ..errors import ConfigError
from ..ir.ddg import DependenceGraph
from .base import SchedulerBase
from .engine import Placement, PlacementEngine
from .sms import sms_order, topological_order

OrderFn = Callable[[DependenceGraph], list[int]]

_ORDERINGS: dict[str, OrderFn] = {
    "sms": sms_order,
    "topo": topological_order,
}


def cluster_out_edges(
    graph: DependenceGraph, assignment: dict[int, int], cluster: int
) -> int:
    """``OutEdgesOnCluster``: value edges from *cluster*'s nodes to any node
    outside it (scheduled elsewhere or not yet scheduled)."""
    count = 0
    for node, c in assignment.items():
        if c != cluster:
            continue
        for dep in graph.flow_consumers(node):
            if dep.dst == node:
                continue
            if assignment.get(dep.dst) != cluster:
                count += 1
    return count


def out_edges_if_joined(
    graph: DependenceGraph, assignment: dict[int, int], cluster: int, node: int
) -> int:
    """``tmpoutedges``: out-edge count of *cluster* with *node* included."""
    trial = dict(assignment)
    trial[node] = cluster
    return cluster_out_edges(graph, trial, cluster)


def join_profit(
    graph: DependenceGraph, assignment: dict[int, int], cluster: int, node: int
) -> int:
    """Out-edge reduction if *node* joins *cluster*, in O(degree).

    Equal by construction to ``cluster_out_edges(...) -
    out_edges_if_joined(...)`` (the property test cross-checks): joining
    converts the cluster members' edges *into node* from out-edges to
    internal ones, and adds node's own edges to non-members as new
    out-edges.  Avoids the full O(|assignment| * degree) recount the
    paper's formulation implies, which dominated BSA's inner loop.
    """
    in_from_cluster = 0
    for dep in graph.flow_producers(node):
        if dep.src != node and assignment.get(dep.src) == cluster:
            in_from_cluster += 1
    out_to_others = 0
    for dep in graph.flow_consumers(node):
        if dep.dst != node and assignment.get(dep.dst) != cluster:
            out_to_others += 1
    return in_from_cluster - out_to_others


class BsaScheduler(SchedulerBase):
    """Unified assign-and-schedule modulo scheduler (the paper's proposal)."""

    name = "bsa"

    def __init__(
        self,
        config: MachineConfig,
        *,
        max_ii: int | None = None,
        order: str = "sms",
        default_cluster_policy: str = "circular",
    ):
        super().__init__(config, max_ii=max_ii)
        if config.n_clusters > 1 and config.buses.count == 0:
            raise ConfigError("clustered machine without buses cannot communicate")
        try:
            self._order_fn = _ORDERINGS[order]
        except KeyError:
            raise ConfigError(
                f"unknown ordering {order!r}; choose from {sorted(_ORDERINGS)}"
            ) from None
        if default_cluster_policy not in ("circular", "least-loaded"):
            raise ConfigError(
                f"unknown default-cluster policy {default_cluster_policy!r}; "
                "choose 'circular' or 'least-loaded'"
            )
        #: Figure 5 step (2) rotates the default cluster circularly; the
        #: paper notes "other possibilities ... such as choosing the least
        #: loaded one" — both are offered (ablation EXP-A4).
        self._default_policy = default_cluster_policy

    # ------------------------------------------------------------------
    def _place_all(self, engine: PlacementEngine) -> bool:
        graph = engine.graph
        n_clusters = self.config.n_clusters
        assignment: dict[int, int] = {}
        default_cluster = n_clusters - 1  # first advance lands on cluster 0

        for node in self._order_fn(graph):
            has_scheduled_neighbor = any(
                engine.schedule.is_scheduled(other)
                for other in graph.neighbors(node)
            )
            if not has_scheduled_neighbor:
                if self._default_policy == "circular":
                    default_cluster = (default_cluster + 1) % n_clusters
                else:  # least-loaded
                    loads = [0] * n_clusters
                    for placed in engine.schedule.ops.values():
                        loads[placed.cluster] += 1
                    default_cluster = min(range(n_clusters), key=lambda c: (loads[c], c))

            # TryNodeOnCluster for every cluster.
            feasible: dict[int, Placement] = {}
            profit: dict[int, int] = {}
            for cluster in range(n_clusters):
                placement = engine.find_placement(node, cluster)
                if not isinstance(placement, Placement):
                    continue
                feasible[cluster] = placement
                profit[cluster] = join_profit(graph, assignment, cluster, node)

            if not feasible:
                return False  # II++ and reinitialise (paper step (5))

            best = max(profit.values())
            candidates = [c for c in sorted(feasible) if profit[c] == best]
            chosen = self._choose_cluster(
                engine, graph, node, candidates, default_cluster, feasible
            )
            engine.commit(feasible[chosen])
            assignment[node] = chosen
        return True

    # ------------------------------------------------------------------
    def _choose_cluster(
        self,
        engine: PlacementEngine,
        graph: DependenceGraph,
        node: int,
        candidates: list[int],
        default_cluster: int,
        feasible: dict[int, Placement],
    ) -> int:
        if len(candidates) == 1:  # paper step (6)
            return candidates[0]

        # Step (7): a candidate already holding a scheduled pred/succ.
        neighbor_clusters: dict[int, int] = {}
        for other in graph.neighbors(node):
            if engine.schedule.is_scheduled(other):
                c = engine.schedule.cluster_of(other)
                neighbor_clusters[c] = neighbor_clusters.get(c, 0) + 1
        with_neighbors = [c for c in candidates if c in neighbor_clusters]
        if with_neighbors:
            return max(
                with_neighbors, key=lambda c: (neighbor_clusters[c], c == default_cluster, -c)
            )

        # Step (8): the default cluster.
        if default_cluster in candidates:
            return default_cluster

        # Step (9): minimise register requirements.
        return min(
            candidates,
            key=lambda c: (engine.placement_pressure(feasible[c]), c),
        )
