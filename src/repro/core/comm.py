"""Communication plans: the bus actions a tentative placement would take.

When a node is placed on a cluster, every already-scheduled flow
predecessor in a *different* cluster must deliver its value over a bus, and
every already-scheduled flow successor in a different cluster must receive
this node's value.  A :class:`CommPlan` captures the required bus actions
so they can be evaluated (register pressure, bus occupancy) before being
committed atomically:

* :class:`NewTransfer` — claim a bus for ``latbus`` cycles from
  ``start_cycle`` to carry ``producer``'s value to ``readers``;
* :class:`AddReader` — an existing transfer already carries the value early
  enough; the new cluster simply snoops it from the bus (Section 3: the
  write and *the clusters that read* are encoded in the VLIW word).
"""

from __future__ import annotations

from dataclasses import dataclass

from .schedule import Communication


@dataclass(frozen=True)
class NewTransfer:
    """A bus transfer to be created."""

    producer: int
    src_cluster: int
    bus: int
    start_cycle: int
    reader: int

    def as_communication(self) -> Communication:
        return Communication(
            producer=self.producer,
            src_cluster=self.src_cluster,
            bus=self.bus,
            start_cycle=self.start_cycle,
            readers=frozenset({self.reader}),
        )


@dataclass(frozen=True)
class AddReader:
    """A reading cluster added to an existing transfer."""

    existing: Communication
    reader: int

    def as_phantom(self) -> Communication:
        """A pressure-model stand-in for the reader addition only."""
        return Communication(
            producer=self.existing.producer,
            src_cluster=self.existing.src_cluster,
            bus=self.existing.bus,
            start_cycle=self.existing.start_cycle,
            readers=frozenset({self.reader}),
        )


@dataclass
class CommPlan:
    """All bus actions of one tentative placement."""

    new_transfers: list[NewTransfer]
    added_readers: list[AddReader]

    @property
    def is_empty(self) -> bool:
        return not self.new_transfers and not self.added_readers

    def pressure_comms(self) -> list[Communication]:
        """Communications to overlay on the schedule for pressure checks."""
        out = [t.as_communication() for t in self.new_transfers]
        out.extend(a.as_phantom() for a in self.added_readers)
        return out


def empty_plan() -> CommPlan:
    return CommPlan(new_transfers=[], added_readers=[])
