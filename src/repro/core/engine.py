"""The placement engine shared by every modulo scheduler in the package.

For one (graph, machine, II) triple a :class:`PlacementEngine` keeps the
partial :class:`~repro.core.schedule.ModuloSchedule` plus the reservation
tables, and answers the central question of cluster-aware modulo
scheduling: *can node n be placed on cluster c, at which cycle, and with
which bus transfers?* (:meth:`find_placement`).  Committing a placement
atomically claims the functional unit and all planned bus slots.

Timing windows follow Swing Modulo Scheduling: a node with scheduled
predecessors only is scanned forward from its earliest feasible cycle; one
with scheduled successors only is scanned backward from its latest; one
with both is scanned inside the closed interval; an unconstrained node
starts at its resource-free ASAP.  Scans cover at most II consecutive
cycles — placements repeat modulo II, so a longer scan cannot succeed.

Cycles may be negative during construction (backward scans); completed
schedules are normalised by a multiple of II so all cycles are >= 0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from time import perf_counter

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from ..obs.trace import PHASES
from .comm import AddReader, CommPlan, NewTransfer, empty_plan
from .mrt import ReservationTable
from .pressure import PressureTracker
from .schedule import Communication, FailureLog, ModuloSchedule, ScheduledOp
from .sms import compute_timings


class FailReason(enum.Enum):
    """Why a node could not be placed."""

    NO_FU = "no free functional unit"
    NO_BUS = "no bus slot for a required communication"
    REG_PRESSURE = "register requirements exceed the local file"
    WINDOW = "dependence window empty"

    def record(self, log: FailureLog) -> None:
        if self is FailReason.NO_FU:
            log.no_fu += 1
        elif self is FailReason.NO_BUS:
            log.no_bus += 1
        elif self is FailReason.REG_PRESSURE:
            log.register_pressure += 1
        else:
            log.dependence_window += 1


@dataclass
class Placement:
    """A feasible (node, cluster, cycle) choice plus its bus actions."""

    node: int
    cluster: int
    cycle: int
    comm_plan: CommPlan


class PlacementEngine:
    """Partial-schedule state and placement search for one II attempt."""

    def __init__(
        self,
        graph: DependenceGraph,
        config: MachineConfig,
        ii: int,
        mii: int,
    ):
        self.graph = graph
        self.config = config
        self.ii = ii
        self.schedule = ModuloSchedule(graph, config, ii, mii=mii)
        self.mrt = ReservationTable(config, ii)
        self.fail = FailureLog()
        self._timings = compute_timings(graph, ii)
        self._bus_latency = config.buses.latency
        self._pressure = PressureTracker(self.schedule)
        #: node -> (scheduled preds, scheduled succs), the dependence
        #: window inputs; entries are dropped for a committed node's
        #: neighbourhood (a commit is the only event that changes them).
        self._nbr_cache: dict[int, tuple[list, list]] = {}

    # ------------------------------------------------------------------
    # Dependence windows
    # ------------------------------------------------------------------
    def _scheduled_neighbors(self, node: int) -> tuple[list, list]:
        """Cached (scheduled predecessor deps, scheduled successor deps).

        The window and communication plans of a node only depend on its
        *scheduled* neighbours; the set changes exactly when a neighbour
        commits, which is when :meth:`commit` invalidates the entry.  The
        cache turns the per-cluster window/plan scans (one per cluster
        tried) into a single dependence walk per placement round.
        """
        entry = self._nbr_cache.get(node)
        if entry is None:
            sched = self.schedule
            preds = [
                d
                for d in self.graph.predecessors(node)
                if d.src != node and sched.is_scheduled(d.src)
            ]
            succs = [
                d
                for d in self.graph.successors(node)
                if d.dst != node and sched.is_scheduled(d.dst)
            ]
            entry = (preds, succs)
            self._nbr_cache[node] = entry
        return entry

    def window(self, node: int, cluster: int) -> tuple[int | None, int | None]:
        """(early, late) bounds from scheduled neighbours; None = unbounded.

        Cross-cluster flow edges account for the bus latency; the *early*
        bound is optimistic about bus availability (the scan verifies the
        actual slots).
        """
        sched = self.schedule
        early: int | None = None
        late: int | None = None
        preds, succs = self._scheduled_neighbors(node)
        for dep in preds:
            placed = sched.ops[dep.src]
            bound = placed.cycle + dep.latency - self.ii * dep.distance
            if dep.moves_value and placed.cluster != cluster:
                ready = placed.cycle + self.graph.operation(dep.src).latency
                arrival = ready + self._bus_latency  # a fresh transfer
                for c in sched.comms_for(dep.src):
                    a = c.start_cycle + self._bus_latency
                    if a < arrival:
                        arrival = a
                bound = max(bound, arrival - self.ii * dep.distance)
            early = bound if early is None else max(early, bound)
        for dep in succs:
            placed = sched.ops[dep.dst]
            bound = placed.cycle + self.ii * dep.distance - dep.latency
            if dep.moves_value and placed.cluster != cluster:
                bound = min(
                    bound,
                    placed.cycle
                    + self.ii * dep.distance
                    - self._bus_latency
                    - self.graph.operation(node).latency,
                )
            late = bound if late is None else min(late, bound)
        return early, late

    def _candidate_cycles(self, node: int, cluster: int) -> list[int]:
        """Cycles to try, nearest-to-the-schedule first.

        Loop-carried edges make the raw dependence bounds loose by
        multiples of II (a consumer may sit II*d cycles before its
        producer and still read the value on time).  Scanning from the raw
        bound would strand nodes far from the rest of the schedule and
        blow up lifetimes, so scans are clamped into the node's resource-
        free ASAP/ALAP band; since placements repeat modulo II, an II-long
        scan still covers every reservation-table row.
        """
        early, late = self.window(node, cluster)
        timing = self._timings[node]
        if early is not None and late is not None:
            if late < early:
                return []
            start = max(early, min(timing.asap, late))
            stop = min(late, start + self.ii - 1)
            candidates = list(range(start, stop + 1))
            # Keep the skipped [early, start) range as a fallback so the
            # clamp never converts a feasible window into a failure.
            if start > early and (stop - start + 1) < self.ii:
                tail = list(range(max(early, start - self.ii), start))
                candidates.extend(reversed(tail))
            return candidates
        if early is not None:
            start = max(early, timing.asap)
            return list(range(start, start + self.ii))
        if late is not None:
            start = min(late, timing.alap)
            return list(range(start, start - self.ii, -1))
        return list(range(timing.asap, timing.asap + self.ii))

    # ------------------------------------------------------------------
    # Communication planning
    # ------------------------------------------------------------------
    def _bus_free_with(
        self, start_cycle: int, pending: list[NewTransfer]
    ) -> int | None:
        """A free bus for a transfer at *start_cycle*, also avoiding *pending*."""
        if self.config.buses.count == 0 or self._bus_latency > self.ii:
            return None
        mrt = self.mrt
        pending_mask = 0
        if pending:
            rows = mrt.bus_rows_mask(start_cycle)
            for t in pending:
                if rows & mrt.bus_rows_mask(t.start_cycle):
                    pending_mask |= 1 << t.bus
        return mrt.bus_free(start_cycle, pending_mask)

    def _plan_transfer(
        self,
        producer: int,
        src_cluster: int,
        reader: int,
        ready: int,
        deadline: int,
        plan: CommPlan,
    ) -> bool:
        """Ensure *producer*'s value reaches *reader* by *deadline*.

        ``ready`` is the first cycle the value can be driven onto a bus;
        the arrival (start + latbus) must be <= deadline.  Prefers reusing
        an existing or already-planned transfer; otherwise claims a new bus
        slot, scanning at most II start cycles.  Returns False when no bus
        slot exists.
        """
        latbus = self._bus_latency
        # Reuse a committed transfer.
        for comm in self.schedule.comms_for(producer):
            if comm.arrival(latbus) <= deadline and comm.start_cycle >= ready:
                if reader in comm.readers or any(
                    a.existing is comm and a.reader == reader
                    for a in plan.added_readers
                ):
                    return True
                plan.added_readers.append(AddReader(existing=comm, reader=reader))
                return True
        # Reuse a transfer planned earlier in this same placement.
        for idx, t in enumerate(plan.new_transfers):
            if (
                t.producer == producer
                and t.start_cycle >= ready
                and t.start_cycle + latbus <= deadline
            ):
                if t.reader != reader:
                    plan.added_readers.append(
                        AddReader(existing=t.as_communication(), reader=reader)
                    )
                return True
        # A fresh transfer.
        last_start = deadline - latbus
        if last_start < ready:
            return False
        stop = min(last_start, ready + self.ii - 1)
        for start in range(ready, stop + 1):
            bus = self._bus_free_with(start, plan.new_transfers)
            if bus is not None:
                plan.new_transfers.append(
                    NewTransfer(
                        producer=producer,
                        src_cluster=src_cluster,
                        bus=bus,
                        start_cycle=start,
                        reader=reader,
                    )
                )
                return True
        return False

    def _plan_comms(self, node: int, cluster: int, cycle: int) -> CommPlan | None:
        """All bus actions needed to place *node* at (*cluster*, *cycle*)."""
        sched = self.schedule
        plan = empty_plan()
        preds, succs = self._scheduled_neighbors(node)
        for dep in preds:
            if not dep.moves_value:
                continue
            placed = sched.ops[dep.src]
            if placed.cluster == cluster:
                continue
            ready = placed.cycle + self.graph.operation(dep.src).latency
            deadline = cycle + self.ii * dep.distance
            if not self._plan_transfer(
                dep.src, placed.cluster, cluster, ready, deadline, plan
            ):
                return None
        for dep in succs:
            if not dep.moves_value:
                continue
            placed = sched.ops[dep.dst]
            if placed.cluster == cluster:
                continue
            ready = cycle + self.graph.operation(node).latency
            deadline = placed.cycle + self.ii * dep.distance
            if not self._plan_transfer(
                node, cluster, placed.cluster, ready, deadline, plan
            ):
                return None
        return plan

    # ------------------------------------------------------------------
    # Placement search
    # ------------------------------------------------------------------
    def find_placement(self, node: int, cluster: int) -> Placement | FailReason:
        """First feasible cycle for *node* on *cluster*, with its bus plan.

        On failure returns the dominant :class:`FailReason` (also recorded
        into the attempt's :class:`FailureLog`).
        """
        if PHASES.enabled:
            t0 = perf_counter()
            try:
                return self._find_placement(node, cluster)
            finally:
                PHASES.add("schedule.probe", perf_counter() - t0)
        return self._find_placement(node, cluster)

    def _find_placement(self, node: int, cluster: int) -> Placement | FailReason:
        op = self.graph.operation(node)
        # Self-dependences only constrain II (lat <= II*dist); RecMII
        # guarantees them, but custom latencies may not — check explicitly.
        for dep in self.graph.predecessors(node):
            if dep.src == node and dep.latency > self.ii * dep.distance:
                self.fail.dependence_window += 1
                return FailReason.WINDOW

        candidates = self._candidate_cycles(node, cluster)
        if not candidates:
            self.fail.dependence_window += 1
            return FailReason.WINDOW

        worst = FailReason.WINDOW
        grid = self.mrt.fu_grid(cluster, op.fu_class)
        masks, full, ii = grid.masks, grid.full, self.ii
        for cycle in candidates:
            if masks[cycle % ii] == full:  # no free functional unit
                self.fail.no_fu += 1
                worst = _worse(worst, FailReason.NO_FU)
                continue
            plan = self._plan_comms(node, cluster, cycle)
            if plan is None:
                self.fail.no_bus += 1
                worst = _worse(worst, FailReason.NO_BUS)
                continue
            if not self._pressure_ok(node, cluster, cycle, plan):
                self.fail.register_pressure += 1
                worst = _worse(worst, FailReason.REG_PRESSURE)
                continue
            return Placement(node=node, cluster=cluster, cycle=cycle, comm_plan=plan)
        return worst

    def _pressure_ok(
        self, node: int, cluster: int, cycle: int, plan: CommPlan
    ) -> bool:
        return self._pressure.placement_fits(node, cluster, cycle, plan)

    def placement_pressure(self, placement: Placement) -> int:
        """MaxLive of the placement's cluster if it were committed."""
        return self._pressure.placement_pressure(
            placement.node, placement.cluster, placement.cycle, placement.comm_plan
        )

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, placement: Placement) -> None:
        """Claim the FU and all planned bus slots; record the placement."""
        if PHASES.enabled:
            t0 = perf_counter()
            try:
                return self._commit(placement)
            finally:
                PHASES.add("schedule.commit", perf_counter() - t0)
        return self._commit(placement)

    def _commit(self, placement: Placement) -> None:
        op = self.graph.operation(placement.node)
        fu = self.mrt.occupy_fu(
            placement.cluster, op.fu_class, placement.cycle, placement.node
        )
        self.schedule.place(
            ScheduledOp(placement.node, placement.cycle, placement.cluster, fu)
        )
        for t in placement.comm_plan.new_transfers:
            self.mrt.occupy_bus(t.start_cycle, t.bus, (t.producer, t.start_cycle))
            self.schedule.add_comm(t.as_communication())
        for a in placement.comm_plan.added_readers:
            target = self._find_comm(a.existing)
            self.schedule.replace_comm(target, target.with_reader(a.reader))
        self._pressure.commit(
            placement.node, placement.cluster, placement.comm_plan
        )
        # The committed node is a newly *scheduled* neighbour of its
        # adjacency — exactly the entries whose cached window inputs
        # changed.  (Comms do not invalidate: windows read them live.)
        cache = self._nbr_cache
        cache.pop(placement.node, None)
        for other in self.graph.neighbors(placement.node):
            cache.pop(other, None)

    def _find_comm(self, like: Communication) -> Communication:
        for comm in self.schedule.comms_for(like.producer):
            if comm.bus == like.bus and comm.start_cycle == like.start_cycle:
                return comm
        raise SchedulingError(f"planned reuse of unknown communication {like}")

    # ------------------------------------------------------------------
    def finalize(self) -> ModuloSchedule:
        """Normalise cycles to be non-negative and fill statistics."""
        sched = self.schedule
        if not sched.is_complete:
            raise SchedulingError(
                f"finalize on incomplete schedule ({len(sched.ops)}/{len(self.graph)})"
            )
        min_cycle = min(op.cycle for op in sched.ops.values())
        for comm in sched.comms:
            min_cycle = min(min_cycle, comm.start_cycle)
        if min_cycle < 0:
            shift = ((-min_cycle) + self.ii - 1) // self.ii * self.ii
            sched.ops = {
                n: ScheduledOp(o.node, o.cycle + shift, o.cluster, o.fu_index)
                for n, o in sched.ops.items()
            }
            sched.comms = [
                Communication(
                    c.producer, c.src_cluster, c.bus, c.start_cycle + shift, c.readers
                )
                for c in sched.comms
            ]
            sched._rebuild_comm_index()
        sched.bus_utilisation = self.mrt.bus_utilisation()
        return sched


def _worse(current: FailReason, new: FailReason) -> FailReason:
    """Keep the more informative of two failure reasons."""
    priority = {
        FailReason.WINDOW: 0,
        FailReason.NO_FU: 1,
        FailReason.REG_PRESSURE: 2,
        FailReason.NO_BUS: 3,
    }
    return new if priority[new] >= priority[current] else current
