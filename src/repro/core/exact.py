"""Exact modulo scheduling: an optimality oracle for the heuristics.

The heuristic schedulers (:mod:`repro.core.bsa`, :mod:`repro.core.twophase`,
:mod:`repro.core.unified`) are evaluated throughout the paper without ever
knowing how far they sit from optimal.  This module provides the missing
reference point: a complete branch-and-bound search over the same model —
dependences with ``s(v) + II*d >= s(u) + lat``, modulo reservation tables
for typed functional units, shared buses occupying ``latbus`` consecutive
rows, per-cluster register files — that proves per-II feasibility.  The II
search starts at MII and stops at the first feasible II, which is therefore
optimal; a second pass then binary-searches the register budget at that II
to minimise MaxLive.

Search-space conventions (the standard modulo-scheduling window argument,
Eichenberger & Davidson's optimal formulation): the first node is anchored
at cycle 0 (whole-schedule translation symmetry), later unconstrained nodes
range over one full II of rows, and one-sided dependence windows are II
cycles wide — the same canonical windows every heuristic in this package
scans, so the oracle's search space is a superset of theirs and
``exact.II <= heuristic.II`` holds by construction.  Communication starts
are likewise enumerated over the II-wide canonical window after the value
is produced; a single bus transfer may broadcast to several reader
clusters, exactly as the placement engine's ``AddReader`` reuse does.

Two backends share the interface, selected when the scheduler is
instantiated (i.e. at registry time):

* ``bnb`` — the pure-python depth-first branch and bound (always
  available; the default);
* ``z3`` — an SMT formulation solved by ``z3-solver`` when it is
  importable (install the ``exact`` extra); register pressure is checked
  on the python side with blocking clauses, falling back to ``bnb`` if
  the clause budget runs out.

The ``REPRO_VLIW_EXACT`` environment variable (``bnb`` / ``z3`` / ``auto``)
overrides the default resolution, which CI uses to run the differential
suite against both backends.

Exhaustive search is exponential, so the backend guards itself: graphs
above ``max_nodes`` operations and searches above ``time_budget_s``
wall-clock seconds raise :class:`~repro.errors.ExactTimeout` — fail fast
with a clear message instead of hanging a runner worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

from ..arch.cluster import MachineConfig
from ..errors import ConfigError, ExactTimeout, SchedulingError
from ..ir.ddg import DependenceGraph
from ..ir.operation import FuClass
from .base import SchedulerBase, default_ii_budget
from .lifetimes import cluster_pressures, max_pressure
from .mii import mii as compute_mii
from .mrt import ReservationTable
from .schedule import Communication, FailureLog, ModuloSchedule, ScheduledOp
from .sms import sms_order
from .verify import verify_schedule

try:  # pragma: no cover - exercised only on machines with z3 installed
    import z3  # type: ignore

    HAVE_Z3 = True
except ImportError:  # pragma: no cover - the common case in this image
    z3 = None
    HAVE_Z3 = False

#: Environment variable overriding backend resolution (``bnb``/``z3``/``auto``).
EXACT_BACKEND_ENV = "REPRO_VLIW_EXACT"
#: Node-count guard: catalogue kernels stay below this, random soups above
#: it would take the search exponential territory.
DEFAULT_MAX_NODES = 24
#: Wall-clock guard per :meth:`ExactScheduler.schedule` call.
DEFAULT_TIME_BUDGET_S = 10.0
#: Blocking-clause budget of the z3 pressure loop before falling back.
_Z3_PRESSURE_MODELS = 64

_NEG = -(1 << 30)
_POS = 1 << 30


def resolve_backend(requested: str = "auto") -> str:
    """Resolve ``bnb``/``z3``/``auto`` to a concrete backend name.

    ``auto`` consults :data:`EXACT_BACKEND_ENV`, then picks ``z3`` when the
    solver is importable and ``bnb`` otherwise.  Requesting ``z3`` without
    the package installed is a :class:`~repro.errors.ConfigError`.
    """
    choice = requested.strip().lower() if requested else "auto"
    if choice == "auto":
        choice = os.environ.get(EXACT_BACKEND_ENV, "auto").strip().lower() or "auto"
    if choice == "auto":
        return "z3" if HAVE_Z3 else "bnb"
    if choice not in ("bnb", "z3"):
        raise ConfigError(
            f"exact scheduler: unknown backend {choice!r} "
            "(use 'bnb', 'z3' or 'auto')"
        )
    if choice == "z3" and not HAVE_Z3:
        raise ConfigError(
            "exact scheduler: z3 backend requested but z3-solver is not "
            "importable (pip install repro-vliw[exact], or use backend='bnb')"
        )
    return choice


@dataclass(frozen=True)
class _Solution:
    """One feasible assignment, machine-independent of MRT bookkeeping."""

    ii: int
    ops: tuple[tuple[int, int, int], ...]  # (node, cycle, cluster)
    comms: tuple[Communication, ...]


@dataclass
class _Pending:
    """A new bus transfer chosen while planning one placement."""

    producer: int
    src_cluster: int
    bus: int
    start: int
    readers: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class _Requirement:
    """One cross-cluster value delivery a candidate placement needs."""

    producer: int
    src_cluster: int
    reader: int
    ready: int  # earliest transfer start (value produced)
    consume: int  # latest useful arrival (reader's consumption cycle)


class ExactScheduler(SchedulerBase):
    """Optimal modulo scheduler (branch and bound, optional z3 backend).

    Finds the minimum feasible II for the graph on this machine, then
    minimises MaxLive at that II (binary search over the register budget,
    best-effort within the remaining time budget).  The produced
    :class:`~repro.core.schedule.ModuloSchedule` is interchangeable with a
    heuristic scheduler's output — verified, simulatable, cacheable.
    """

    name = "exact"

    def __init__(
        self,
        config: MachineConfig,
        *,
        max_ii: int | None = None,
        max_nodes: int = DEFAULT_MAX_NODES,
        time_budget_s: float = DEFAULT_TIME_BUDGET_S,
        backend: str = "auto",
        minimize_pressure: bool = True,
    ):
        super().__init__(config, max_ii=max_ii)
        self.max_nodes = max_nodes
        self.time_budget_s = time_budget_s
        self.backend = resolve_backend(backend)
        self.minimize_pressure = minimize_pressure

    # ------------------------------------------------------------------
    def _place_all(self, engine) -> bool:  # pragma: no cover - interface stub
        raise NotImplementedError("ExactScheduler overrides schedule() directly")

    def schedule(self, graph: DependenceGraph) -> ModuloSchedule:
        graph.validate()
        if len(graph) == 0:
            raise SchedulingError(f"graph {graph.name!r} has no operations")
        if len(graph) > self.max_nodes:
            raise ExactTimeout(
                f"exact: {graph.name!r} has {len(graph)} operations, above the "
                f"exact-search limit of {self.max_nodes}; raise max_nodes or "
                "use a heuristic scheduler for graphs this size"
            )
        start_ii = compute_mii(graph, self.config)
        budget = self.max_ii or (start_ii + default_ii_budget(graph, self.config))
        deadline = time.monotonic() + self.time_budget_s
        failures: list[FailureLog] = []
        solution: _Solution | None = None
        for ii in range(start_ii, budget + 1):
            solution = self._solve(graph, ii, self.config.regs_per_cluster, deadline)
            if solution is not None:
                break
            failures.append(FailureLog())
        if solution is None:
            raise SchedulingError(
                f"exact: no schedule for {graph.name!r} on {self.config.name!r} "
                f"within II <= {budget}",
                ii_tried=budget,
            )
        if self.minimize_pressure:
            solution = self._refine_pressure(graph, solution, deadline)
        sched = self._materialize(graph, solution, start_ii)
        sched.attempt_failures = failures
        verify_schedule(sched)
        return sched

    # ------------------------------------------------------------------
    def _solve(
        self,
        graph: DependenceGraph,
        ii: int,
        reg_limit: int,
        deadline: float,
    ) -> _Solution | None:
        """A feasible assignment at *ii* under *reg_limit*, or ``None``."""
        if self.backend == "z3":
            return self._solve_z3(graph, ii, reg_limit, deadline)
        return _BnbSearch(
            graph, self.config, ii, reg_limit, deadline, self.time_budget_s
        ).run()

    def _refine_pressure(
        self, graph: DependenceGraph, best: _Solution, deadline: float
    ) -> _Solution:
        """Minimise MaxLive at the optimal II (best-effort within budget)."""
        best_p = max_pressure(self._materialize(graph, best, best.ii))
        lo, hi = 1, best_p - 1
        try:
            while lo <= hi:
                mid = (lo + hi) // 2
                sol = self._solve(graph, best.ii, mid, deadline)
                if sol is None:
                    lo = mid + 1
                else:
                    best = sol
                    best_p = max_pressure(self._materialize(graph, sol, sol.ii))
                    hi = best_p - 1
        except ExactTimeout:
            pass  # a feasible optimal-II schedule is already in hand
        return best

    def _materialize(
        self, graph: DependenceGraph, sol: _Solution, start_ii: int
    ) -> ModuloSchedule:
        """Turn a raw assignment into a normalised, finalised schedule."""
        ii = sol.ii
        min_cycle = min(cycle for _, cycle, _ in sol.ops)
        shift = -(min_cycle // ii) * ii  # multiple of II; min lands in [0, II)
        sched = ModuloSchedule(graph, self.config, ii, mii=start_ii)
        mrt = ReservationTable(self.config, ii)
        for node, cycle, cluster in sorted(sol.ops):
            op = graph.operation(node)
            unit = mrt.occupy_fu(cluster, op.fu_class, cycle + shift, node)
            sched.place(ScheduledOp(node, cycle + shift, cluster, unit))
        for comm in sorted(
            sol.comms, key=lambda c: (c.start_cycle, c.bus, c.producer)
        ):
            moved = replace(comm, start_cycle=comm.start_cycle + shift)
            mrt.occupy_bus(moved.start_cycle, moved.bus, (moved.producer, moved.bus))
            sched.add_comm(moved)
        sched.bus_utilisation = mrt.bus_utilisation()
        return sched

    # ------------------------------------------------------------------
    # z3 backend
    # ------------------------------------------------------------------
    def _solve_z3(
        self,
        graph: DependenceGraph,
        ii: int,
        reg_limit: int,
        deadline: float,
    ) -> _Solution | None:  # pragma: no cover - needs z3 (CI extra)
        """SMT formulation of one fixed-II feasibility problem.

        Cycles and clusters are integer variables over a bounded horizon
        (the window argument bounds any compacted schedule well inside
        it); functional units are cardinality constraints per MRT row;
        one optional transfer variable exists per (producer, reader
        cluster), and same-producer transfers agreeing on start and bus
        merge into one broadcast.  Register pressure is not encoded:
        models are checked with :func:`cluster_pressures` and blocked
        until one fits, falling back to the branch and bound when the
        clause budget runs out (UNSAT of the relaxation remains a sound
        infeasibility proof either way).
        """
        cfg = self.config
        nodes = graph.node_ids
        n = len(nodes)
        latbus = cfg.buses.latency
        n_buses = cfg.buses.count if cfg.is_clustered else 0
        horizon = ii * (n + 1) + sum(op.latency for op in graph.operations()) + latbus

        solver = z3.Solver()
        cyc = {v: z3.Int(f"c{v}") for v in nodes}
        clu = {v: z3.Int(f"k{v}") for v in nodes}
        for v in nodes:
            solver.add(cyc[v] >= 0, cyc[v] < horizon)
            solver.add(clu[v] >= 0, clu[v] < cfg.n_clusters)
        solver.add(cyc[nodes[0]] < ii)  # translation symmetry
        for dep in graph.edges:
            solver.add(
                cyc[dep.dst] + ii * dep.distance >= cyc[dep.src] + dep.latency
            )
        # Functional units: per (cluster, class, row) cardinality.
        by_class: dict[FuClass, list[int]] = {}
        for v in nodes:
            by_class.setdefault(graph.operation(v).fu_class, []).append(v)
        for q in cfg.clusters():
            for fu_class, members in by_class.items():
                cap = cfg.fu_count(q, fu_class)
                for r in range(ii):
                    here = [
                        z3.And(clu[v] == q, cyc[v] % ii == r) for v in members
                    ]
                    solver.add(z3.AtMost(*here, cap) if here else True)
        # Communications: one candidate transfer per (producer, reader).
        producers = sorted(
            {d.src for v in nodes for d in graph.flow_consumers(v) if d.src == v}
        )
        tvar: dict[tuple[int, int], tuple] = {}
        if n_buses:
            for u in producers:
                for q in cfg.clusters():
                    t = z3.Int(f"t{u}_{q}")
                    b = z3.Int(f"b{u}_{q}")
                    used = z3.Bool(f"u{u}_{q}")
                    solver.add(z3.Implies(used, z3.And(t >= 0, t < horizon + ii)))
                    solver.add(z3.Implies(used, z3.And(b >= 0, b < n_buses)))
                    lat_u = graph.operation(u).latency
                    solver.add(z3.Implies(used, t >= cyc[u] + lat_u))
                    if latbus > ii:
                        solver.add(z3.Not(used))
                    tvar[(u, q)] = (t, b, used)
        for v in nodes:
            for dep in graph.flow_producers(v):
                u = dep.src
                if not n_buses:
                    solver.add(clu[v] == clu[u])
                    continue
                for q in cfg.clusters():
                    t, b, used = tvar[(u, q)]
                    solver.add(
                        z3.Implies(
                            z3.And(clu[v] == q, clu[u] != q),
                            z3.And(used, t + latbus <= cyc[v] + ii * dep.distance),
                        )
                    )
        # Pairwise bus exclusion (same-producer broadcasts may merge).
        keys = sorted(tvar)
        for i, ki in enumerate(keys):
            ti, bi, ui = tvar[ki]
            for kj in keys[i + 1 :]:
                tj, bj, uj = tvar[kj]
                diff = (ti - tj) % ii
                apart = z3.And(diff >= latbus, diff <= ii - latbus)
                same = z3.And(ti == tj, bi == bj) if ki[0] == kj[0] else False
                solver.add(
                    z3.Implies(z3.And(ui, uj), z3.Or(bi != bj, apart, same))
                )

        for _ in range(_Z3_PRESSURE_MODELS):
            remaining_ms = int(max(0.0, deadline - time.monotonic()) * 1000)
            if remaining_ms <= 0:
                raise ExactTimeout(
                    f"exact[z3]: search for {graph.name!r} on {cfg.name!r} "
                    f"exceeded the {self.time_budget_s:.1f}s budget at II={ii}"
                )
            solver.set("timeout", remaining_ms)
            res = solver.check()
            if res == z3.unsat:
                return None
            if res != z3.sat:
                if time.monotonic() >= deadline:
                    raise ExactTimeout(
                        f"exact[z3]: solver gave up on {graph.name!r} at "
                        f"II={ii} within the {self.time_budget_s:.1f}s budget"
                    )
                break  # solver unknown for other reasons: fall back to bnb
            model = solver.model()
            sol = self._z3_extract(graph, ii, model, cyc, clu, tvar)
            sched = self._materialize(graph, sol, ii)
            if max(cluster_pressures(sched).values()) <= reg_limit:
                return sol
            block = [cyc[v] != model[cyc[v]] for v in nodes]
            block += [clu[v] != model[clu[v]] for v in nodes]
            for t, b, used in tvar.values():
                if z3.is_true(model[used]):
                    block += [t != model[t], b != model[b]]
            solver.add(z3.Or(*block))
        return _BnbSearch(
            graph, cfg, ii, reg_limit, deadline, self.time_budget_s
        ).run()

    def _z3_extract(
        self, graph, ii, model, cyc, clu, tvar
    ) -> _Solution:  # pragma: no cover - needs z3 (CI extra)
        """Assignment + the *needed* transfers (merged into broadcasts)."""
        cycles = {v: model[cyc[v]].as_long() for v in cyc}
        clusters = {v: model[clu[v]].as_long() for v in clu}
        needed: dict[tuple[int, int, int], set[int]] = {}
        for v in clusters:
            for dep in graph.flow_producers(v):
                u = dep.src
                q = clusters[v]
                if clusters[u] == q:
                    continue
                t, b, _ = tvar[(u, q)]
                key = (u, model[t].as_long(), model[b].as_long())
                needed.setdefault(key, set()).add(q)
        comms = tuple(
            Communication(u, clusters[u], bus, start, frozenset(readers))
            for (u, start, bus), readers in sorted(needed.items())
        )
        ops = tuple((v, cycles[v], clusters[v]) for v in sorted(cycles))
        return _Solution(ii, ops, comms)


class _BnbSearch:
    """Depth-first branch and bound for one (II, register-limit) probe.

    Nodes are tried in SMS order (recurrence sets first, neighbours
    adjacent — the same order the heuristics use, so the first solutions
    found resemble theirs).  Before each node, longest-path bounds are
    re-propagated from the placed anchors over every dependence edge; a
    placed node pushed past its own cycle kills the branch immediately.
    Cluster symmetry (homogeneous machines) and whole-schedule translation
    are broken explicitly; interchangeable idle buses are deduplicated.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        config: MachineConfig,
        ii: int,
        reg_limit: int,
        deadline: float,
        budget_s: float,
    ):
        self.graph = graph
        self.config = config
        self.ii = ii
        self.reg_limit = reg_limit
        self.deadline = deadline
        self.budget_s = budget_s
        self.sched = ModuloSchedule(graph, config, ii, mii=ii)
        self.mrt = ReservationTable(config, ii)
        self.order = sms_order(graph)
        self.nodes = graph.node_ids
        self.edges = [
            (d.src, d.dst, d.latency - ii * d.distance) for d in graph.edges
        ]
        self.latbus = config.buses.latency
        self.n_buses = config.buses.count if config.is_clustered else 0
        self.homogeneous = config.is_homogeneous
        self.cluster_use = [0] * config.n_clusters
        self.used_clusters = 0
        # Per-class open-slot accounting for the global resource prune.
        self.free_slots: dict[FuClass, int] = {}
        self.unplaced: dict[FuClass, int] = {}
        for q in config.clusters():
            for fu_class in FuClass:
                self.free_slots[fu_class] = (
                    self.free_slots.get(fu_class, 0) + ii * config.fu_count(q, fu_class)
                )
        for op in graph.operations():
            self.unplaced[op.fu_class] = self.unplaced.get(op.fu_class, 0) + 1
        # Pressure is re-derived from scratch per commit only when the
        # register budget can plausibly bind; leaves are always checked,
        # so skipping the per-commit prune never costs soundness.
        self.check_every_commit = reg_limit < 2 * len(graph)
        self.solution: _Solution | None = None

    # -- driver ---------------------------------------------------------
    def run(self) -> _Solution | None:
        if self._search():
            return self.solution
        return None

    def _search(self) -> bool:
        if time.monotonic() >= self.deadline:
            raise ExactTimeout(
                f"exact: search for {self.graph.name!r} on "
                f"{self.config.name!r} exceeded the {self.budget_s:.1f}s "
                f"budget at II={self.ii}"
            )
        depth = len(self.sched.ops)
        if depth == len(self.order):
            if self._pressure_ok():
                self.solution = _Solution(
                    self.ii,
                    tuple(
                        (n, op.cycle, op.cluster)
                        for n, op in sorted(self.sched.ops.items())
                    ),
                    tuple(self.sched.comms),
                )
                return True
            return False
        for fu_class, left in self.unplaced.items():
            if left > self.free_slots[fu_class]:
                return False
        bounds = self._bounds()
        if bounds is None:
            return False
        asap, alap = bounds
        v = self.order[depth]
        op = self.graph.operation(v)
        if self.homogeneous:
            cluster_limit = min(self.config.n_clusters, self.used_clusters + 1)
        else:
            cluster_limit = self.config.n_clusters
        for q in range(cluster_limit):
            grid = self.mrt.fu_grid(q, op.fu_class)
            if grid.cols == 0:
                continue
            lo, hi = self._window(v, q, asap[v], alap[v], depth)
            if hi < lo:
                continue
            for t in range(lo, hi + 1):
                if grid.masks[t % self.ii] == grid.full:
                    continue
                reqs = self._requirements(v, q, t)
                if reqs is None:
                    continue
                for pending, added in self._plans(reqs, 0, [], []):
                    undo = self._commit(v, op, q, t, pending, added)
                    ok = not self.check_every_commit or self._pressure_ok()
                    if ok and self._search():
                        return True
                    self._undo(undo)
        return False

    # -- bounds ---------------------------------------------------------
    def _bounds(self):
        """Longest-path ASAP/ALAP from the placed anchors; None = dead."""
        ops = self.sched.ops
        asap = {v: (ops[v].cycle if v in ops else _NEG) for v in self.nodes}
        for _ in range(len(self.nodes)):
            changed = False
            for src, dst, w in self.edges:
                a = asap[src]
                if a == _NEG:
                    continue
                cand = a + w
                if cand > asap[dst]:
                    if dst in ops:
                        return None  # contradicts a committed placement
                    asap[dst] = cand
                    changed = True
            if not changed:
                break
        else:
            return None  # positive cycle at this II
        alap = {v: (ops[v].cycle if v in ops else _POS) for v in self.nodes}
        for _ in range(len(self.nodes)):
            changed = False
            for src, dst, w in self.edges:
                b = alap[dst]
                if b == _POS:
                    continue
                cand = b - w
                if cand < alap[src]:
                    if src in ops:
                        return None
                    alap[src] = cand
                    changed = True
            if not changed:
                break
        else:
            return None
        for v in self.nodes:
            if v not in ops and asap[v] != _NEG and alap[v] != _POS:
                if asap[v] > alap[v]:
                    return None
        return asap, alap

    def _window(self, v: int, q: int, a: int, b: int, depth: int) -> tuple[int, int]:
        """The candidate cycle range of *v* on cluster *q*.

        The dependence-only ASAP/ALAP anchors are first tightened with the
        bus latency of every delivery the cluster choice forces: a value
        produced in another cluster cannot be consumed before
        ``production + latbus``, and a value consumed in another cluster
        must leave early enough to arrive.  Without this the canonical
        II-wide windows would miss comm-shifted placements entirely
        (acutely so at small II, where the window is only a cycle or two).
        """
        ii = self.ii
        ops = self.sched.ops
        graph = self.graph
        if self.n_buses:
            for dep in graph.flow_producers(v):
                placed = ops.get(dep.src)
                if placed is None or dep.src == v or placed.cluster == q:
                    continue
                ready = placed.cycle + graph.operation(dep.src).latency
                cand = ready + self.latbus - ii * dep.distance
                if a == _NEG or cand > a:
                    a = cand
            for dep in graph.flow_consumers(v):
                placed = ops.get(dep.dst)
                if placed is None or dep.dst == v or placed.cluster == q:
                    continue
                cand = (
                    placed.cycle
                    + ii * dep.distance
                    - self.latbus
                    - graph.operation(v).latency
                )
                if b == _POS or cand < b:
                    b = cand
        if a != _NEG and b != _POS:
            return a, b
        if a != _NEG:
            return a, a + ii - 1
        if b != _POS:
            return b - ii + 1, b
        if depth == 0:
            return 0, 0  # whole-schedule translation symmetry
        return 0, ii - 1  # per-component translation by multiples of II

    # -- communication planning ----------------------------------------
    def _requirements(self, v: int, q: int, t: int) -> list[_Requirement] | None:
        """Cross-cluster deliveries placing *v* at (*q*, *t*) would need."""
        ops = self.sched.ops
        ii = self.ii
        merged: dict[tuple[int, int], _Requirement] = {}

        def need(producer: int, src_cluster: int, reader: int, ready: int, consume: int):
            key = (producer, reader)
            prev = merged.get(key)
            if prev is None or consume < prev.consume:
                merged[key] = _Requirement(producer, src_cluster, reader, ready, consume)

        for dep in self.graph.flow_producers(v):
            placed = ops.get(dep.src)
            if placed is None or placed.cluster == q or dep.src == v:
                continue
            ready = placed.cycle + self.graph.operation(dep.src).latency
            need(dep.src, placed.cluster, q, ready, t + ii * dep.distance)
        for dep in self.graph.flow_consumers(v):
            placed = ops.get(dep.dst)
            if placed is None or placed.cluster == q or dep.dst == v:
                continue
            ready = t + self.graph.operation(v).latency
            need(v, q, placed.cluster, ready, placed.cycle + ii * dep.distance)
        if merged and (self.n_buses == 0 or self.latbus > ii):
            return None  # no usable bus fabric: cross-cluster flow impossible
        return list(merged.values())

    def _plans(self, reqs, idx, pending, added):
        """Enumerate complete communication plans for *reqs* (DFS product).

        Per requirement: reuse a committed transfer already readable (or
        add this reader to one), join a transfer pending in this very
        plan (broadcast), or open a new transfer on any free,
        non-interchangeable bus within the canonical start window.
        """
        if idx == len(reqs):
            yield pending, added
            return
        r = reqs[idx]
        latest_start = r.consume - self.latbus
        committed = self.sched.comms_for(r.producer)
        for c in committed:
            if c.start_cycle <= latest_start and r.reader in c.readers:
                yield from self._plans(reqs, idx + 1, pending, added)
                return  # already delivered: nothing to decide
        for c in committed:
            if c.start_cycle <= latest_start:
                added.append((c, r.reader))
                yield from self._plans(reqs, idx + 1, pending, added)
                added.pop()
        for p in pending:
            if p.producer == r.producer and p.start <= latest_start:
                p.readers.add(r.reader)
                yield from self._plans(reqs, idx + 1, pending, added)
                p.readers.discard(r.reader)
        hi = min(latest_start, r.ready + self.ii - 1)
        for start in range(r.ready, hi + 1):
            for bus in self._free_buses(start, pending):
                pending.append(
                    _Pending(r.producer, r.src_cluster, bus, start, {r.reader})
                )
                yield from self._plans(reqs, idx + 1, pending, added)
                pending.pop()

    def _free_buses(self, start: int, pending: list[_Pending]) -> list[int]:
        """Free buses for a transfer at *start* (idle buses deduplicated)."""
        busy = self.mrt.bus_occupancy(start)
        rows_mask = self.mrt.bus_rows_mask(start)
        for p in pending:
            if self.mrt.bus_rows_mask(p.start) & rows_mask:
                busy |= 1 << p.bus
        masks = self.mrt._bus.masks
        out: list[int] = []
        seen_idle = False
        pending_buses = {p.bus for p in pending}
        for b in range(self.n_buses):
            if busy & (1 << b):
                continue
            idle = b not in pending_buses and not any(
                m & (1 << b) for m in masks
            )
            if idle:
                if seen_idle:
                    continue  # completely idle buses are interchangeable
                seen_idle = True
            out.append(b)
        return out

    # -- commit / undo --------------------------------------------------
    def _commit(self, v, op, q, t, pending, added):
        unit = self.mrt.occupy_fu(q, op.fu_class, t, v)
        self.sched.place(ScheduledOp(v, t, q, unit))
        if self.cluster_use[q] == 0:
            self.used_clusters += 1
        self.cluster_use[q] += 1
        self.unplaced[op.fu_class] -= 1
        self.free_slots[op.fu_class] -= 1
        new_comms: list[Communication] = []
        for p in pending:
            comm = Communication(
                p.producer, p.src_cluster, p.bus, p.start, frozenset(p.readers)
            )
            self.mrt.occupy_bus(p.start, p.bus, (p.producer, p.start, p.bus))
            self.sched.add_comm(comm)
            new_comms.append(comm)
        replacements: list[tuple[Communication, Communication]] = []
        current: dict[int, Communication] = {}
        for c, reader in added:
            live = current.get(id(c), c)
            grown = live.with_reader(reader)
            self.sched.replace_comm(live, grown)
            current[id(c)] = grown
            replacements.append((live, grown))
        return (v, op, q, t, unit, new_comms, replacements)

    def _undo(self, undo):
        v, op, q, t, unit, new_comms, replacements = undo
        for live, grown in reversed(replacements):
            self.sched.replace_comm(grown, live)
        for comm in reversed(new_comms):
            self.mrt.release_bus(
                comm.start_cycle, comm.bus, (comm.producer, comm.start_cycle, comm.bus)
            )
            self.sched.comms.remove(comm)
            self.sched._comms_by_producer[comm.producer].remove(comm)
        del self.sched.ops[v]
        self.cluster_use[q] -= 1
        if self.cluster_use[q] == 0:
            self.used_clusters -= 1
        self.unplaced[op.fu_class] += 1
        self.free_slots[op.fu_class] += 1
        self.mrt.release_fu(q, op.fu_class, t, unit, v)

    def _pressure_ok(self) -> bool:
        pressures = cluster_pressures(self.sched)
        return max(pressures.values()) <= self.reg_limit if pressures else True
