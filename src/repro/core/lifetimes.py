"""Register requirements (MaxLive) of a (possibly partial) modulo schedule.

The paper uses no spill code: "those clusters for which the insertion of
this node would increase the register requirements above the number of
available registers are discarded" (Section 5.1).  This module computes the
per-cluster register requirement of a schedule, defined as the classic
MaxLive measure over the modulo-wrapped lifetimes:

* a value produced by node *u* (in cluster *c*) is written to *c*'s
  register file at ``s(u) + lat(u)`` and must stay live until its last
  local read — reads by same-cluster consumers *v* happen at
  ``s(v) + II*dist``, and every bus transfer of the value reads the
  register file (or bypass) at the communication start cycle;
* a value arriving in cluster *c'* over a bus (arrival = comm start +
  bus latency) is stored into *c'*'s file only if some consumer there
  reads it *later* than the arrival cycle (the incoming-value register
  feeds same-cycle consumers directly, Section 3); if stored, it is live
  from arrival until its last read in *c'*;
* a produced value with no scheduled reads yet occupies its destination
  register for one cycle (the write itself).

A lifetime spanning ``len`` cycles contributes to ``len`` (mod II) rows of
the pressure histogram; lifetimes longer than II therefore count multiple
times per row, which models the modulo variable expansion the hardware or
unroller would need.

The histogram accumulation is vectorised with NumPy: schedulers call this
on every candidate placement, making it the hottest path in the package.
"""

from __future__ import annotations

import numpy as np

from ..ir.ddg import DependenceGraph
from .schedule import Communication, ModuloSchedule


def _intervals(
    schedule: ModuloSchedule,
    extra_comms: list[Communication] | None,
) -> list[tuple[int, int, int]]:
    """All live ranges as (cluster, start, end) with end exclusive."""
    graph: DependenceGraph = schedule.graph
    ii = schedule.ii
    bus_latency = schedule.config.buses.latency
    comms = schedule.comms if not extra_comms else schedule.comms + extra_comms

    comms_by_producer: dict[int, list[Communication]] = {}
    for comm in comms:
        comms_by_producer.setdefault(comm.producer, []).append(comm)

    out: list[tuple[int, int, int]] = []
    ops = schedule.ops
    for node, placed in ops.items():
        op = graph.operation(node)
        if not op.writes_register:
            continue
        written = placed.cycle + op.latency
        last_read = written  # the write occupies the register >= 1 cycle
        for dep in graph.flow_consumers(node):
            consumer = ops.get(dep.dst)
            if consumer is None or consumer.cluster != placed.cluster:
                continue  # remote consumers read the communicated copy
            read = consumer.cycle + ii * dep.distance
            if read > last_read:
                last_read = read
        for comm in comms_by_producer.get(node, ()):
            if comm.start_cycle > last_read:
                last_read = comm.start_cycle
        out.append((placed.cluster, written, last_read + 1))

    # Incoming communicated values stored in destination register files.
    for comm in comms:
        arrival = comm.start_cycle + bus_latency
        consumers = graph.flow_consumers(comm.producer)
        for reader_cluster in comm.readers:
            # None sentinel, not -1: partial schedules legally contain
            # negative cycles (backward scans, see engine.py), so a late
            # read at a negative cycle is still a late read.
            last_late_read: int | None = None
            for dep in consumers:
                consumer = ops.get(dep.dst)
                if consumer is None or consumer.cluster != reader_cluster:
                    continue
                read = consumer.cycle + ii * dep.distance
                if read > arrival and (last_late_read is None or read > last_late_read):
                    last_late_read = read
            if last_late_read is not None:
                out.append((reader_cluster, arrival, last_late_read + 1))
    return out


def cluster_pressures(
    schedule: ModuloSchedule,
    *,
    extra_comms: list[Communication] | None = None,
) -> dict[int, int]:
    """MaxLive per cluster for *schedule*.

    ``extra_comms`` lets schedulers evaluate a tentative placement's
    communication plan without mutating the schedule.
    """
    ii = schedule.ii
    n_clusters = schedule.config.n_clusters
    intervals = _intervals(schedule, extra_comms)
    if not intervals:
        return {c: 0 for c in range(n_clusters)}

    clusters = np.fromiter((iv[0] for iv in intervals), dtype=np.int64)
    starts = np.fromiter((iv[1] for iv in intervals), dtype=np.int64)
    ends = np.fromiter((iv[2] for iv in intervals), dtype=np.int64)
    lengths = ends - starts
    fulls = lengths // ii
    rems = lengths - fulls * ii

    result: dict[int, int] = {}
    hist = np.zeros(ii, dtype=np.int64)
    for c in range(n_clusters):
        mask = clusters == c
        if not mask.any():
            result[c] = 0
            continue
        hist[:] = 0
        base = int(fulls[mask].sum())  # whole-II wraps cover every row
        # Partial remainders: rows (start .. start+rem-1) mod II.  Use the
        # difference-array trick on the doubled range to stay vectorised.
        s = np.mod(starts[mask], ii)
        r = rems[mask]
        nz = r > 0
        if nz.any():
            s = s[nz]
            r = r[nz]
            diff = np.zeros(2 * ii + 1, dtype=np.int64)
            np.add.at(diff, s, 1)
            np.add.at(diff, s + r, -1)
            acc = np.cumsum(diff[:-1])
            hist += acc[:ii] + acc[ii:]
        result[c] = base + int(hist.max())
    return result


def mve_factor(schedule: ModuloSchedule) -> int:
    """Modulo-variable-expansion factor of the schedule.

    A value whose lifetime exceeds II would be overwritten by its own
    next-iteration instance; without rotating register files the kernel
    must be replicated ``max_v ceil(lifetime(v) / II)`` times with renamed
    registers (Lam).  The pressure model already *counts* the extra copies
    (wrapped lifetimes contribute once per II spanned); this exposes the
    resulting kernel replication for code-size accounting.
    """
    ii = schedule.ii
    factor = 1
    for _, start, end in _intervals(schedule, None):
        need = -(-(end - start) // ii)  # ceil
        if need > factor:
            factor = need
    return factor


def max_pressure(schedule: ModuloSchedule) -> int:
    """The largest per-cluster MaxLive of the schedule."""
    pressures = cluster_pressures(schedule)
    return max(pressures.values()) if pressures else 0


def pressure_ok(
    schedule: ModuloSchedule,
    *,
    extra_comms: list[Communication] | None = None,
) -> bool:
    """Do all clusters fit in their register files?"""
    limit = schedule.config.regs_per_cluster
    return all(
        p <= limit
        for p in cluster_pressures(schedule, extra_comms=extra_comms).values()
    )
