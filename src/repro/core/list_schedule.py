"""Resource-constrained list scheduling (the no-pipelining baseline).

Software pipelining exists because scheduling one iteration at a time
leaves functional units idle during dependence latencies.  This module
implements the classic critical-path list scheduler for a single loop
iteration on a clustered machine: it produces a (degenerate) modulo
schedule with II equal to the schedule length and a stage count of one,
so every downstream model (IPC, code size, verification) applies
unchanged.

Used as the experiment harness's honest fallback for loops that cannot be
modulo-scheduled, and by the ``bench_pipelining_gain`` study quantifying
what modulo scheduling buys over list scheduling — the gap the paper's
whole line of work lives in.

Cluster assignment: operations greedily follow their predecessors
(minimising communications) with ties broken by cluster load; value
transfers reuse the same bus model as the modulo schedulers.  Within a
single iteration every value is produced before it is consumed, so a
feasible schedule always exists for any machine with at least one unit of
every class used — list scheduling cannot fail on register pressure
because at most one iteration is in flight.
"""

from __future__ import annotations

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from .schedule import Communication, ModuloSchedule, ScheduledOp
from .sms import topological_order


def list_schedule(graph: DependenceGraph, config: MachineConfig) -> ModuloSchedule:
    """Schedule one iteration of *graph* without overlapping iterations.

    Returns a :class:`ModuloSchedule` whose II equals the schedule length
    (iterations run back to back), suitable for every downstream model.
    Loop-carried *timing* constraints are satisfied automatically (with
    ``II = length`` every cross-iteration constraint has a whole
    schedule's worth of slack), but carried values crossing clusters
    still need bus transfers — added in a post-pass.
    """
    graph.validate()
    if len(graph) == 0:
        raise SchedulingError(f"graph {graph.name!r} has no operations")

    order = topological_order(graph)
    latbus = config.buses.latency

    # occupancy[(cluster, fu_class)][cycle] = units busy that cycle
    fu_busy: dict[tuple[int, object], dict[int, int]] = {}
    bus_busy: dict[int, dict[int, bool]] = {
        b: {} for b in range(config.buses.count)
    }
    placements: dict[int, ScheduledOp] = {}
    comms: list[Communication] = []
    cluster_load = [0] * config.n_clusters

    def fu_free(cluster: int, fu_class, cycle: int) -> bool:
        cap = config.fu_count(cluster, fu_class)
        used = fu_busy.get((cluster, fu_class), {}).get(cycle, 0)
        return used < cap

    def claim_fu(cluster: int, fu_class, cycle: int) -> int:
        slot = fu_busy.setdefault((cluster, fu_class), {})
        index = slot.get(cycle, 0)
        slot[cycle] = index + 1
        return index

    def find_bus(
        start: int, pending: list[Communication]
    ) -> tuple[int, int] | None:
        """Earliest (bus, cycle >= start) with latbus free cycles, also
        avoiding transfers planned earlier in this same placement."""

        def clashes(b: int, t: int) -> bool:
            if any(bus_busy[b].get(t + k, False) for k in range(latbus)):
                return True
            for c in pending:
                if c.bus != b:
                    continue
                if t < c.start_cycle + latbus and c.start_cycle < t + latbus:
                    return True
            return False

        for t in range(start, start + 4 * latbus + 64):
            for b in range(config.buses.count):
                if not clashes(b, t):
                    return b, t
        return None

    for node in order:
        op = graph.operation(node)
        # cluster choice: follow predecessors, then least load
        pred_clusters: dict[int, int] = {}
        ready = 0
        for dep in graph.predecessors(node):
            if dep.distance > 0 or dep.src == node:
                continue  # carried deps are free at II = length
            placed = placements[dep.src]
            pred_clusters[placed.cluster] = pred_clusters.get(placed.cluster, 0) + 1
            ready = max(ready, placed.cycle + dep.latency)
        candidates = sorted(
            config.clusters(),
            key=lambda c: (-pred_clusters.get(c, 0), cluster_load[c], c),
        )

        best: tuple[int, int, list[Communication]] | None = None
        for cluster in candidates:
            if config.fu_count(cluster, op.fu_class) == 0:
                continue
            # communications for remote predecessors
            new_comms: list[Communication] = []
            earliest = ready
            feasible = True
            for dep in graph.predecessors(node):
                if dep.distance > 0 or dep.src == node or not dep.moves_value:
                    continue
                placed = placements[dep.src]
                if placed.cluster == cluster:
                    continue
                existing = next(
                    (
                        c
                        for c in comms + new_comms
                        if c.producer == dep.src
                    ),
                    None,
                )
                if existing is not None:
                    arrival = existing.arrival(latbus)
                    if cluster not in existing.readers:
                        updated = existing.with_reader(cluster)
                        if existing in comms:
                            comms[comms.index(existing)] = updated
                        else:
                            new_comms[new_comms.index(existing)] = updated
                    earliest = max(earliest, arrival)
                    continue
                produced = placed.cycle + graph.operation(dep.src).latency
                found = find_bus(produced, new_comms)
                if found is None:
                    feasible = False
                    break
                bus, start = found
                new_comms.append(
                    Communication(
                        dep.src, placed.cluster, bus, start, frozenset({cluster})
                    )
                )
                earliest = max(earliest, start + latbus)
            if not feasible:
                continue
            cycle = earliest
            while not fu_free(cluster, op.fu_class, cycle):
                cycle += 1
            if best is None or cycle < best[0]:
                best = (cycle, cluster, new_comms)
            if cycle == ready:
                break  # cannot do better
        if best is None:
            raise SchedulingError(
                f"list scheduler: no cluster can run {op} on {config.name!r}"
            )
        cycle, cluster, new_comms = best
        for comm in new_comms:
            for k in range(latbus):
                bus_busy[comm.bus][comm.start_cycle + k] = True
            comms.append(comm)
        unit = claim_fu(cluster, op.fu_class, cycle)
        placements[node] = ScheduledOp(node, cycle, cluster, unit)
        cluster_load[cluster] += 1

    # Post-pass: carried cross-cluster flow deps still need their value
    # moved, even though II = length gives them full timing slack.  Any
    # transfer inside the final length meets the deadline automatically:
    # consumer + d*II >= II >= arrival.
    for dep in graph.edges:
        if not dep.moves_value or dep.distance == 0 or dep.src == dep.dst:
            continue
        src = placements[dep.src]
        dst = placements[dep.dst]
        if src.cluster == dst.cluster:
            continue
        existing = next((c for c in comms if c.producer == dep.src), None)
        if existing is not None:
            if dst.cluster not in existing.readers:
                comms[comms.index(existing)] = existing.with_reader(dst.cluster)
            continue
        produced = src.cycle + graph.operation(dep.src).latency
        found = find_bus(produced, [])
        if found is None:  # pragma: no cover - bus search window is generous
            raise SchedulingError(
                f"list scheduler: no bus slot for carried value {dep}"
            )
        bus, start = found
        comm = Communication(
            dep.src, src.cluster, bus, start, frozenset({dst.cluster})
        )
        for k in range(latbus):
            bus_busy[bus][start + k] = True
        comms.append(comm)

    length = max(
        [p.cycle + graph.operation(n).latency for n, p in placements.items()]
        + [c.start_cycle + latbus for c in comms]
        + [1]
    )
    sched = ModuloSchedule(graph, config, ii=length, mii=length)
    for placed in placements.values():
        sched.place(placed)
    for comm in comms:
        sched.add_comm(comm)
    return sched
