"""Minimum initiation interval (MII) computation.

The two classic lower bounds on the initiation interval of a modulo
schedule (Rau & Glaeser; Lam):

* **ResMII** — resource-constrained bound: for every functional-unit class,
  at least ``ceil(ops_of_class / units_of_class)`` cycles are needed per
  iteration.  The paper computes it over the *total* machine resources
  (its Figure 7 example: ``ResMII = ceil(6/4) = 2`` on a 2-cluster machine
  with 2 units per cluster).

* **RecMII** — recurrence-constrained bound: for every dependence cycle C,
  ``II * distance(C) >= latency(C)`` must hold, so
  ``RecMII = max_C ceil(latency(C) / distance(C))``.

RecMII is found by binary search on II with a positive-cycle test on edge
weights ``latency - II * distance`` (Bellman-Ford style relaxation); for a
fixed II a schedule respecting all dependences exists iff no cycle has
positive total weight.  Positivity is monotone non-increasing in II because
every cycle has ``distance >= 1`` (zero-distance cycles are rejected by
graph validation), so binary search is exact.

An exact enumeration over simple cycles is provided for cross-checking on
small graphs (:func:`rec_mii_exact`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from ..arch.cluster import MachineConfig
from ..errors import GraphError
from ..ir.ddg import DependenceGraph


def res_mii(graph: DependenceGraph, config: MachineConfig) -> int:
    """Resource-constrained minimum II over the whole machine."""
    if len(graph) == 0:
        return 1
    totals = config.total_fus
    bound = 1
    for fu_class, n_ops in graph.op_count_by_class().items():
        units = totals.count(fu_class)
        if units == 0:
            raise GraphError(
                f"graph {graph.name!r} uses {fu_class} ops but machine "
                f"{config.name!r} has no {fu_class} units"
            )
        bound = max(bound, math.ceil(n_ops / units))
    return bound


def _has_positive_cycle(graph: DependenceGraph, ii: int) -> bool:
    """True iff some dependence cycle has ``sum(latency - ii*distance) > 0``.

    Longest-path relaxation over ``n`` rounds; a node still relaxing in
    round ``n`` lies on (or is reachable from) a positive cycle.
    """
    nodes = graph.node_ids
    if not nodes:
        return False
    dist = {v: 0 for v in nodes}
    edges = [
        (d.src, d.dst, d.latency - ii * d.distance) for d in graph.edges
    ]
    n = len(nodes)
    for round_idx in range(n):
        changed = False
        for src, dst, w in edges:
            cand = dist[src] + w
            if cand > dist[dst]:
                dist[dst] = cand
                changed = True
        if not changed:
            return False
    return True


def rec_mii(graph: DependenceGraph) -> int:
    """Recurrence-constrained minimum II (1 when the graph is acyclic).

    Memoised per graph: a pure graph property, recomputed by orderings,
    partitioners and the II search alike."""
    return graph.derived("rec_mii", lambda: _rec_mii(graph))


def _rec_mii(graph: DependenceGraph) -> int:
    if len(graph) == 0:
        return 1
    # Upper bound: total latency of all edges certainly stops any cycle.
    hi = max(1, sum(d.latency for d in graph.edges))
    if not _has_positive_cycle(graph, 1):
        return 1
    if _has_positive_cycle(graph, hi):
        raise GraphError(
            f"graph {graph.name!r} has a cycle unsatisfiable at any II "
            "(zero-distance cycle?)"
        )
    lo = 1  # known infeasible
    # Invariant: positive cycle at lo, none at hi.
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(graph, mid):
            lo = mid
        else:
            hi = mid
    return hi


def rec_mii_exact(graph: DependenceGraph, max_cycles: int = 200_000) -> int:
    """RecMII by simple-cycle enumeration (for cross-checks on small graphs).

    Raises :class:`GraphError` if the graph has more than *max_cycles*
    simple cycles (enumeration would be intractable).
    """
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.node_ids)
    for dep in graph.edges:
        g.add_edge(dep.src, dep.dst, latency=dep.latency, distance=dep.distance)
    best = 1
    count = 0
    # networkx yields node cycles; with multi-edges we must consider every
    # combination of parallel edges along the cycle.  For cross-check use we
    # take, per hop, the edge maximising latency - best*distance; to stay
    # exact we instead maximise ceil(L/D) over per-hop edge choices by
    # enumerating them when few.
    for cycle in nx.simple_cycles(g):
        count += 1
        if count > max_cycles:
            raise GraphError("too many simple cycles for exact RecMII")
        hops = list(zip(cycle, cycle[1:] + cycle[:1]))
        choices: list[list[tuple[int, int]]] = []
        for u, v in hops:
            data = g.get_edge_data(u, v)
            choices.append([(e["latency"], e["distance"]) for e in data.values()])
        best = max(best, _best_ratio(choices))
    return best


def _best_ratio(choices: list[list[tuple[int, int]]]) -> int:
    """max over per-hop edge selections of ceil(sum L / sum D)."""
    totals = {(0, 0)}
    for options in choices:
        totals = {(L + lo, D + do) for (L, D) in totals for (lo, do) in options}
        # Prune dominated pairs to keep the set small.
        pruned = set()
        for L, D in totals:
            if not any(
                (L2 >= L and D2 <= D and (L2, D2) != (L, D)) for L2, D2 in totals
            ):
                pruned.add((L, D))
        totals = pruned
    best = 1
    for L, D in totals:
        if D == 0:
            if L > 0:
                raise GraphError("zero-distance positive cycle")
            continue
        best = max(best, math.ceil(L / D))
    return best


@dataclass(frozen=True)
class MiiReport:
    """Both MII bounds and their maximum."""

    res_mii: int
    rec_mii: int

    @property
    def mii(self) -> int:
        return max(self.res_mii, self.rec_mii)

    @property
    def recurrence_bound(self) -> bool:
        """True when recurrences (not resources) set the lower bound."""
        return self.rec_mii > self.res_mii


def mii_report(graph: DependenceGraph, config: MachineConfig) -> MiiReport:
    """Compute both bounds for *graph* on *config*."""
    return MiiReport(res_mii=res_mii(graph, config), rec_mii=rec_mii(graph))


def mii(graph: DependenceGraph, config: MachineConfig) -> int:
    """``max(ResMII, RecMII)`` — the scheduler's starting II."""
    return mii_report(graph, config).mii
