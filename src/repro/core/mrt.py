"""Modulo reservation tables (MRT).

An MRT has II rows; resource usage at absolute cycle *t* occupies row
``t mod II``.  The machine exposes two resource groups:

* one table per (cluster, FU class), with one column per unit; an
  operation occupies a single row (units are fully pipelined);
* one table for the buses, with one column per bus; a communication
  occupies ``latbus`` *consecutive* rows on one bus (the bus is busy for
  the entire communication latency, Section 3).

Occupancy is stored twice: a per-row *bitmask* (bit ``c`` set = column
``c`` occupied) that makes the hot-path queries ``fu_slot_free`` /
``bus_free`` O(1) mask tests, and an owner map used only for release
checking and diagnostics (``fu_owner``, conflict messages).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.operation import FuClass


@dataclass
class _Grid:
    """A small II x columns occupancy grid: row bitmasks + owner map."""

    rows: int
    cols: int
    cells: list[list[object | None]] = field(init=False)
    masks: list[int] = field(init=False)
    full: int = field(init=False)

    def __post_init__(self) -> None:
        self.cells = [[None] * self.cols for _ in range(self.rows)]
        self.masks = [0] * self.rows
        self.full = (1 << self.cols) - 1

    def free_col(self, row: int, want: int = 1) -> list[int]:
        """Columns free at *row* (up to *want* of them)."""
        out = []
        free = ~self.masks[row] & self.full
        while free and len(out) < want:
            low = free & -free
            out.append(low.bit_length() - 1)
            free ^= low
        return out

    def first_free_col(self, row: int) -> int | None:
        """The lowest free column at *row* (the O(1) hot-path query)."""
        free = ~self.masks[row] & self.full
        if not free:
            return None
        return (free & -free).bit_length() - 1

    def occupy(self, row: int, col: int, owner: object) -> None:
        if self.masks[row] & (1 << col):
            raise SchedulingError(
                f"MRT conflict: row {row} col {col} already owned by "
                f"{self.cells[row][col]!r}"
            )
        self.masks[row] |= 1 << col
        self.cells[row][col] = owner

    def release(self, row: int, col: int, owner: object) -> None:
        if self.cells[row][col] != owner:
            raise SchedulingError(
                f"MRT release mismatch at row {row} col {col}: "
                f"{self.cells[row][col]!r} != {owner!r}"
            )
        self.masks[row] &= ~(1 << col)
        self.cells[row][col] = None

    def utilisation(self) -> float:
        if self.rows * self.cols == 0:
            return 0.0
        used = sum(mask.bit_count() for mask in self.masks)
        return used / (self.rows * self.cols)


class ReservationTable:
    """All modulo reservation tables of one machine at one II."""

    def __init__(self, config: MachineConfig, ii: int):
        if ii < 1:
            raise SchedulingError(f"II must be >= 1, got {ii}")
        self.config = config
        self.ii = ii
        self._fu: dict[tuple[int, FuClass], _Grid] = {}
        for cluster in config.clusters():
            for fu_class in FuClass:
                count = config.fu_count(cluster, fu_class)
                self._fu[(cluster, fu_class)] = _Grid(ii, count)
        self._bus = _Grid(ii, config.buses.count)
        # A transfer starting at row r occupies latbus consecutive rows;
        # both the row lists and their row-set bitmasks repeat modulo II,
        # so precompute them once per start row.
        lat = min(config.buses.latency, ii)
        self._bus_rows: list[list[int]] = [
            [(r + k) % ii for k in range(lat)] for r in range(ii)
        ]
        self._bus_row_masks: list[int] = [
            sum(1 << row for row in set(rows)) for rows in self._bus_rows
        ]

    # -- functional units -------------------------------------------------
    def fu_grid(self, cluster: int, fu_class: FuClass) -> _Grid:
        """The (cluster, class) grid — lets hot loops hoist the lookup."""
        return self._fu[(cluster, fu_class)]

    def fu_slot_free(self, cluster: int, fu_class: FuClass, cycle: int) -> bool:
        grid = self._fu[(cluster, fu_class)]
        return grid.masks[cycle % self.ii] != grid.full

    def occupy_fu(
        self, cluster: int, fu_class: FuClass, cycle: int, owner: object
    ) -> int:
        """Claim a free unit; returns the unit index."""
        grid = self._fu[(cluster, fu_class)]
        row = cycle % self.ii
        col = grid.first_free_col(row)
        if col is None:
            raise SchedulingError(
                f"no free {fu_class} unit in cluster {cluster} at row {row}"
            )
        grid.occupy(row, col, owner)
        return col

    def release_fu(
        self, cluster: int, fu_class: FuClass, cycle: int, unit: int, owner: object
    ) -> None:
        self._fu[(cluster, fu_class)].release(cycle % self.ii, unit, owner)

    def fu_owner(
        self, cluster: int, fu_class: FuClass, row: int, unit: int
    ) -> object | None:
        return self._fu[(cluster, fu_class)].cells[row][unit]

    # -- buses --------------------------------------------------------------
    def bus_rows(self, start_cycle: int) -> list[int]:
        """The MRT rows a communication starting at *start_cycle* occupies."""
        lat = self.config.buses.latency
        if lat <= self.ii:
            return self._bus_rows[start_cycle % self.ii]
        return [(start_cycle + k) % self.ii for k in range(lat)]

    def bus_rows_mask(self, start_cycle: int) -> int:
        """Bitmask over MRT rows of :meth:`bus_rows` (hot-path overlap test)."""
        return self._bus_row_masks[start_cycle % self.ii]

    def bus_occupancy(self, start_cycle: int) -> int:
        """Buses busy during some row of a transfer at *start_cycle*."""
        masks = self._bus.masks
        combined = 0
        for r in self._bus_rows[start_cycle % self.ii]:
            combined |= masks[r]
        return combined

    def bus_free(self, start_cycle: int, busy_mask: int = 0) -> int | None:
        """A bus free for a transfer starting at *start_cycle*, else None.

        A transfer needs ``latbus`` consecutive rows on the *same* bus.  A
        transfer longer than II would collide with its own next-iteration
        instance, so it can never fit.  ``busy_mask`` marks extra buses to
        treat as occupied (pending transfers of the same placement plan).
        """
        if self.config.buses.count == 0:
            return None
        if self.config.buses.latency > self.ii:
            return None
        free = ~(self.bus_occupancy(start_cycle) | busy_mask) & self._bus.full
        if not free:
            return None
        return (free & -free).bit_length() - 1

    def occupy_bus(self, start_cycle: int, bus: int, owner: object) -> None:
        for r in self.bus_rows(start_cycle):
            self._bus.occupy(r, bus, owner)

    def release_bus(self, start_cycle: int, bus: int, owner: object) -> None:
        for r in self.bus_rows(start_cycle):
            self._bus.release(r, bus, owner)

    # -- statistics ----------------------------------------------------------
    def bus_utilisation(self) -> float:
        """Fraction of bus rows occupied (0.0 when the machine has no buses)."""
        return self._bus.utilisation()

    def fu_utilisation(self) -> float:
        cells = used = 0
        for grid in self._fu.values():
            cells += grid.rows * grid.cols
            used += sum(mask.bit_count() for mask in grid.masks)
        return used / cells if cells else 0.0
