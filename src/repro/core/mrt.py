"""Modulo reservation tables (MRT).

An MRT has II rows; resource usage at absolute cycle *t* occupies row
``t mod II``.  The machine exposes two resource groups:

* one table per (cluster, FU class), with one column per unit; an
  operation occupies a single row (units are fully pipelined);
* one table for the buses, with one column per bus; a communication
  occupies ``latbus`` *consecutive* rows on one bus (the bus is busy for
  the entire communication latency, Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.operation import FuClass


@dataclass
class _Grid:
    """A small II x columns occupancy grid storing owner ids (or None)."""

    rows: int
    cols: int
    cells: list[list[object | None]] = field(init=False)

    def __post_init__(self) -> None:
        self.cells = [[None] * self.cols for _ in range(self.rows)]

    def free_col(self, row: int, want: int = 1) -> list[int]:
        """Columns free at *row* (up to *want* of them)."""
        out = []
        for c in range(self.cols):
            if self.cells[row][c] is None:
                out.append(c)
                if len(out) == want:
                    break
        return out

    def occupy(self, row: int, col: int, owner: object) -> None:
        if self.cells[row][col] is not None:
            raise SchedulingError(
                f"MRT conflict: row {row} col {col} already owned by "
                f"{self.cells[row][col]!r}"
            )
        self.cells[row][col] = owner

    def release(self, row: int, col: int, owner: object) -> None:
        if self.cells[row][col] != owner:
            raise SchedulingError(
                f"MRT release mismatch at row {row} col {col}: "
                f"{self.cells[row][col]!r} != {owner!r}"
            )
        self.cells[row][col] = None

    def utilisation(self) -> float:
        if self.rows * self.cols == 0:
            return 0.0
        used = sum(1 for row in self.cells for cell in row if cell is not None)
        return used / (self.rows * self.cols)


class ReservationTable:
    """All modulo reservation tables of one machine at one II."""

    def __init__(self, config: MachineConfig, ii: int):
        if ii < 1:
            raise SchedulingError(f"II must be >= 1, got {ii}")
        self.config = config
        self.ii = ii
        self._fu: dict[tuple[int, FuClass], _Grid] = {}
        for cluster in config.clusters():
            for fu_class in FuClass:
                count = config.fu_count(cluster, fu_class)
                self._fu[(cluster, fu_class)] = _Grid(ii, count)
        self._bus = _Grid(ii, config.buses.count)

    # -- functional units -------------------------------------------------
    def fu_slot_free(self, cluster: int, fu_class: FuClass, cycle: int) -> bool:
        grid = self._fu[(cluster, fu_class)]
        return bool(grid.free_col(cycle % self.ii))

    def occupy_fu(
        self, cluster: int, fu_class: FuClass, cycle: int, owner: object
    ) -> int:
        """Claim a free unit; returns the unit index."""
        grid = self._fu[(cluster, fu_class)]
        row = cycle % self.ii
        free = grid.free_col(row)
        if not free:
            raise SchedulingError(
                f"no free {fu_class} unit in cluster {cluster} at row {row}"
            )
        grid.occupy(row, free[0], owner)
        return free[0]

    def release_fu(
        self, cluster: int, fu_class: FuClass, cycle: int, unit: int, owner: object
    ) -> None:
        self._fu[(cluster, fu_class)].release(cycle % self.ii, unit, owner)

    def fu_owner(
        self, cluster: int, fu_class: FuClass, row: int, unit: int
    ) -> object | None:
        return self._fu[(cluster, fu_class)].cells[row][unit]

    # -- buses --------------------------------------------------------------
    def bus_rows(self, start_cycle: int) -> list[int]:
        """The MRT rows a communication starting at *start_cycle* occupies."""
        lat = self.config.buses.latency
        return [(start_cycle + k) % self.ii for k in range(lat)]

    def bus_free(self, start_cycle: int) -> int | None:
        """A bus free for a transfer starting at *start_cycle*, else None.

        A transfer needs ``latbus`` consecutive rows on the *same* bus.  A
        transfer longer than II would collide with its own next-iteration
        instance, so it can never fit.
        """
        if self.config.buses.count == 0:
            return None
        if self.config.buses.latency > self.ii:
            return None
        rows = self.bus_rows(start_cycle)
        for bus in range(self.config.buses.count):
            if all(self._bus.cells[r][bus] is None for r in rows):
                return bus
        return None

    def occupy_bus(self, start_cycle: int, bus: int, owner: object) -> None:
        for r in self.bus_rows(start_cycle):
            self._bus.occupy(r, bus, owner)

    def release_bus(self, start_cycle: int, bus: int, owner: object) -> None:
        for r in self.bus_rows(start_cycle):
            self._bus.release(r, bus, owner)

    # -- statistics ----------------------------------------------------------
    def bus_utilisation(self) -> float:
        """Fraction of bus rows occupied (0.0 when the machine has no buses)."""
        return self._bus.utilisation()

    def fu_utilisation(self) -> float:
        cells = used = 0
        for grid in self._fu.values():
            cells += grid.rows * grid.cols
            used += sum(1 for row in grid.cells for c in row if c is not None)
        return used / cells if cells else 0.0
