"""Incremental register-pressure (MaxLive) tracking for placement search.

:func:`repro.core.lifetimes.cluster_pressures` rebuilds every live range
of the schedule from scratch; placement engines used to call it once per
*candidate cycle*, making it the hottest path in the package.  This module
maintains the same model incrementally on the live
:class:`~repro.core.schedule.ModuloSchedule`:

* the per-cluster pressure histogram (one counter per MRT row, plus a
  scalar for whole-II wraps) is kept up to date as placements commit;
* a tentative placement is evaluated as a *delta*: only the intervals the
  new node can affect — its own produced value, same-cluster producers it
  reads, and the communications its plan would add — are recomputed and
  overlaid on the committed histogram;
* committing a placement re-derives exactly those intervals and folds the
  difference into the histogram.

The interval semantics are identical to ``lifetimes._intervals`` (the two
are cross-checked by a property test after every commit); pressures are
therefore *exactly* equal to a from-scratch recomputation, not an
approximation — schedules are byte-identical with and without tracking.

The unit of bookkeeping is an *entry*: either the produced-value interval
of one node (``("p", node)``) or the stored-incoming-value interval of
one (communication, reader cluster) pair (``("i", (producer, bus, start),
reader)``).  A placement changes a small, statically enumerable set of
entries (:meth:`PressureTracker._changed_entries`), which is what makes
the delta evaluation sound:

* a produced interval ends at the last same-cluster read or communication
  start of that value — only a new same-cluster consumer or a new
  transfer of the value can move it;
* an incoming interval ends at the last late read in the reader cluster —
  only a new consumer in that cluster (or a brand-new transfer/reader)
  can move it;
* remote consumers never touch a producer interval (they read the
  communicated copy), so placements in other clusters are unaffected.
"""

from __future__ import annotations

from .comm import CommPlan, empty_plan
from .schedule import ModuloSchedule, ScheduledOp

#: An interval: (cluster, start, end) with end exclusive, end > start.
Interval = tuple[int, int, int]


class PressureTracker:
    """Exact incremental MaxLive per cluster for one live schedule."""

    def __init__(self, schedule: ModuloSchedule):
        self.schedule = schedule
        self.graph = schedule.graph
        self.ii = schedule.ii
        self.n_clusters = schedule.config.n_clusters
        self._bus_latency = schedule.config.buses.latency
        self._limit = schedule.config.regs_per_cluster
        #: Remainder histogram per cluster (one counter per MRT row).
        self._hist: list[list[int]] = [
            [0] * self.ii for _ in range(self.n_clusters)
        ]
        #: Whole-II wraps per cluster (cover every row uniformly).
        self._base: list[int] = [0] * self.n_clusters
        self._max: list[int] = [0] * self.n_clusters
        self._dirty: list[bool] = [False] * self.n_clusters
        self._entries: dict[tuple, Interval] = {}
        if schedule.ops or schedule.comms:
            self.rebuild()

    # ------------------------------------------------------------------
    # Entry recomputation (must mirror lifetimes._intervals exactly)
    # ------------------------------------------------------------------
    def _producer_interval(
        self, node: int, extra_starts: tuple[int, ...] | list[int] = ()
    ) -> Interval | None:
        """The produced-value live range of *node*, or None."""
        ops = self.schedule.ops
        placed = ops.get(node)
        if placed is None:
            return None
        op = self.graph.operation(node)
        if not op.writes_register:
            return None
        ii = self.ii
        written = placed.cycle + op.latency
        last_read = written  # the write occupies the register >= 1 cycle
        for dep in self.graph.flow_consumers(node):
            consumer = ops.get(dep.dst)
            if consumer is None or consumer.cluster != placed.cluster:
                continue  # remote consumers read the communicated copy
            read = consumer.cycle + ii * dep.distance
            if read > last_read:
                last_read = read
        for comm in self.schedule.comms_for(node):
            if comm.start_cycle > last_read:
                last_read = comm.start_cycle
        for start in extra_starts:
            if start > last_read:
                last_read = start
        return (placed.cluster, written, last_read + 1)

    def _incoming_interval(
        self, producer: int, start_cycle: int, reader: int
    ) -> Interval | None:
        """The stored-incoming-value range in *reader*'s file, or None."""
        ops = self.schedule.ops
        ii = self.ii
        arrival = start_cycle + self._bus_latency
        last_late_read: int | None = None
        for dep in self.graph.flow_consumers(producer):
            consumer = ops.get(dep.dst)
            if consumer is None or consumer.cluster != reader:
                continue
            read = consumer.cycle + ii * dep.distance
            if read > arrival and (last_late_read is None or read > last_late_read):
                last_late_read = read
        if last_late_read is None:
            return None  # bypassed: every read happens at arrival
        return (reader, arrival, last_late_read + 1)

    # ------------------------------------------------------------------
    # Histogram maintenance
    # ------------------------------------------------------------------
    def _apply(self, interval: Interval, sign: int) -> None:
        cluster, start, end = interval
        ii = self.ii
        fulls, rem = divmod(end - start, ii)
        self._base[cluster] += sign * fulls
        if rem:
            hist = self._hist[cluster]
            row = start % ii
            for _ in range(rem):
                hist[row] += sign
                row += 1
                if row == ii:
                    row = 0
        self._dirty[cluster] = True

    def _set(self, key: tuple, interval: Interval | None) -> None:
        old = self._entries.get(key)
        if old == interval:
            return
        if old is not None:
            self._apply(old, -1)
        if interval is not None:
            self._apply(interval, +1)
            self._entries[key] = interval
        else:
            del self._entries[key]

    def cluster_max(self, cluster: int) -> int:
        """Committed MaxLive of *cluster* (cached between commits)."""
        if self._dirty[cluster]:
            self._max[cluster] = self._base[cluster] + max(self._hist[cluster])
            self._dirty[cluster] = False
        return self._max[cluster]

    def pressures(self) -> dict[int, int]:
        """Committed MaxLive for every cluster (== ``cluster_pressures``)."""
        return {c: self.cluster_max(c) for c in range(self.n_clusters)}

    # ------------------------------------------------------------------
    # The affected-entry set of one placement
    # ------------------------------------------------------------------
    def _changed_entries(
        self, node: int, cluster: int, plan: CommPlan
    ) -> dict[tuple, Interval | None]:
        """Recompute every entry the placement can affect.

        Must be called with *node* present in ``schedule.ops``; plan
        transfers are overlaid (they are not committed yet).
        """
        graph = self.graph
        ops = self.schedule.ops
        extra_starts: dict[int, list[int]] = {}
        for t in plan.new_transfers:
            extra_starts.setdefault(t.producer, []).append(t.start_cycle)
        # Added readers reuse an existing (or same-plan) transfer: its
        # start cycle already bounds the producer interval, so they add
        # no extra start.

        changed: dict[tuple, Interval | None] = {}
        producers = {node}
        for dep in graph.flow_producers(node):
            placed = ops.get(dep.src)
            if placed is not None and placed.cluster == cluster:
                producers.add(dep.src)
        producers.update(extra_starts)
        for u in producers:
            changed[("p", u)] = self._producer_interval(
                u, extra_starts.get(u, ())
            )
        # Incoming values this node reads late in its cluster: committed
        # transfers of its producers that already deliver to `cluster`.
        for dep in graph.flow_producers(node):
            for comm in self.schedule.comms_for(dep.src):
                if cluster in comm.readers:
                    key = ("i", (comm.producer, comm.bus, comm.start_cycle), cluster)
                    changed[key] = self._incoming_interval(
                        comm.producer, comm.start_cycle, cluster
                    )
        # Transfers the plan would create, and readers it would add.
        for t in plan.new_transfers:
            key = ("i", (t.producer, t.bus, t.start_cycle), t.reader)
            changed[key] = self._incoming_interval(t.producer, t.start_cycle, t.reader)
        for a in plan.added_readers:
            e = a.existing
            key = ("i", (e.producer, e.bus, e.start_cycle), a.reader)
            changed[key] = self._incoming_interval(e.producer, e.start_cycle, a.reader)
        return changed

    # ------------------------------------------------------------------
    # Tentative evaluation
    # ------------------------------------------------------------------
    def probe(self, node: int, cluster: int, cycle: int, plan: CommPlan) -> dict[int, int]:
        """MaxLive of every cluster a tentative placement would touch.

        Returns ``{cluster: pressure}`` for *affected* clusters only;
        untouched clusters keep :meth:`cluster_max`.
        """
        ops = self.schedule.ops
        ops[node] = ScheduledOp(node, cycle, cluster, fu_index=-1)
        try:
            changed = self._changed_entries(node, cluster, plan)
        finally:
            del ops[node]

        deltas: dict[int, list[tuple[int, int, int]]] = {}
        for key, new_iv in changed.items():
            old_iv = self._entries.get(key)
            if old_iv == new_iv:
                continue
            if old_iv is not None:
                deltas.setdefault(old_iv[0], []).append((old_iv[1], old_iv[2], -1))
            if new_iv is not None:
                deltas.setdefault(new_iv[0], []).append((new_iv[1], new_iv[2], +1))

        ii = self.ii
        result: dict[int, int] = {}
        for c, intervals in deltas.items():
            base = self._base[c]
            diff = [0] * ii
            for start, end, sign in intervals:
                fulls, rem = divmod(end - start, ii)
                base += sign * fulls
                row = start % ii
                for _ in range(rem):
                    diff[row] += sign
                    row += 1
                    if row == ii:
                        row = 0
            hist = self._hist[c]
            result[c] = base + max(
                h + d for h, d in zip(hist, diff)
            )
        return result

    def placement_fits(self, node: int, cluster: int, cycle: int, plan: CommPlan) -> bool:
        """Would every cluster still fit its register file?"""
        limit = self._limit
        touched = self.probe(node, cluster, cycle, plan)
        for pressure in touched.values():
            if pressure > limit:
                return False
        for c in range(self.n_clusters):
            if c not in touched and self.cluster_max(c) > limit:
                return False
        return True

    def placement_pressure(self, node: int, cluster: int, cycle: int, plan: CommPlan) -> int:
        """MaxLive of *cluster* if the placement were committed."""
        touched = self.probe(node, cluster, cycle, plan)
        return touched.get(cluster, self.cluster_max(cluster))

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, node: int, cluster: int, plan: CommPlan) -> None:
        """Fold a just-committed placement into the histograms.

        Call *after* the engine has placed the node and registered the
        plan's communications on the schedule (the recomputation reads
        the committed state, so plan overlays are no longer needed).
        """
        changed = self._changed_entries(node, cluster, empty_plan())
        # _changed_entries overlays nothing here, but must still visit the
        # plan's entries — enumerate them from the committed comms.
        for t in plan.new_transfers:
            changed[("p", t.producer)] = self._producer_interval(t.producer)
            key = ("i", (t.producer, t.bus, t.start_cycle), t.reader)
            changed[key] = self._incoming_interval(t.producer, t.start_cycle, t.reader)
        for a in plan.added_readers:
            e = a.existing
            key = ("i", (e.producer, e.bus, e.start_cycle), a.reader)
            changed[key] = self._incoming_interval(e.producer, e.start_cycle, a.reader)
        for key, interval in changed.items():
            self._set(key, interval)

    # ------------------------------------------------------------------
    # Full rebuild (initialisation and the backtrack escape hatch)
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Re-derive every entry from the schedule (O(schedule) fallback).

        Engines start from empty schedules and commit monotonically; a
        scheduler that *removes* placements (backtracking) must call this
        after mutating the schedule — per-entry invalidation of a removal
        is not supported.
        """
        for c in range(self.n_clusters):
            self._hist[c] = [0] * self.ii
            self._base[c] = 0
            self._dirty[c] = True
        self._entries = {}
        sched = self.schedule
        for node in sched.ops:
            self._set(("p", node), self._producer_interval(node))
        for comm in sched.comms:
            for reader in comm.readers:
                key = ("i", (comm.producer, comm.bus, comm.start_cycle), reader)
                self._set(
                    key, self._incoming_interval(comm.producer, comm.start_cycle, reader)
                )
