"""Modulo schedule representation.

A :class:`ModuloSchedule` records, for one dependence graph on one machine
configuration:

* the initiation interval II;
* for every operation: its absolute cycle (stage = cycle // II), cluster
  and functional-unit index;
* every inter-cluster communication: producer node, source cluster, bus,
  absolute start cycle and the set of reading clusters.

Timing conventions (shared with the verifier and all schedulers):

* an operation scheduled at cycle ``s`` reads its inputs at ``s`` and its
  result is ready at ``s + latency``;
* a same-cluster dependence (u -> v, lat, d) requires
  ``s(v) + II*d >= s(u) + lat``;
* a cross-cluster flow dependence requires a communication ``c`` of u's
  value with ``start(c) >= s(u) + lat(u)`` and
  ``s(v) + II*d >= start(c) + latbus``, with v's cluster among the readers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one operation."""

    node: int
    cycle: int
    cluster: int
    fu_index: int

    def stage(self, ii: int) -> int:
        return self.cycle // ii

    def row(self, ii: int) -> int:
        return self.cycle % ii


@dataclass(frozen=True)
class Communication:
    """One bus transfer of a produced value.

    The transfer occupies ``bus`` from ``start_cycle`` for the bus latency;
    any cluster in ``readers`` consumes the value at
    ``start_cycle + latbus`` or later (the incoming-value register plus the
    local register file hold it from then on).
    """

    producer: int
    src_cluster: int
    bus: int
    start_cycle: int
    readers: frozenset[int] = frozenset()

    def arrival(self, bus_latency: int) -> int:
        return self.start_cycle + bus_latency

    def with_reader(self, cluster: int) -> "Communication":
        return replace(self, readers=self.readers | {cluster})


@dataclass
class FailureLog:
    """Why placements failed, per II attempt (drives LimitedByBus)."""

    no_fu: int = 0
    no_bus: int = 0
    register_pressure: int = 0
    dependence_window: int = 0

    @property
    def total(self) -> int:
        return self.no_fu + self.no_bus + self.register_pressure + self.dependence_window

    def dominated_by_bus(self) -> bool:
        """Bus failures were the leading cause of this attempt's failure."""
        return self.no_bus > 0 and self.no_bus >= max(
            self.no_fu, self.register_pressure, self.dependence_window
        )


class ModuloSchedule:
    """A complete modulo schedule (see module docstring for conventions)."""

    def __init__(
        self,
        graph: DependenceGraph,
        config: MachineConfig,
        ii: int,
        *,
        mii: int | None = None,
    ):
        self.graph = graph
        self.config = config
        self.ii = ii
        #: The MII the scheduler started from (for bus-limited detection).
        self.mii = mii if mii is not None else ii
        self.ops: dict[int, ScheduledOp] = {}
        self.comms: list[Communication] = []
        #: By-producer view of ``comms`` (placement engines query a
        #: producer's transfers in their inner loops; keep in sync via
        #: add_comm / replace_comm / _rebuild_comm_index).
        self._comms_by_producer: dict[int, list[Communication]] = {}
        #: Failure log of the II attempts before this one succeeded.
        self.attempt_failures: list[FailureLog] = []
        #: Bus rows occupied / total (filled by the scheduler).
        self.bus_utilisation: float = 0.0

    # ------------------------------------------------------------------
    def place(self, op: ScheduledOp) -> None:
        if op.node in self.ops:
            raise SchedulingError(f"node {op.node} scheduled twice")
        self.ops[op.node] = op

    def cluster_of(self, node: int) -> int:
        return self.ops[node].cluster

    def cycle_of(self, node: int) -> int:
        return self.ops[node].cycle

    def is_scheduled(self, node: int) -> bool:
        return node in self.ops

    def nodes_in_cluster(self, cluster: int) -> list[int]:
        return [n for n, op in self.ops.items() if op.cluster == cluster]

    # ------------------------------------------------------------------
    def comms_for(self, producer: int) -> list[Communication]:
        return self._comms_by_producer.get(producer, [])

    def add_comm(self, comm: Communication) -> None:
        self.comms.append(comm)
        self._comms_by_producer.setdefault(comm.producer, []).append(comm)

    def replace_comm(self, old: Communication, new: Communication) -> None:
        idx = self.comms.index(old)
        self.comms[idx] = new
        per = self._comms_by_producer[old.producer]
        per[per.index(old)] = new

    def _rebuild_comm_index(self) -> None:
        """Re-derive the by-producer view after a bulk ``comms`` rewrite."""
        self._comms_by_producer = {}
        for comm in self.comms:
            self._comms_by_producer.setdefault(comm.producer, []).append(comm)

    # ------------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        return len(self.ops) == len(self.graph)

    @property
    def schedule_length(self) -> int:
        """Last cycle with activity, +1 (communications included)."""
        last = 0
        for op in self.ops.values():
            last = max(last, op.cycle + 1)
        lat = self.config.buses.latency
        for c in self.comms:
            last = max(last, c.start_cycle + lat)
        return last

    @property
    def stage_count(self) -> int:
        """SC: number of overlapped iterations (prologue/epilogue depth).

        ``floor(max cycle / II) + 1`` over operations; communications are
        machine actions tied to the producing stage and do not add stages
        beyond their own cycle.
        """
        if not self.ops:
            return 1
        last = max(op.cycle for op in self.ops.values())
        lat = self.config.buses.latency
        for c in self.comms:
            last = max(last, c.start_cycle + lat - 1)
        return last // self.ii + 1

    @property
    def communication_count(self) -> int:
        return len(self.comms)

    @property
    def was_bus_limited(self) -> bool:
        """Paper's ``LimitedByBus``: did communications force II above MII?

        True when II exceeded MII and bus-slot failures contributed to the
        failed attempts, or the final schedule saturates the buses.  Note
        the scheduler may *avoid* buses entirely by under-using clusters —
        that still counts: the failed attempts that tried to spread across
        clusters show the communication bottleneck.  The Figure 6
        bandwidth estimate remains the actual gate for unrolling.
        """
        if not self.config.is_clustered or self.ii <= self.mii:
            return False
        if any(log.no_bus > 0 for log in self.attempt_failures):
            return True
        return self.bus_utilisation >= 0.999

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"ModuloSchedule of {self.graph.name!r} on {self.config.name!r}: "
            f"II={self.ii} (MII={self.mii}), SC={self.stage_count}, "
            f"{len(self.comms)} communication(s)"
        ]
        for node in sorted(self.ops):
            op = self.ops[node]
            lines.append(
                f"  {self.graph.operation(node)} -> cycle {op.cycle} "
                f"(row {op.row(self.ii)}, stage {op.stage(self.ii)}), "
                f"cluster {op.cluster}, unit {op.fu_index}"
            )
        for c in self.comms:
            lines.append(
                f"  comm: node {c.producer} cluster {c.src_cluster} -> "
                f"{sorted(c.readers)} via bus {c.bus} @ cycle {c.start_cycle}"
            )
        return "\n".join(lines)
