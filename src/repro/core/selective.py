"""Loop unrolling policies, including the paper's selective algorithm (Fig. 6).

``UnrollPolicy`` names the three evaluation scenarios of Section 6.2:

* ``NONE`` — schedule the loop as written;
* ``ALL`` — unroll every loop by the cluster count before scheduling;
* ``SELECTIVE`` — the paper's Figure 6: schedule first; only if the result
  is *bus limited* estimate whether the unrolled loop's communications fit
  in the available bus bandwidth, and re-schedule the unrolled graph when
  they do.

The bandwidth estimate: unrolling by U = n_clusters and placing one
iteration per cluster leaves ``NDepsNotMult(G) * U`` communications per
unrolled kernel iteration (loop-carried value deps whose distance is not a
multiple of U), costing ``cycneeded = ceil(comneeded / nbuses) * latbus``
bus cycles.  The paper's pseudo-code compares that against ``II(sched)``
(the non-unrolled II) while the prose asks that it "does not increase the
initiation interval of the unrolled loop"; :class:`SelectiveRule` offers
both readings (``MII_UNROLLED`` — the prose, our default — and
``LITERAL``), and an ablation benchmark quantifies the gap.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from ..ir.unroll import count_cross_copy_deps, unroll_graph
from .base import SchedulerBase
from .mii import mii as compute_mii
from .schedule import ModuloSchedule


class UnrollPolicy(enum.Enum):
    """The three scenarios of the paper's Figure 8."""

    NONE = "no-unrolling"
    ALL = "unroll-all"
    SELECTIVE = "selective-unrolling"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SelectiveRule(enum.Enum):
    """Which threshold the Figure 6 test compares ``cycneeded`` against."""

    #: the prose reading: fits iff cycneeded <= MII of the unrolled graph
    MII_UNROLLED = "mii-unrolled"
    #: the pseudo-code reading: fits iff cycneeded < II of the original schedule
    LITERAL = "literal"


@dataclass
class ScheduledLoopResult:
    """A schedule together with how the loop was transformed to get it."""

    schedule: ModuloSchedule
    unroll_factor: int
    policy: UnrollPolicy
    #: The original (non-unrolled) schedule, when one was produced.
    base_schedule: ModuloSchedule | None = None

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def stage_count(self) -> int:
        return self.schedule.stage_count

    @property
    def ii_per_original_iteration(self) -> float:
        """II divided by the unroll factor — cycles per *source* iteration."""
        return self.schedule.ii / self.unroll_factor


def selective_unroll_decision(
    graph: DependenceGraph,
    config: MachineConfig,
    schedule: ModuloSchedule,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
) -> bool:
    """The Figure 6 predicate: should this bus-limited loop be unrolled?

    Assumes *schedule* is the non-unrolled schedule and was bus limited.
    """
    if not config.is_clustered:
        return False
    ufactor = config.n_clusters
    comneeded = count_cross_copy_deps(graph, ufactor) * ufactor
    cycneeded = math.ceil(comneeded / config.buses.count) * config.buses.latency
    if rule is SelectiveRule.LITERAL:
        return cycneeded < schedule.ii
    unrolled_mii = compute_mii(unroll_graph(graph, ufactor), config)
    return cycneeded <= unrolled_mii


def schedule_with_policy(
    graph: DependenceGraph,
    scheduler: SchedulerBase,
    policy: UnrollPolicy,
    *,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
) -> ScheduledLoopResult:
    """Schedule *graph* under an unrolling policy (Figure 6 for SELECTIVE)."""
    config = scheduler.config
    ufactor = config.n_clusters

    if policy is UnrollPolicy.NONE or not config.is_clustered:
        sched = scheduler.schedule(graph)
        return ScheduledLoopResult(sched, 1, policy)

    if policy is UnrollPolicy.ALL:
        # A compiler that cannot schedule the unrolled body (register
        # pressure, no spill code) keeps the original loop.
        try:
            sched = scheduler.schedule(unroll_graph(graph, ufactor))
            return ScheduledLoopResult(sched, ufactor, policy)
        except SchedulingError:
            base = scheduler.schedule(graph)
            return ScheduledLoopResult(base, 1, policy, base_schedule=base)

    # SELECTIVE: Figure 6.
    base = scheduler.schedule(graph)
    if not base.was_bus_limited:
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    if not selective_unroll_decision(graph, config, base, rule):
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    try:
        unrolled = scheduler.schedule(unroll_graph(graph, ufactor))
    except SchedulingError:
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    return ScheduledLoopResult(unrolled, ufactor, policy, base_schedule=base)
