"""Loop unrolling policies, including the paper's selective algorithm (Fig. 6).

``UnrollPolicy`` names the three evaluation scenarios of Section 6.2:

* ``NONE`` — schedule the loop as written;
* ``ALL`` — unroll every loop by the cluster count before scheduling;
* ``SELECTIVE`` — the paper's Figure 6: schedule first; only if the result
  is *bus limited* estimate whether the unrolled loop's communications fit
  in the available bus bandwidth, and re-schedule the unrolled graph when
  they do.

The bandwidth estimate: unrolling by U = n_clusters and placing one
iteration per cluster leaves ``NDepsNotMult(G) * U`` communications per
unrolled kernel iteration (loop-carried value deps whose distance is not a
multiple of U), costing ``cycneeded = ceil(comneeded / nbuses) * latbus``
bus cycles.  The paper's pseudo-code compares that against ``II(sched)``
(the non-unrolled II) while the prose asks that it "does not increase the
initiation interval of the unrolled loop"; :class:`SelectiveRule` offers
both readings (``MII_UNROLLED`` — the prose, our default — and
``LITERAL``), and an ablation benchmark quantifies the gap.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from ..ir.unroll import count_cross_copy_deps, unroll_graph
from .base import SchedulerBase
from .mii import mii as compute_mii
from .schedule import ModuloSchedule


class UnrollPolicy(enum.Enum):
    """The three scenarios of the paper's Figure 8.

    The ``value`` strings are stable identifiers: they appear in
    scenario points, cache keys and rendered tables.
    """

    #: Schedule the loop exactly as written.
    NONE = "no-unrolling"
    #: Unroll every loop by the cluster count before scheduling.
    ALL = "unroll-all"
    #: The paper's Figure 6: unroll only bus-limited loops whose
    #: unrolled communications fit the bus bandwidth.
    SELECTIVE = "selective-unrolling"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SelectiveRule(enum.Enum):
    """Which threshold the Figure 6 test compares ``cycneeded`` against."""

    #: the prose reading: fits iff cycneeded <= MII of the unrolled graph
    MII_UNROLLED = "mii-unrolled"
    #: the pseudo-code reading: fits iff cycneeded < II of the original schedule
    LITERAL = "literal"


@dataclass
class ScheduledLoopResult:
    """A schedule together with how the loop was transformed to get it."""

    schedule: ModuloSchedule
    unroll_factor: int
    policy: UnrollPolicy
    #: The original (non-unrolled) schedule, when one was produced.
    base_schedule: ModuloSchedule | None = None

    @property
    def ii(self) -> int:
        """Initiation interval of the emitted schedule (unrolled body)."""
        return self.schedule.ii

    @property
    def stage_count(self) -> int:
        """SC of the emitted schedule (prologue/epilogue depth)."""
        return self.schedule.stage_count

    @property
    def ii_per_original_iteration(self) -> float:
        """II divided by the unroll factor — cycles per *source* iteration."""
        return self.schedule.ii / self.unroll_factor


def selective_unroll_decision(
    graph: DependenceGraph,
    config: MachineConfig,
    schedule: ModuloSchedule,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
) -> bool:
    """The Figure 6 predicate: should this bus-limited loop be unrolled?

    Assumes *schedule* is the non-unrolled schedule and was bus limited.

    Parameters
    ----------
    graph:
        The original (non-unrolled) dependence graph.
    config:
        The clustered machine; unified machines always return ``False``.
    schedule:
        The loop's non-unrolled schedule (supplies II for ``LITERAL``).
    rule:
        Which reading of the paper's test to apply (see
        :class:`SelectiveRule`).

    Returns
    -------
    bool
        True when the estimated post-unroll communication demand fits
        the bus bandwidth, i.e. unrolling is predicted to pay off.
    """
    if not config.is_clustered:
        return False
    ufactor = config.n_clusters
    comneeded = count_cross_copy_deps(graph, ufactor) * ufactor
    cycneeded = math.ceil(comneeded / config.buses.count) * config.buses.latency
    if rule is SelectiveRule.LITERAL:
        return cycneeded < schedule.ii
    unrolled_mii = compute_mii(unroll_graph(graph, ufactor), config)
    return cycneeded <= unrolled_mii


def schedule_with_policy(
    graph: DependenceGraph,
    scheduler: SchedulerBase,
    policy: UnrollPolicy,
    *,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
) -> ScheduledLoopResult:
    """Schedule *graph* under an unrolling policy (Figure 6 for SELECTIVE).

    Parameters
    ----------
    graph:
        The loop body to schedule (one source iteration).
    scheduler:
        A bound :class:`~repro.core.base.SchedulerBase`; its machine
        configuration supplies the unroll factor (the cluster count).
    policy:
        Which of the paper's three scenarios to apply.
    rule:
        The :class:`SelectiveRule` used by the SELECTIVE decision test.

    Returns
    -------
    ScheduledLoopResult
        The emitted schedule, the unroll factor actually applied (1 when
        unrolling was skipped, rejected or failed), and — for ALL and
        SELECTIVE — the non-unrolled base schedule when one was built.

    Raises
    ------
    SchedulingError
        Only when even the non-unrolled loop cannot be scheduled;
        failures of the *unrolled* body fall back to the base schedule
        silently (the paper's compiler keeps the original loop).
    """
    config = scheduler.config
    ufactor = config.n_clusters

    if policy is UnrollPolicy.NONE or not config.is_clustered:
        sched = scheduler.schedule(graph)
        return ScheduledLoopResult(sched, 1, policy)

    if policy is UnrollPolicy.ALL:
        # A compiler that cannot schedule the unrolled body (register
        # pressure, no spill code) keeps the original loop.
        try:
            sched = scheduler.schedule(unroll_graph(graph, ufactor))
            return ScheduledLoopResult(sched, ufactor, policy)
        except SchedulingError:
            base = scheduler.schedule(graph)
            return ScheduledLoopResult(base, 1, policy, base_schedule=base)

    # SELECTIVE: Figure 6.
    base = scheduler.schedule(graph)
    if not base.was_bus_limited:
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    if not selective_unroll_decision(graph, config, base, rule):
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    try:
        unrolled = scheduler.schedule(unroll_graph(graph, ufactor))
    except SchedulingError:
        return ScheduledLoopResult(base, 1, policy, base_schedule=base)
    return ScheduledLoopResult(unrolled, ufactor, policy, base_schedule=base)
