"""Swing Modulo Scheduling (SMS) node ordering (Llosa et al., PACT'96).

The paper's BSA uses the SMS ordering (Section 5.1): "This ordering gives
priority to the nodes in recurrences with the highest RecMII ... the
resulting order ensures that a node in a particular position of the list
only has predecessors or successors before it (except in the case of
starting a new subgraph).  Moreover, nodes that are neighbours in the graph
are placed close together".

The ordering works on *sets*: recurrence SCCs sorted by decreasing RecMII
(each augmented with the nodes lying on paths between it and the previously
ordered nodes), followed by the remaining nodes.  Inside a set a
bidirectional sweep alternates between top-down passes (pick the node of
greatest *height* among the ready successors) and bottom-up passes (pick
the node of greatest *depth* among the ready predecessors), breaking ties
by lowest mobility.

Priorities derive from resource-free ASAP/ALAP times at II = MII, computed
by longest-path relaxation over edge weights ``latency - II * distance``
(valid because no positive cycle exists at II >= RecMII).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import GraphError
from ..ir.ddg import DependenceGraph
from ..obs.trace import PHASES
from .mii import rec_mii


@dataclass(frozen=True)
class NodeTiming:
    """Resource-free scheduling freedom of one node at a given II."""

    asap: int
    alap: int

    @property
    def mobility(self) -> int:
        return self.alap - self.asap


def compute_timings(graph: DependenceGraph, ii: int) -> dict[int, NodeTiming]:
    """ASAP/ALAP (ignoring resources) for every node at initiation interval *ii*.

    Requires ``ii >= RecMII`` — otherwise relaxation diverges on a positive
    cycle, which is reported as :class:`GraphError`.  Memoised per
    (graph, ii): the same graph is retried at the same II by different
    schedulers and machine configurations (timings are resource-free).
    """
    return graph.derived(("timings", ii), lambda: _compute_timings(graph, ii))


def _compute_timings(graph: DependenceGraph, ii: int) -> dict[int, NodeTiming]:
    nodes = graph.node_ids
    asap = {v: 0 for v in nodes}
    edges = [(d.src, d.dst, d.latency - ii * d.distance) for d in graph.edges]
    n = len(nodes)
    for round_idx in range(n + 1):
        changed = False
        for src, dst, w in edges:
            cand = asap[src] + w
            if cand > asap[dst]:
                asap[dst] = cand
                changed = True
        if not changed:
            break
    else:
        raise GraphError(
            f"ASAP relaxation diverged for {graph.name!r} at II={ii} "
            "(is II below RecMII?)"
        )

    horizon = max(asap.values(), default=0)
    alap = {v: horizon for v in nodes}
    for round_idx in range(n + 1):
        changed = False
        for src, dst, w in edges:
            cand = alap[dst] - w
            if cand < alap[src]:
                alap[src] = cand
                changed = True
        if not changed:
            break
    else:  # pragma: no cover - same divergence condition as above
        raise GraphError(f"ALAP relaxation diverged for {graph.name!r} at II={ii}")

    return {v: NodeTiming(asap[v], alap[v]) for v in nodes}


def recurrence_sets(graph: DependenceGraph) -> list[set[int]]:
    """Recurrence SCCs sorted by decreasing RecMII (then size, then min id).

    Only SCCs containing a cycle qualify (more than one node, or a
    self-loop).  Memoised per graph (shared — do not mutate the result).
    """
    return graph.derived("recurrence_sets", lambda: _recurrence_sets(graph))


def _recurrence_sets(graph: DependenceGraph) -> list[set[int]]:
    g = graph.to_networkx()
    sccs = []
    for comp in nx.strongly_connected_components(g):
        comp = set(comp)
        if len(comp) > 1 or any(
            dep.dst == next(iter(comp))
            for dep in graph.successors(next(iter(comp)))
        ):
            sccs.append(comp)
    scored = []
    for comp in sccs:
        sub = _subgraph(graph, comp)
        scored.append((rec_mii(sub), len(comp), comp))
    scored.sort(key=lambda item: (-item[0], -item[1], min(item[2])))
    return [comp for _, _, comp in scored]


def _subgraph(graph: DependenceGraph, nodes: set[int]) -> DependenceGraph:
    """Induced subgraph on *nodes*, with remapped dense ids."""
    sub = DependenceGraph(f"{graph.name}/scc", graph.catalog)
    remap = {}
    for node in sorted(nodes):
        op = graph.operation(node)
        remap[node] = sub.add_operation(op.opcode.name, op.tag)
    for dep in graph.edges:
        if dep.src in nodes and dep.dst in nodes:
            sub.add_dependence(
                remap[dep.src],
                remap[dep.dst],
                distance=dep.distance,
                kind=dep.kind,
                latency=dep.latency,
            )
    return sub


def _path_nodes(g: nx.DiGraph, sources: set[int], targets: set[int]) -> set[int]:
    """Nodes on some directed path from *sources* to *targets* (inclusive)."""
    reach_fwd: set[int] = set()
    for s in sources:
        reach_fwd.add(s)
        reach_fwd.update(nx.descendants(g, s))
    reach_bwd: set[int] = set()
    for t in targets:
        reach_bwd.add(t)
        reach_bwd.update(nx.ancestors(g, t))
    return reach_fwd & reach_bwd


def ordering_sets(graph: DependenceGraph) -> list[set[int]]:
    """The ordered partition of nodes the SMS sweep consumes.

    Recurrence sets by decreasing RecMII, each augmented with the nodes on
    paths linking it to the union of earlier sets; the remaining nodes
    follow one weakly-connected component at a time (by smallest node id).
    Keeping disconnected subgraphs in separate sets is what lets BSA's
    default-cluster rotation place them — in particular the copies of an
    unrolled loop — on different clusters (paper, Section 5.1 case (a)).
    """
    g = nx.DiGraph()
    g.add_nodes_from(graph.node_ids)
    for dep in graph.edges:
        g.add_edge(dep.src, dep.dst)

    sets: list[set[int]] = []
    placed: set[int] = set()
    for comp in recurrence_sets(graph):
        new = set(comp) - placed
        if not new:
            continue
        if placed:
            connectors = _path_nodes(g, placed, new) | _path_nodes(g, new, placed)
            new |= connectors - placed
        sets.append(new)
        placed |= new
    rest = set(graph.node_ids) - placed
    if rest:
        undirected = g.to_undirected(as_view=True).subgraph(rest)
        components = sorted(
            (set(c) for c in nx.connected_components(undirected)),
            key=min,
        )
        sets.extend(components)
    return sets


def sms_order(graph: DependenceGraph, ii: int | None = None) -> list[int]:
    """The SMS scheduling order of *graph*'s nodes.

    *ii* defaults to RecMII (priorities only need a feasible II; the
    resource component of MII does not change relative mobilities).
    Memoised per (graph, ii): the II search recomputes the order on every
    attempt, and it only depends on the graph (shared — do not mutate).
    """
    if PHASES.enabled:
        with PHASES.time("schedule.ordering"):
            return graph.derived(("sms_order", ii), lambda: _sms_order(graph, ii))
    return graph.derived(("sms_order", ii), lambda: _sms_order(graph, ii))


def _sms_order(graph: DependenceGraph, ii: int | None = None) -> list[int]:
    if len(graph) == 0:
        return []
    if ii is None:
        ii = rec_mii(graph)
    timing = compute_timings(graph, ii)
    height = {v: 0 for v in graph.node_ids}
    depth = {v: 0 for v in graph.node_ids}
    horizon = max(t.alap for t in timing.values())
    for v, t in timing.items():
        depth[v] = t.asap
        height[v] = horizon - t.alap

    succs: dict[int, set[int]] = {v: set() for v in graph.node_ids}
    preds: dict[int, set[int]] = {v: set() for v in graph.node_ids}
    for dep in graph.edges:
        if dep.src != dep.dst:
            succs[dep.src].add(dep.dst)
            preds[dep.dst].add(dep.src)

    order: list[int] = []
    ordered: set[int] = set()

    def pick(candidates: set[int], key_metric: dict[int, int]) -> int:
        return min(
            candidates,
            key=lambda v: (-key_metric[v], timing[v].mobility, v),
        )

    for node_set in ordering_sets(graph):
        remaining = set(node_set) - ordered
        while remaining:
            pred_ready = {
                v for v in remaining if succs[v] & ordered
            }  # predecessors of already-ordered nodes
            succ_ready = {
                v for v in remaining if preds[v] & ordered
            }  # successors of already-ordered nodes
            if succ_ready:
                direction = "top-down"
                ready = succ_ready
            elif pred_ready:
                direction = "bottom-up"
                ready = pred_ready
            else:
                # New subgraph: seed with a single most-critical source;
                # the alternating waves pull the rest of the component in
                # through neighbour relations, so only this seed counts as
                # "starting a new subgraph" for BSA's cluster rotation.
                direction = "top-down"
                sources = {v for v in remaining if not (preds[v] & remaining)}
                if not sources:  # pure cycle
                    sources = set(remaining)
                ready = {pick(sources, height)}
            while ready:
                if direction == "top-down":
                    v = pick(ready, height)
                else:
                    v = pick(ready, depth)
                order.append(v)
                ordered.add(v)
                remaining.discard(v)
                if direction == "top-down":
                    ready = (ready | (succs[v] & remaining)) - ordered
                else:
                    ready = (ready | (preds[v] & remaining)) - ordered
                ready &= remaining
            # Swap sweep direction for the next wave inside this set.
    return order


def topological_order(graph: DependenceGraph) -> list[int]:
    """Plain topological order on zero-distance edges (ablation baseline).

    Memoised per graph (shared — do not mutate the result)."""

    def build() -> list[int]:
        g = nx.DiGraph()
        g.add_nodes_from(graph.node_ids)
        for dep in graph.edges:
            if dep.distance == 0:
                g.add_edge(dep.src, dep.dst)
        return list(nx.lexicographical_topological_sort(g))

    if PHASES.enabled:
        with PHASES.time("schedule.ordering"):
            return graph.derived("topological_order", build)
    return graph.derived("topological_order", build)
