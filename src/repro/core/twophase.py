"""Two-phase comparator: cluster assignment first, scheduling later.

Models the approach of Nystrom & Eichenberger (MICRO'98), which the paper
uses as its baseline (Section 2, Figure 4): a partitioning phase assigns
every node to a cluster *before any cycle information exists*, then an SMS
scheduling phase places nodes at cycles while respecting the fixed
assignment, inserting communications where assigned clusters differ.  If
scheduling fails at an II, both phases re-run at II + 1.

The partitioner keeps the two properties the original emphasises:

* *recurrence awareness* — an entire recurrence (SCC) is assigned as one
  unit, because splitting it would put bus latency on the recurrence cycle
  and inflate RecMII;
* *no aggressive filling* — each cluster's per-class estimated load is
  capped at ``II * units`` with the current II, so the partition never
  plans an over-subscribed cluster.

Super-nodes (SCCs, then remaining singletons in SMS order) are assigned
greedily to the cluster minimising ``new cross-cluster value edges``,
breaking ties towards the least-loaded cluster — a faithful-in-spirit
stand-in for the original's slack-driven heuristics (see DESIGN.md,
substitutions table).
"""

from __future__ import annotations

from ..arch.cluster import MachineConfig
from ..errors import ConfigError
from ..ir.ddg import DependenceGraph
from ..ir.operation import FuClass
from .base import SchedulerBase
from .engine import Placement, PlacementEngine
from .sms import recurrence_sets, sms_order


def partition_graph(
    graph: DependenceGraph, config: MachineConfig, ii: int
) -> dict[int, int]:
    """Assign every node to a cluster before scheduling.

    Returns a complete node -> cluster map.  Capacity is soft: when every
    cluster would exceed its cap the least-loaded cluster is used anyway
    (the scheduler will discover the real feasibility).
    """
    n_clusters = config.n_clusters
    units = {
        c: {fc: config.fu_count(c, fc) for fc in FuClass}
        for c in range(n_clusters)
    }

    # Super-nodes: recurrences first (already sorted by criticality),
    # then remaining nodes one by one in SMS order.
    super_nodes: list[list[int]] = [sorted(s) for s in recurrence_sets(graph)]
    in_scc = {n for s in super_nodes for n in s}
    super_nodes.extend([n] for n in sms_order(graph) if n not in in_scc)

    load: list[dict[FuClass, int]] = [
        {fc: 0 for fc in FuClass} for _ in range(n_clusters)
    ]
    assignment: dict[int, int] = {}

    def cross_edges(nodes: list[int], cluster: int) -> int:
        count = 0
        for node in nodes:
            for dep in graph.flow_consumers(node):
                other = assignment.get(dep.dst)
                if other is not None and other != cluster and dep.dst not in nodes:
                    count += 1
            for dep in graph.flow_producers(node):
                other = assignment.get(dep.src)
                if other is not None and other != cluster and dep.src not in nodes:
                    count += 1
        return count

    def over_capacity(nodes: list[int], cluster: int) -> int:
        overflow = 0
        demand: dict[FuClass, int] = {fc: 0 for fc in FuClass}
        for node in nodes:
            demand[graph.operation(node).fu_class] += 1
        for fc in FuClass:
            cap = ii * units[cluster][fc]
            total = load[cluster][fc] + demand[fc]
            if total > cap:
                overflow += total - cap
        return overflow

    def load_metric(cluster: int) -> int:
        return sum(load[cluster].values())

    for nodes in super_nodes:
        best_cluster = None
        best_key: tuple[int, int, int] | None = None
        for cluster in range(n_clusters):
            key = (
                over_capacity(nodes, cluster),
                cross_edges(nodes, cluster),
                load_metric(cluster),
            )
            if best_key is None or key < best_key:
                best_key = key
                best_cluster = cluster
        assert best_cluster is not None
        for node in nodes:
            assignment[node] = best_cluster
            load[best_cluster][graph.operation(node).fu_class] += 1
    return assignment


class TwoPhaseScheduler(SchedulerBase):
    """Partition-then-schedule modulo scheduler (N&E-style baseline)."""

    name = "two-phase"

    def __init__(self, config: MachineConfig, *, max_ii: int | None = None):
        super().__init__(config, max_ii=max_ii)
        if config.n_clusters > 1 and config.buses.count == 0:
            raise ConfigError("clustered machine without buses cannot communicate")

    def _place_all(self, engine: PlacementEngine) -> bool:
        graph = engine.graph
        assignment = partition_graph(graph, self.config, engine.ii)
        for node in sms_order(graph):
            placement = engine.find_placement(node, assignment[node])
            if not isinstance(placement, Placement):
                return False
            engine.commit(placement)
        return True
