"""Swing modulo scheduling for the unified (single-cluster) machine.

This is the paper's baseline substrate: the SMS instruction scheduler
(Llosa et al.) used both for the hypothetical unified architecture and as
the per-cluster scheduling discipline inside the clustered algorithms.  On
a one-cluster machine no communications ever arise, so the placement
engine reduces to the classic SMS scan.
"""

from __future__ import annotations

from ..arch.cluster import MachineConfig
from ..errors import ConfigError
from .base import SchedulerBase
from .engine import Placement, PlacementEngine
from .sms import sms_order


class UnifiedScheduler(SchedulerBase):
    """SMS on a single-cluster machine."""

    name = "unified-sms"

    def __init__(self, config: MachineConfig, *, max_ii: int | None = None):
        if config.is_clustered:
            raise ConfigError(
                f"UnifiedScheduler needs a 1-cluster machine, got {config.name!r} "
                f"with {config.n_clusters} clusters"
            )
        super().__init__(config, max_ii=max_ii)

    def _place_all(self, engine: PlacementEngine) -> bool:
        for node in sms_order(engine.graph):
            placement = engine.find_placement(node, cluster=0)
            if not isinstance(placement, Placement):
                return False
            engine.commit(placement)
        return True
