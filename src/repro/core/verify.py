"""Independent correctness checking of modulo schedules.

``verify_schedule`` re-derives every constraint from the graph, the machine
description and the timing conventions, sharing no code with the placement
engine beyond the data classes.  Every scheduler output in the test suite
passes through it, and the property-based tests hammer it with random
graphs and machines.

Checked invariants:

1.  every operation scheduled exactly once, on a cluster that exists, on a
    functional unit of the right class and within its index range;
2.  no two operations share a (cluster, FU class, unit, row) cell;
3.  no two communications overlap on the same bus (modulo II), and no
    communication is longer than II (it would collide with itself);
4.  every dependence is satisfied:
    same-cluster or non-value edges by ``s(v) + II*d >= s(u) + lat``;
    cross-cluster flow edges additionally by some communication of the
    producer readable by the consumer's cluster in time;
5.  every communication starts at or after its producer's result;
6.  per-cluster MaxLive fits the register file;
7.  all cycles non-negative.
"""

from __future__ import annotations

from ..errors import VerificationError
from ..ir.operation import FuClass
from .lifetimes import cluster_pressures
from .schedule import ModuloSchedule


def verify_schedule(schedule: ModuloSchedule) -> None:
    """Raise :class:`VerificationError` on the first violated invariant."""
    graph = schedule.graph
    config = schedule.config
    ii = schedule.ii
    latbus = config.buses.latency

    # (1) completeness and placement sanity
    if set(schedule.ops) != set(graph.node_ids):
        missing = set(graph.node_ids) - set(schedule.ops)
        extra = set(schedule.ops) - set(graph.node_ids)
        raise VerificationError(
            f"schedule incomplete: missing {sorted(missing)}, alien {sorted(extra)}"
        )
    for node, placed in schedule.ops.items():
        op = graph.operation(node)
        if not 0 <= placed.cluster < config.n_clusters:
            raise VerificationError(f"node {node}: cluster {placed.cluster} out of range")
        n_units = config.fu_count(placed.cluster, op.fu_class)
        if not 0 <= placed.fu_index < n_units:
            raise VerificationError(
                f"node {node}: unit {placed.fu_index} out of range for "
                f"{op.fu_class} (cluster has {n_units})"
            )
        if placed.cycle < 0:
            raise VerificationError(f"node {node}: negative cycle {placed.cycle}")

    # (2) functional-unit conflicts
    seen: dict[tuple[int, FuClass, int, int], int] = {}
    for node, placed in schedule.ops.items():
        op = graph.operation(node)
        key = (placed.cluster, op.fu_class, placed.fu_index, placed.cycle % ii)
        if key in seen:
            raise VerificationError(
                f"FU conflict: nodes {seen[key]} and {node} share "
                f"cluster {key[0]} {key[1]} unit {key[2]} row {key[3]}"
            )
        seen[key] = node

    # (3) bus conflicts
    bus_rows: dict[tuple[int, int], object] = {}
    for comm in schedule.comms:
        if not 0 <= comm.bus < config.buses.count:
            raise VerificationError(f"communication on nonexistent bus {comm.bus}")
        if latbus > ii:
            raise VerificationError(
                f"bus latency {latbus} exceeds II {ii}: transfer collides with itself"
            )
        if comm.start_cycle < 0:
            raise VerificationError(f"communication at negative cycle {comm.start_cycle}")
        for k in range(latbus):
            key = (comm.bus, (comm.start_cycle + k) % ii)
            if key in bus_rows and bus_rows[key] is not comm:
                raise VerificationError(
                    f"bus conflict on bus {comm.bus} row {key[1]}: "
                    f"{bus_rows[key]} vs {comm}"
                )
            bus_rows[key] = comm

    # (5) communications start after production, from the producer's cluster
    for comm in schedule.comms:
        if comm.producer not in schedule.ops:
            raise VerificationError(f"communication of unscheduled node {comm.producer}")
        producer = schedule.ops[comm.producer]
        op = graph.operation(comm.producer)
        if not op.writes_register:
            raise VerificationError(
                f"communication of non-value-producing node {comm.producer}"
            )
        if comm.src_cluster != producer.cluster:
            raise VerificationError(
                f"communication of node {comm.producer} claims source cluster "
                f"{comm.src_cluster}, but the node runs on {producer.cluster}"
            )
        if comm.start_cycle < producer.cycle + op.latency:
            raise VerificationError(
                f"communication of node {comm.producer} starts at "
                f"{comm.start_cycle}, before the result at "
                f"{producer.cycle + op.latency}"
            )

    # (4) dependences
    for dep in graph.edges:
        src = schedule.ops[dep.src]
        dst = schedule.ops[dep.dst]
        consume = dst.cycle + ii * dep.distance
        if consume < src.cycle + dep.latency:
            raise VerificationError(
                f"dependence {dep} violated: consume at {consume}, "
                f"ready at {src.cycle + dep.latency}"
            )
        if dep.moves_value and src.cluster != dst.cluster:
            ok = any(
                comm.producer == dep.src
                and dst.cluster in comm.readers
                and comm.arrival(latbus) <= consume
                for comm in schedule.comms
            )
            if not ok:
                raise VerificationError(
                    f"cross-cluster dependence {dep} has no communication "
                    f"arriving in cluster {dst.cluster} by cycle {consume}"
                )

    # (6) register pressure
    limit = config.regs_per_cluster
    for cluster, pressure in cluster_pressures(schedule).items():
        if pressure > limit:
            raise VerificationError(
                f"cluster {cluster} needs {pressure} registers, file has {limit}"
            )
