"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """A dependence graph is malformed (unknown node, bad edge, ...)."""


class ConfigError(ReproError):
    """A machine configuration is inconsistent or unsupported."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule within its II budget."""

    def __init__(self, message: str, *, ii_tried: int | None = None):
        super().__init__(message)
        #: Largest initiation interval attempted before giving up, if known.
        self.ii_tried = ii_tried


class ExactTimeout(SchedulingError):
    """The exact scheduler's search exceeded its size or time budget.

    Subclasses :class:`SchedulingError` so the experiment harness treats a
    blown budget like any other scheduling failure (fall back to the list
    schedule, flag the point) instead of crashing a runner worker; callers
    that care about the distinction — the gap experiment, the differential
    tests — catch this type specifically.
    """


class VerificationError(ReproError):
    """An independently checked schedule violated a correctness invariant."""


class ServiceError(ReproError):
    """Base class for scheduling-service failures (:mod:`repro.service`).

    Subclasses distinguish malformed requests (client's fault, HTTP 400),
    submissions to a closing service (HTTP 503) and client-side transport
    errors; all stay catchable under :class:`ReproError`.
    """


class SimulationError(ReproError):
    """Cycle-accurate execution of emitted code hit an impossible state.

    Raised by :mod:`repro.sim` when the dynamic machine state contradicts
    the schedule: an operation reading a value before its producer's
    latency has elapsed, a bus transfer starting before its source value
    exists, or two transfers contending for the same bus cycle.  Unlike
    :class:`VerificationError` (a static check), this is caught while
    actually executing the prologue/kernel/epilogue code.
    """
