"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """A dependence graph is malformed (unknown node, bad edge, ...)."""


class WorkloadError(ReproError, KeyError):
    """A workload name, alias or parametrisation cannot be resolved.

    Also subclasses :class:`KeyError` so callers of the historical
    ``resolve_kernel`` / ``build_program`` APIs (which raised bare
    ``KeyError``) keep working unchanged.  ``suggestion`` carries a
    did-you-mean candidate when one is close enough to print.
    """

    def __init__(self, message: str, *, suggestion: str | None = None):
        super().__init__(message)
        self.suggestion = suggestion

    def __str__(self) -> str:
        # KeyError.__str__ repr()s the message; restore plain text and
        # append the did-you-mean hint when there is one.
        message = self.args[0] if self.args else ""
        if self.suggestion:
            return f"{message} (did you mean {self.suggestion!r}?)"
        return str(message)


class ParseError(ReproError):
    """A textual loop-IR program is malformed (:mod:`repro.ir.frontend`).

    Carries the 1-based ``line`` and ``col`` of the offending token and
    the ``source`` label (file name or ``<string>``); the rendered
    message always leads with ``source:line:col`` so editors and CI logs
    can jump straight to the problem.
    """

    def __init__(
        self, message: str, *, source: str = "<loop>", line: int = 0, col: int = 0
    ):
        super().__init__(f"{source}:{line}:{col}: {message}")
        self.source = source
        self.line = line
        self.col = col


class ConfigError(ReproError):
    """A machine configuration is inconsistent or unsupported."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule within its II budget."""

    def __init__(self, message: str, *, ii_tried: int | None = None):
        super().__init__(message)
        #: Largest initiation interval attempted before giving up, if known.
        self.ii_tried = ii_tried


class ExactTimeout(SchedulingError):
    """The exact scheduler's search exceeded its size or time budget.

    Subclasses :class:`SchedulingError` so the experiment harness treats a
    blown budget like any other scheduling failure (fall back to the list
    schedule, flag the point) instead of crashing a runner worker; callers
    that care about the distinction — the gap experiment, the differential
    tests — catch this type specifically.
    """


class VerificationError(ReproError):
    """An independently checked schedule violated a correctness invariant."""


class ServiceError(ReproError):
    """Base class for scheduling-service failures (:mod:`repro.service`).

    Subclasses distinguish malformed requests (client's fault, HTTP 400),
    submissions to a closing service (HTTP 503) and client-side transport
    errors; all stay catchable under :class:`ReproError`.
    """


class SimulationError(ReproError):
    """Cycle-accurate execution of emitted code hit an impossible state.

    Raised by :mod:`repro.sim` when the dynamic machine state contradicts
    the schedule: an operation reading a value before its producer's
    latency has elapsed, a bus transfer starting before its source value
    exists, or two transfers contending for the same bus cycle.  Unlike
    :class:`VerificationError` (a static check), this is caught while
    actually executing the prologue/kernel/epilogue code.
    """
