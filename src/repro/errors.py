"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """A dependence graph is malformed (unknown node, bad edge, ...)."""


class ConfigError(ReproError):
    """A machine configuration is inconsistent or unsupported."""


class SchedulingError(ReproError):
    """A scheduler could not produce a valid schedule within its II budget."""

    def __init__(self, message: str, *, ii_tried: int | None = None):
        super().__init__(message)
        #: Largest initiation interval attempted before giving up, if known.
        self.ii_tried = ii_tried


class VerificationError(ReproError):
    """An independently checked schedule violated a correctness invariant."""
