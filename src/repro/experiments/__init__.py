"""Experiment harnesses for the paper's tables and figures.

Every figure is declared as a grid of
:class:`~repro.runner.scenario.ScenarioPoint` work units (the
``fig*_grid`` functions) and executed through the parallel, cache-backed
engine in :mod:`repro.runner`; the ``run_fig*`` functions then reduce
the warm results into the figure's rows.
"""

from .ablation import (
    run_default_cluster_ablation,
    run_pipelining_gain,
    run_register_sweep,
    run_ordering_ablation,
    run_selective_rule_ablation,
    run_singlepass_ablation,
    run_stall_sensitivity,
    run_unroll_factor_sweep,
)
from .common import (
    ExperimentContext,
    config_label,
    geometric_mean,
    global_context,
    make_scheduler,
    paper_machine,
    sequential_fallback,
    suite_grid,
)
from .crossval import (
    CrossvalPoint,
    crossval_grid,
    crossval_rows,
    max_cycle_divergence,
    max_ipc_divergence,
    run_crossval,
)
from .fig4 import BUS_SWEEP, Fig4Point, fig4_grid, fig4_rows, run_fig4
from .fig7 import Fig7Case, fig7_rows, run_fig7, run_fig7_ladder
from .fig8 import Fig8Point, average_ipc, fig8_grid, fig8_rows, run_fig8
from .fig9 import Fig9Point, best_speedup, fig9_grid, fig9_rows, run_fig9
from .fig10 import Fig10Point, fig10_grid, fig10_rows, run_fig10
from .gap import (
    GAP_HEURISTICS,
    GAP_SCHEDULERS,
    GapPoint,
    gap_grid,
    gap_rows,
    render_gap,
    run_gap,
)
from .tables import run_table1, run_table2

__all__ = [
    "BUS_SWEEP",
    "CrossvalPoint",
    "ExperimentContext",
    "Fig4Point",
    "Fig7Case",
    "Fig8Point",
    "Fig9Point",
    "Fig10Point",
    "GAP_HEURISTICS",
    "GAP_SCHEDULERS",
    "GapPoint",
    "average_ipc",
    "best_speedup",
    "config_label",
    "crossval_grid",
    "crossval_rows",
    "fig10_grid",
    "fig10_rows",
    "fig4_grid",
    "fig4_rows",
    "fig7_rows",
    "fig8_grid",
    "fig8_rows",
    "fig9_grid",
    "fig9_rows",
    "gap_grid",
    "gap_rows",
    "geometric_mean",
    "global_context",
    "make_scheduler",
    "max_cycle_divergence",
    "max_ipc_divergence",
    "paper_machine",
    "render_gap",
    "run_crossval",
    "run_gap",
    "run_fig10",
    "run_fig4",
    "run_fig7",
    "run_fig7_ladder",
    "run_fig8",
    "run_fig9",
    "run_default_cluster_ablation",
    "run_pipelining_gain",
    "run_register_sweep",
    "run_ordering_ablation",
    "run_selective_rule_ablation",
    "run_singlepass_ablation",
    "run_stall_sensitivity",
    "run_unroll_factor_sweep",
    "run_table1",
    "run_table2",
    "sequential_fallback",
    "suite_grid",
]
