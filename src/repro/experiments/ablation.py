"""Ablation studies beyond the paper's figures.

* **single-pass vs two-phase** (EXP-A1): the gap between BSA and the
  two-phase comparator as communication latency grows, on identical
  graphs — isolates the benefit the paper attributes to unified
  assign-and-schedule.
* **selective rule** (EXP-A2): the Figure 6 pseudo-code tests
  ``cycneeded < II(sched)`` while the prose compares against the unrolled
  loop's achievable II; this ablation counts how often the two rules
  disagree and what each costs in IPC and code size.
* **ordering** (EXP-A3): BSA with SMS ordering vs plain topological
  ordering — how much of BSA's quality comes from the SMS priority.
* **default cluster** (EXP-A4): the paper's circular rotation vs the
  least-loaded alternative it mentions (Section 5.1).
* **unroll factor** (EXP-A5): the paper fixes U = n_clusters; sweep U in
  {1, 2, 4, 8} to test that choice.
* **memory stalls** (EXP-A6): sensitivity of the clustered-vs-unified
  comparison to the perfect-memory assumption (extension; the paper's
  t_stall is zero).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import unified_config
from ..codegen.codesize import ZERO_SIZE, schedule_code_size
from ..core.bsa import BsaScheduler
from ..core.selective import ScheduledLoopResult, SelectiveRule, UnrollPolicy
from ..errors import SchedulingError
from ..ir.unroll import unroll_graph
from ..perf.model import StallModel, program_performance
from .common import ExperimentContext, paper_machine, suite_grid


@dataclass(frozen=True)
class LatencyAblationPoint:
    bus_latency: int
    algorithm: str
    relative_ipc: float


def run_singlepass_ablation(
    ctx: ExperimentContext,
    *,
    n_clusters: int = 4,
    n_buses: int = 1,
    latencies: tuple[int, ...] = (1, 2, 4),
    jobs: int | None = None,
) -> list[LatencyAblationPoint]:
    """EXP-A1: BSA vs two-phase as communication latency grows."""
    grid = suite_grid(ctx.suite, unified_config(), "bsa", UnrollPolicy.NONE)
    for latency in latencies:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for algorithm in ("bsa", "two-phase"):
            grid.extend(suite_grid(ctx.suite, cfg, algorithm, UnrollPolicy.NONE))
    ctx.run_grid(grid, jobs=jobs)
    points = []
    for latency in latencies:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for algorithm in ("bsa", "two-phase"):
            rel = ctx.average_relative_ipc(cfg, algorithm, UnrollPolicy.NONE)
            points.append(LatencyAblationPoint(latency, algorithm, rel))
    return points


@dataclass(frozen=True)
class SelectiveRulePoint:
    rule: str
    n_clusters: int
    n_buses: int
    bus_latency: int
    mean_ipc: float
    unrolled_loops: int
    total_ops: int


def run_selective_rule_ablation(
    ctx: ExperimentContext,
    *,
    n_clusters: int = 4,
    scenarios: tuple[tuple[int, int], ...] = ((1, 1), (1, 4), (2, 1)),
    jobs: int | None = None,
) -> list[SelectiveRulePoint]:
    """EXP-A2: the two readings of the Figure 6 decision test."""
    grid = []
    for n_buses, latency in scenarios:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for rule in SelectiveRule:
            grid.extend(
                suite_grid(ctx.suite, cfg, "bsa", UnrollPolicy.SELECTIVE, rule)
            )
    ctx.run_grid(grid, jobs=jobs)
    points = []
    for n_buses, latency in scenarios:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for rule in SelectiveRule:
            perfs = ctx.suite_ipc(cfg, "bsa", UnrollPolicy.SELECTIVE, rule)
            unrolled = 0
            size = ZERO_SIZE
            for program in ctx.suite:
                for loop in program.eligible_loops():
                    result = ctx.schedule_loop(
                        loop, cfg, "bsa", UnrollPolicy.SELECTIVE, rule
                    )
                    if result.unroll_factor > 1:
                        unrolled += 1
                    size = size + schedule_code_size(result.schedule)
            mean_ipc = sum(p.ipc for p in perfs.values()) / len(perfs)
            points.append(
                SelectiveRulePoint(
                    rule.value,
                    n_clusters,
                    n_buses,
                    latency,
                    mean_ipc,
                    unrolled,
                    size.total_ops,
                )
            )
    return points


@dataclass(frozen=True)
class OrderingPoint:
    ordering: str
    n_clusters: int
    relative_ipc: float


def run_ordering_ablation(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    n_buses: int = 1,
    latency: int = 1,
) -> list[OrderingPoint]:
    """EXP-A3: SMS ordering vs plain topological ordering inside BSA."""
    points = []
    for n_clusters in cluster_counts:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for name, label in (("bsa", "sms"), ("bsa-topo", "topological")):
            rel = ctx.average_relative_ipc(cfg, name, UnrollPolicy.NONE)
            points.append(OrderingPoint(label, n_clusters, rel))
    return points


@dataclass(frozen=True)
class DefaultClusterPoint:
    policy: str
    n_clusters: int
    policy_label: str
    relative_ipc: float


def run_default_cluster_ablation(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    n_buses: int = 1,
    latency: int = 1,
) -> list[DefaultClusterPoint]:
    """EXP-A4: circular vs least-loaded default-cluster rotation.

    Evaluated with blanket unrolling, where the default-cluster choice is
    what spreads the unrolled copies.
    """
    points = []
    for n_clusters in cluster_counts:
        cfg = paper_machine(n_clusters, n_buses, latency)
        for label in ("circular", "least-loaded"):
            scheduler_name = "bsa" if label == "circular" else "bsa-least-loaded"
            rel = ctx.average_relative_ipc(cfg, scheduler_name, UnrollPolicy.ALL)
            points.append(DefaultClusterPoint(scheduler_name, n_clusters, label, rel))
    return points


@dataclass(frozen=True)
class UnrollFactorPoint:
    n_clusters: int
    factor: int
    mean_ipc: float
    failed_loops: int


def run_unroll_factor_sweep(
    ctx: ExperimentContext,
    *,
    n_clusters: int = 4,
    n_buses: int = 1,
    latency: int = 1,
    factors: tuple[int, ...] = (1, 2, 4, 8),
) -> list[UnrollFactorPoint]:
    """EXP-A5: is U = n_clusters the right unroll factor?

    Loops whose unrolled body cannot be scheduled fall back to the
    non-unrolled schedule (counted in ``failed_loops``).
    """
    cfg = paper_machine(n_clusters, n_buses, latency)
    points = []
    for factor in factors:
        failed = 0
        ipcs = []
        for program in ctx.suite:
            results: dict[str, ScheduledLoopResult] = {}
            for loop in program.eligible_loops():
                base = ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.NONE)
                if factor == 1:
                    results[loop.name] = base
                    continue
                try:
                    sched = BsaScheduler(cfg).schedule(
                        unroll_graph(loop.graph, factor)
                    )
                    results[loop.name] = ScheduledLoopResult(
                        sched, factor, UnrollPolicy.ALL
                    )
                except SchedulingError:
                    failed += 1
                    results[loop.name] = base
            ipcs.append(program_performance(program, results).ipc)
        points.append(
            UnrollFactorPoint(
                n_clusters, factor, sum(ipcs) / len(ipcs), failed
            )
        )
    return points


@dataclass(frozen=True)
class RegisterSweepPoint:
    regs_per_cluster: int
    policy: UnrollPolicy
    mean_ipc: float
    fallback_loops: int


def run_register_sweep(
    ctx_suite,
    *,
    n_clusters: int = 4,
    n_buses: int = 1,
    latency: int = 1,
    reg_sizes: tuple[int, ...] = (8, 12, 16, 24, 32),
) -> list[RegisterSweepPoint]:
    """EXP-A7: how small can the per-cluster register file get?

    The paper fixes 64/n_clusters registers per cluster; this sweeps the
    file size to expose the pressure wall — where modulo scheduling
    starts failing (list-scheduling fallbacks) and IPC collapses.  Uses a
    fresh context per size (configs differ from the paper machines).
    """
    from ..arch.cluster import MachineConfig
    from ..arch.resources import BusSpec, FuSet
    from .common import ExperimentContext

    points = []
    for regs in reg_sizes:
        cfg = MachineConfig(
            name=f"4c-r{regs}",
            n_clusters=n_clusters,
            fu_per_cluster=FuSet(1, 1, 1),
            regs_per_cluster=regs,
            buses=BusSpec(n_buses, latency),
        )
        for policy in (UnrollPolicy.NONE, UnrollPolicy.SELECTIVE):
            ctx = ExperimentContext(suite=ctx_suite)
            ipcs = [
                ctx.program_ipc(p, cfg, "bsa", policy).ipc for p in ctx.suite
            ]
            points.append(
                RegisterSweepPoint(
                    regs, policy, sum(ipcs) / len(ipcs), len(ctx.fallbacks)
                )
            )
    return points


@dataclass(frozen=True)
class PipeliningGainPoint:
    program: str
    config_label: str
    list_ipc: float
    modulo_ipc: float

    @property
    def gain(self) -> float:
        return self.modulo_ipc / self.list_ipc if self.list_ipc else 0.0


def run_pipelining_gain(
    ctx: ExperimentContext,
    *,
    n_clusters: int = 4,
    n_buses: int = 1,
    latency: int = 1,
) -> list[PipeliningGainPoint]:
    """EXP-A8: what modulo scheduling buys over list scheduling.

    The motivation experiment for the whole line of work: one-iteration
    list schedules leave the machine idle during dependence latencies;
    software pipelining overlaps iterations.
    """
    from ..core.list_schedule import list_schedule
    from ..perf.model import program_performance

    cfg = paper_machine(n_clusters, n_buses, latency)
    points = []
    for program in ctx.suite:
        list_results = {
            loop.name: ScheduledLoopResult(
                list_schedule(loop.graph, cfg), 1, UnrollPolicy.NONE
            )
            for loop in program.eligible_loops()
        }
        modulo_results = {
            loop.name: ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.SELECTIVE)
            for loop in program.eligible_loops()
        }
        points.append(
            PipeliningGainPoint(
                program.name,
                f"{n_clusters}c/b{n_buses}/l{latency}",
                program_performance(program, list_results).ipc,
                program_performance(program, modulo_results).ipc,
            )
        )
    return points


@dataclass(frozen=True)
class StallSensitivityPoint:
    miss_rate: float
    miss_penalty: int
    relative_ipc: float  # clustered(SU) / unified, stalls applied to both


def run_stall_sensitivity(
    ctx: ExperimentContext,
    *,
    n_clusters: int = 4,
    n_buses: int = 1,
    latency: int = 1,
    scenarios: tuple[tuple[float, int], ...] = (
        (0.0, 0),
        (0.02, 10),
        (0.05, 20),
        (0.10, 40),
    ),
) -> list[StallSensitivityPoint]:
    """EXP-A6: how memory stalls dilute the clustered/unified IPC gap.

    Stalls hit both machines identically (shared memory hierarchy), so
    they pull the relative IPC towards 1.0 — quantifying how much the
    perfect-memory assumption flatters *any* scheduling difference.
    """
    from ..arch.configs import unified_config

    cfg = paper_machine(n_clusters, n_buses, latency)
    unified = unified_config()
    points = []
    for miss_rate, penalty in scenarios:
        stall = StallModel(miss_rate, penalty)
        ratios = []
        for program in ctx.suite:
            clustered_results = {
                loop.name: ctx.schedule_loop(
                    loop, cfg, "bsa", UnrollPolicy.SELECTIVE
                )
                for loop in program.eligible_loops()
            }
            unified_results = {
                loop.name: ctx.schedule_loop(
                    loop, unified, "bsa", UnrollPolicy.NONE
                )
                for loop in program.eligible_loops()
            }
            c = program_performance(program, clustered_results, stall).ipc
            u = program_performance(program, unified_results, stall).ipc
            ratios.append(c / u)
        points.append(
            StallSensitivityPoint(
                miss_rate, penalty, sum(ratios) / len(ratios)
            )
        )
    return points
