"""Shared experiment harness — a thin layer over :mod:`repro.runner`.

Runs (program suite) x (machine configuration) x (scheduler) x (unrolling
policy) grids.  Each data point is a hashable
:class:`~repro.runner.scenario.ScenarioPoint`; the context memoises the
materialised results in-process (so the many figures that share scenario
points never schedule the same loop twice in one process) and, when given
a :class:`~repro.runner.cache.ResultCache`, persists every point on disk
so repeated figures — and interrupted sweeps — skip scheduling entirely.

Whole grids go through :meth:`ExperimentContext.run_grid`, which shards
cache misses across worker processes (``jobs``) deterministically; the
figure harnesses declare their grids up front and then reduce from the
warm memo.

Fallback: a loop that cannot be modulo-scheduled under a configuration
(e.g. register-pressure-impossible with no spill code) is charged a
classic *list schedule* of one iteration (II = schedule length, SC = 1) —
what a compiler emits when it skips software pipelining.  Fallbacks are
counted and reported; on the shipped workloads none trigger, but they keep
custom workloads from aborting a whole experiment.
"""

from __future__ import annotations

import json
import math
from concurrent.futures import Executor
from dataclasses import dataclass, field
from typing import Callable

from ..arch.cluster import MachineConfig
from ..arch.configs import clustered_config, unified_config
from ..core.selective import (
    ScheduledLoopResult,
    SelectiveRule,
    UnrollPolicy,
)
from ..ir.loop import Loop, Program
from ..obs.report import RunRecorder
from ..perf.model import ProgramPerformance, program_performance
from ..runner.cache import ResultCache
from ..runner.engine import (  # re-exported for backwards compatibility
    SCHEDULERS,
    SchedulerFactory,
    SweepStats,
    execute_point,
    make_scheduler,
    run_sweep,
    sequential_fallback,
)
from ..runner.scenario import (
    GridItem,
    PointResult,
    ScenarioPoint,
    program_payload,
    scenario_for,
)
from ..sim.crosscheck import CrossCheck
from ..workloads.specfp import specfp95_suite

__all__ = [
    "SCHEDULERS",
    "SchedulerFactory",
    "ExperimentContext",
    "config_label",
    "geometric_mean",
    "global_context",
    "make_scheduler",
    "paper_machine",
    "program_grid",
    "sequential_fallback",
    "suite_grid",
]


def config_label(config: MachineConfig) -> str:
    """Stable display label for a machine configuration."""
    if not config.is_clustered:
        return config.name
    return f"{config.name}/b{config.buses.count}/l{config.buses.latency}"


def suite_grid(
    suite: list[Program],
    config: MachineConfig,
    scheduler: str,
    policy: UnrollPolicy,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    *,
    simulate: bool = False,
) -> list[GridItem]:
    """Scenario points for every eligible loop of *suite* on one machine.

    The building block of every figure grid: figures compose a few
    ``suite_grid`` calls (one per machine/policy scenario) instead of
    hand-rolling nested loops.
    """
    return [
        (scenario_for(loop, config, scheduler, policy, rule, simulate=simulate), loop)
        for program in suite
        for loop in program.eligible_loops()
    ]


def program_grid(
    loop: Loop,
    configs: list[MachineConfig],
    schedulers: tuple[str, ...] = ("bsa",),
    policies: tuple[UnrollPolicy, ...] = (UnrollPolicy.NONE,),
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    *,
    simulate: bool = False,
) -> list[GridItem]:
    """Scenario grid for one *user-supplied* loop over machines/algorithms.

    The front-door twin of :func:`suite_grid`: every point embeds the
    loop's full payload (:func:`repro.runner.scenario.program_payload`),
    so the grid sweeps, caches and distributes over the fabric exactly
    like a catalogue grid even though the loop exists in no registry.
    """
    payload = program_payload(loop)
    return [
        (
            scenario_for(
                loop,
                config,
                scheduler,
                policy,
                rule,
                simulate=simulate,
                program=payload,
            ),
            loop,
        )
        for config in configs
        for scheduler in schedulers
        for policy in policies
    ]


@dataclass
class ExperimentContext:
    """Scenario runner with memoisation, caching and fallback accounting.

    Attributes
    ----------
    suite:
        The programs under evaluation (default: the SPECfp95-like suite).
    cache:
        Optional shared on-disk :class:`ResultCache`; when set, every
        computed point is persisted and future contexts (or processes)
        reuse it.
    jobs:
        Default worker-process count for :meth:`run_grid`.
    fresh:
        When true, never *read* the on-disk cache (results are still
        written back) — the ``--fresh`` CLI semantic.
    pool:
        Optional long-lived executor injected into every
        :meth:`run_grid` sweep (see
        :func:`repro.runner.engine.execute_points`); the scheduling
        service wires its shared worker pool in here so grid jobs reuse
        warm workers instead of paying pool start-up per request.
    executor:
        Optional replacement execution core passed to ``run_sweep`` as
        its ``execute`` hook (same signature as
        :func:`repro.runner.engine.execute_points`).  The distributed
        fabric injects its coordinator's ``execute`` here, so a
        ``sweep --distributed`` grid job runs on pull-based workers
        while memoisation, caching and reducers stay unchanged.
    memo:
        In-process map from scenario identity to the materialised
        :class:`ScheduledLoopResult` (stable object identity per point).
    sim_memo:
        Same for simulated points, holding :class:`CrossCheck` records.
    fallbacks:
        Every scenario point that needed the list-schedule fallback.
    stats:
        Accumulated :class:`SweepStats` over all work this context ran.
    recorder:
        Optional :class:`~repro.obs.report.RunRecorder`; when set,
        :meth:`run_grid` records one point record per grid point
        (including in-process memo hits, as source ``memo``) for the
        ``--report-out`` run report.  Purely observational.
    """

    suite: list[Program] = field(default_factory=specfp95_suite)
    cache: ResultCache | None = None
    jobs: int = 1
    fresh: bool = False
    pool: Executor | None = None
    executor: Callable[..., dict[str, PointResult]] | None = None
    memo: dict[str, ScheduledLoopResult] = field(default_factory=dict)
    sim_memo: dict[str, CrossCheck] = field(default_factory=dict)
    fallbacks: list[ScenarioPoint] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)
    recorder: RunRecorder | None = None
    #: Canonical keys of the points in :attr:`fallbacks` (fast lookup).
    _fallback_keys: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Point-at-a-time API (reducers; also the serial fallback path)
    # ------------------------------------------------------------------
    def schedule_loop(
        self,
        loop: Loop,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> ScheduledLoopResult:
        """Schedule one loop under one scenario (memo -> cache -> compute)."""
        point = scenario_for(loop, config, scheduler_name, policy, rule)
        key = point.canonical()
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        result = self._cache_get(point)
        if result is not None:
            self.stats.cached += 1
        else:
            result = execute_point(point, loop)
            if self.cache is not None:
                self.cache.put(point, result)
            self.stats.executed += 1
        self.stats.total += 1
        self._absorb_schedule(point, result)
        return self.memo[key]

    def crosscheck_loop(
        self,
        loop: Loop,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> CrossCheck:
        """Schedule *and simulate* one loop, diffed against the model.

        Reuses an in-memory or cached schedule for the scenario when one
        exists (the simulation itself is what is being added).
        """
        point = scenario_for(
            loop, config, scheduler_name, policy, rule, simulate=True
        )
        key = point.canonical()
        hit = self.sim_memo.get(key)
        if hit is not None:
            return hit
        result = self._cache_get(point)
        if result is not None:
            self.stats.cached += 1
        else:
            twin_key = point.without_simulation().canonical()
            result = execute_point(
                point,
                loop,
                prior=self.memo.get(twin_key),
                prior_fallback=twin_key in self._fallback_keys,
            )
            if self.cache is not None:
                self.cache.put(point, result)
            self.stats.executed += 1
        self.stats.total += 1
        self._absorb_sim(point, result)
        return self.sim_memo[key]

    # ------------------------------------------------------------------
    # Grid-at-a-time API (figures declare grids; misses run in parallel)
    # ------------------------------------------------------------------
    def run_grid(
        self, items: list[GridItem], jobs: int | None = None
    ) -> SweepStats:
        """Execute a declared grid, sharding misses over worker processes.

        Points already memoised in this context are skipped; the rest go
        through :func:`repro.runner.engine.run_sweep` (cache first, then
        deterministic parallel execution) and land in the memos, so the
        figure reducers that follow are pure lookups.
        """
        jobs = self.jobs if jobs is None else jobs
        by_key: dict[str, GridItem] = {}
        memo_hits: dict[str, GridItem] = {}
        for point, loop in items:
            memo = self.sim_memo if point.simulate else self.memo
            key = point.canonical()
            if key not in memo:
                by_key.setdefault(key, (point, loop))
            else:
                memo_hits.setdefault(key, (point, loop))
        if self.recorder is not None:
            for key, (point, _loop) in memo_hits.items():
                if point.simulate:
                    continue  # the schedule-only twin is what the memo holds
                self.recorder.record(
                    point,
                    PointResult.from_loop_result(
                        self.memo[key], fallback=key in self._fallback_keys
                    ),
                    source="memo",
                )
        pending = list(by_key.values())
        results, stats = run_sweep(
            pending,
            jobs=jobs,
            cache=self.cache,
            fresh=self.fresh,
            pool=self.pool,
            prior_lookup=self._known_schedule,
            recorder=self.recorder,
            execute=self.executor,
        )
        for key, result in results.items():
            point, _loop = by_key[key]
            if point.simulate:
                self._absorb_sim(point, result)
            else:
                self._absorb_schedule(point, result)
        self.stats.merge(stats)
        return stats

    # ------------------------------------------------------------------
    def _cache_get(self, point: ScenarioPoint) -> PointResult | None:
        """Disk-cache read honouring the context's ``fresh`` setting."""
        if self.cache is None or self.fresh:
            return None
        return self.cache.get(point)

    def _known_schedule(
        self, point: ScenarioPoint
    ) -> tuple[ScheduledLoopResult, bool] | None:
        """The memoised schedule (and its fallback flag) for a point."""
        key = point.canonical()
        known = self.memo.get(key)
        if known is None:
            return None
        return known, key in self._fallback_keys

    def _absorb_schedule(self, point: ScenarioPoint, result: PointResult) -> None:
        """Install a point result into the memo (once) with accounting."""
        key = point.canonical()
        if key in self.memo:
            return
        self.memo[key] = result.loop_result()
        if result.fallback:
            self.fallbacks.append(point)
            self._fallback_keys.add(key)

    def _absorb_sim(self, point: ScenarioPoint, result: PointResult) -> None:
        """Install a simulated point: CrossCheck plus the embedded schedule."""
        key = point.canonical()
        if key in self.sim_memo:
            return
        sim = result.sim
        if sim is None:  # pragma: no cover - defensive: malformed payload
            raise ValueError(f"point {point.describe()} has no sim outcome")
        self.sim_memo[key] = CrossCheck(
            loop_name=point.loop,
            config_name=json.loads(point.machine)["name"],
            analytic_cycles=sim.analytic_cycles,
            simulated_cycles=sim.simulated_cycles,
            analytic_ipc=sim.analytic_ipc,
            simulated_ipc=sim.simulated_ipc,
        )
        # The schedule rode along: warm the schedule memo for the twin.
        self._absorb_schedule(point.without_simulation(), result)

    # ------------------------------------------------------------------
    # Aggregations (unchanged public API)
    # ------------------------------------------------------------------
    def program_ipc(
        self,
        program: Program,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> ProgramPerformance:
        """IPC of one program: every eligible loop scheduled and modelled."""
        results = {
            loop.name: self.schedule_loop(loop, config, scheduler_name, policy, rule)
            for loop in program.eligible_loops()
        }
        return program_performance(program, results)

    def suite_ipc(
        self,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> dict[str, ProgramPerformance]:
        """Per-program performance over the whole suite."""
        return {
            program.name: self.program_ipc(
                program, config, scheduler_name, policy, rule
            )
            for program in self.suite
        }

    def average_relative_ipc(
        self,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> float:
        """Mean over programs of IPC(clustered)/IPC(unified) (Figures 4, 8)."""
        unified = unified_config()
        ratios = []
        for program in self.suite:
            clustered_perf = self.program_ipc(
                program, config, scheduler_name, policy, rule
            )
            unified_perf = self.program_ipc(
                program, unified, "bsa", UnrollPolicy.NONE
            )
            ratios.append(clustered_perf.ipc / unified_perf.ipc)
        return sum(ratios) / len(ratios)


#: Process-wide default context so benchmark files share the cache.
_GLOBAL_CONTEXT: ExperimentContext | None = None


def global_context() -> ExperimentContext:
    """Process-wide shared context (benchmarks reuse schedules through it)."""
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None:
        _GLOBAL_CONTEXT = ExperimentContext()
    return _GLOBAL_CONTEXT


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the fair average of ratios); 0.0 for empty input."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def paper_machine(n_clusters: int, n_buses: int, latency: int) -> MachineConfig:
    """Shorthand for the paper's clustered machines with a chosen fabric."""
    return clustered_config(n_clusters, n_buses, latency)
