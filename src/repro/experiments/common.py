"""Shared experiment harness.

Runs (program suite) x (machine configuration) x (scheduler) x (unrolling
policy) grids, with caching so the many figures that share scenario points
never schedule the same loop twice in one process.

Fallback: a loop that cannot be modulo-scheduled under a configuration
(e.g. register-pressure-impossible with no spill code) is charged a
classic *list schedule* of one iteration (II = schedule length, SC = 1) —
what a compiler emits when it skips software pipelining.  Fallbacks are
counted and reported; on the shipped workloads none trigger, but they keep
custom workloads from aborting a whole experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..arch.cluster import MachineConfig
from ..arch.configs import clustered_config, unified_config
from ..core.base import SchedulerBase
from ..core.bsa import BsaScheduler
from ..core.list_schedule import list_schedule
from ..core.selective import (
    ScheduledLoopResult,
    SelectiveRule,
    UnrollPolicy,
    schedule_with_policy,
)
from ..core.twophase import TwoPhaseScheduler
from ..core.unified import UnifiedScheduler
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop, Program
from ..perf.model import ProgramPerformance, program_performance
from ..workloads.specfp import specfp95_suite

#: Scheduler factory signature: config -> scheduler.
SchedulerFactory = Callable[[MachineConfig], SchedulerBase]

SCHEDULERS: dict[str, SchedulerFactory] = {
    "bsa": lambda cfg: BsaScheduler(cfg),
    "two-phase": lambda cfg: TwoPhaseScheduler(cfg),
    "bsa-topo": lambda cfg: BsaScheduler(cfg, order="topo"),
    "bsa-least-loaded": lambda cfg: BsaScheduler(
        cfg, default_cluster_policy="least-loaded"
    ),
}


def make_scheduler(name: str, config: MachineConfig) -> SchedulerBase:
    """Instantiate a registered scheduler (unified machines always get SMS)."""
    if config.n_clusters == 1:
        return UnifiedScheduler(config)
    return SCHEDULERS[name](config)


def sequential_fallback(
    graph: DependenceGraph, config: MachineConfig
) -> ScheduledLoopResult:
    """A non-pipelined stand-in schedule for loops that defeat the
    modulo schedulers: classic list scheduling of one iteration, II =
    schedule length, SC = 1 — what a compiler emits when it skips
    software pipelining."""
    sched = list_schedule(graph, config)
    return ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)


@dataclass(frozen=True)
class ScenarioKey:
    """Cache key for one (loop, machine, algorithm, policy) data point."""

    loop_name: str
    config_label: str
    scheduler: str
    policy: UnrollPolicy
    rule: SelectiveRule


def config_label(config: MachineConfig) -> str:
    """Stable cache label for a machine configuration."""
    if not config.is_clustered:
        return config.name
    return f"{config.name}/b{config.buses.count}/l{config.buses.latency}"


@dataclass
class ExperimentContext:
    """Scenario runner with memoisation and fallback accounting."""

    suite: list[Program] = field(default_factory=specfp95_suite)
    cache: dict[ScenarioKey, ScheduledLoopResult] = field(default_factory=dict)
    fallbacks: list[ScenarioKey] = field(default_factory=list)

    def schedule_loop(
        self,
        loop: Loop,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> ScheduledLoopResult:
        key = ScenarioKey(
            loop.name, config_label(config), scheduler_name, policy, rule
        )
        if key not in self.cache:
            scheduler = make_scheduler(scheduler_name, config)
            try:
                self.cache[key] = schedule_with_policy(
                    loop.graph, scheduler, policy, rule=rule
                )
            except SchedulingError:
                self.fallbacks.append(key)
                self.cache[key] = sequential_fallback(loop.graph, config)
        return self.cache[key]

    def program_ipc(
        self,
        program: Program,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> ProgramPerformance:
        results = {
            loop.name: self.schedule_loop(loop, config, scheduler_name, policy, rule)
            for loop in program.eligible_loops()
        }
        return program_performance(program, results)

    def suite_ipc(
        self,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> dict[str, ProgramPerformance]:
        return {
            program.name: self.program_ipc(
                program, config, scheduler_name, policy, rule
            )
            for program in self.suite
        }

    def average_relative_ipc(
        self,
        config: MachineConfig,
        scheduler_name: str,
        policy: UnrollPolicy,
        rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    ) -> float:
        """Mean over programs of IPC(clustered)/IPC(unified) (Figures 4, 8)."""
        unified = unified_config()
        ratios = []
        for program in self.suite:
            clustered_perf = self.program_ipc(
                program, config, scheduler_name, policy, rule
            )
            unified_perf = self.program_ipc(
                program, unified, "bsa", UnrollPolicy.NONE
            )
            ratios.append(clustered_perf.ipc / unified_perf.ipc)
        return sum(ratios) / len(ratios)


#: Process-wide default context so benchmark files share the cache.
_GLOBAL_CONTEXT: ExperimentContext | None = None


def global_context() -> ExperimentContext:
    """Process-wide shared context (benchmarks reuse schedules through it)."""
    global _GLOBAL_CONTEXT
    if _GLOBAL_CONTEXT is None:
        _GLOBAL_CONTEXT = ExperimentContext()
    return _GLOBAL_CONTEXT


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the fair average of ratios); 0.0 for empty input."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def paper_machine(n_clusters: int, n_buses: int, latency: int) -> MachineConfig:
    """Shorthand for the paper's clustered machines with a chosen fabric."""
    return clustered_config(n_clusters, n_buses, latency)
