"""Model cross-validation: the Figure 8 grid re-run under simulation.

Every (program loop, machine, policy) point of the Figure 8 IPC grid is
executed by the cycle-accurate simulator (:mod:`repro.sim`) under a
perfect memory and diffed against the analytic model's cycles and IPC.
The headline number is the **maximum IPC divergence** over the whole
grid: the paper's closed-form results are only trustworthy if it is zero
(to floating-point rounding), so the experiment fails loudly on any
disagreement instead of averaging it away.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import (
    PAPER_BUS_COUNTS,
    PAPER_BUS_LATENCIES,
    unified_config,
)
from ..core.selective import UnrollPolicy
from ..errors import SimulationError
from ..runner.scenario import GridItem
from ..sim.crosscheck import CrossCheck
from .common import ExperimentContext, paper_machine, suite_grid
from .fig8 import POLICIES


@dataclass(frozen=True)
class CrossvalPoint:
    """One simulated grid point with its analytic counterpart."""

    program: str
    loop: str
    n_clusters: int  # 1 = unified
    n_buses: int
    bus_latency: int
    policy: UnrollPolicy
    check: CrossCheck


def _crossval_scenarios(
    cluster_counts: tuple[int, ...],
    bus_counts: tuple[int, ...],
    latencies: tuple[int, ...],
    policies: tuple[UnrollPolicy, ...],
) -> list[tuple[int, int, int, UnrollPolicy]]:
    """Every machine scenario of the grid (unified baseline first)."""
    scenarios: list[tuple[int, int, int, UnrollPolicy]] = [
        (1, 0, 0, UnrollPolicy.NONE)
    ]
    scenarios.extend(
        (n_clusters, n_buses, latency, policy)
        for n_clusters in cluster_counts
        for policy in policies
        for n_buses in bus_counts
        for latency in latencies
    )
    return scenarios


def crossval_grid(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
    policies: tuple[UnrollPolicy, ...] = POLICIES,
) -> list[GridItem]:
    """The cross-validation grid: Figure 8's points, simulate-flagged.

    Simulated points embed their schedule in the result, so a crossval
    sweep also warms the schedule cache for the other figures (and vice
    versa: cached Figure 8 schedules skip straight to simulation).
    """
    items: list[GridItem] = []
    for n_clusters, n_buses, latency, policy in _crossval_scenarios(
        cluster_counts, bus_counts, latencies, policies
    ):
        cfg = (
            unified_config()
            if n_clusters == 1
            else paper_machine(n_clusters, n_buses, latency)
        )
        items.extend(
            suite_grid(ctx.suite, cfg, scheduler, policy, simulate=True)
        )
    return items


def run_crossval(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
    policies: tuple[UnrollPolicy, ...] = POLICIES,
    jobs: int | None = None,
) -> list[CrossvalPoint]:
    """Simulate every loop of the Figure 8 grid and diff against the model."""
    ctx.run_grid(
        crossval_grid(
            ctx,
            cluster_counts=cluster_counts,
            bus_counts=bus_counts,
            latencies=latencies,
            scheduler=scheduler,
            policies=policies,
        ),
        jobs=jobs,
    )
    points: list[CrossvalPoint] = []
    for n_clusters, n_buses, latency, policy in _crossval_scenarios(
        cluster_counts, bus_counts, latencies, policies
    ):
        cfg = (
            unified_config()
            if n_clusters == 1
            else paper_machine(n_clusters, n_buses, latency)
        )
        for program in ctx.suite:
            for loop in program.eligible_loops():
                try:
                    check = ctx.crosscheck_loop(loop, cfg, scheduler, policy)
                except SimulationError as exc:  # a wrong schedule slipped through
                    raise SimulationError(
                        f"{program.name}/{loop.name} on {cfg.name} "
                        f"({policy}): {exc}"
                    ) from exc
                points.append(
                    CrossvalPoint(
                        program.name,
                        loop.name,
                        n_clusters,
                        n_buses,
                        latency,
                        policy,
                        check,
                    )
                )
    return points


def max_ipc_divergence(points: list[CrossvalPoint]) -> float:
    """The headline: worst analytic-vs-simulated IPC gap over the grid."""
    return max((p.check.ipc_divergence for p in points), default=0.0)


def max_cycle_divergence(points: list[CrossvalPoint]) -> int:
    """Worst absolute cycle-count disagreement over the grid."""
    return max((abs(p.check.cycle_divergence) for p in points), default=0)


def crossval_rows(points: list[CrossvalPoint], *, per_loop: bool = False) -> list[dict]:
    """Cross-validation summary rows (per scenario, or per loop point).

    The per-scenario summary aggregates each (machine, policy) combination
    over all loops: how many points were simulated, how many matched the
    model exactly, and the worst divergence seen.
    """
    if per_loop:
        return [
            {
                "program": p.program,
                "loop": p.loop,
                "clusters": p.n_clusters,
                "buses": p.n_buses,
                "bus_latency": p.bus_latency,
                "policy": str(p.policy),
                "analytic_cycles": p.check.analytic_cycles,
                "simulated_cycles": p.check.simulated_cycles,
                "analytic_ipc": p.check.analytic_ipc,
                "simulated_ipc": p.check.simulated_ipc,
            }
            for p in points
        ]
    groups: dict[tuple, list[CrossvalPoint]] = {}
    for p in points:
        groups.setdefault((p.n_clusters, p.n_buses, p.bus_latency, p.policy), []).append(p)
    rows = []
    for (clusters, buses, latency, policy), pts in sorted(
        groups.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2], str(kv[0][3]))
    ):
        rows.append(
            {
                "clusters": clusters,
                "buses": buses,
                "bus_latency": latency,
                "policy": str(policy),
                "loops": len(pts),
                "exact": sum(1 for p in pts if p.check.exact),
                "max_ipc_divergence": max(p.check.ipc_divergence for p in pts),
                "max_cycle_divergence": max(
                    abs(p.check.cycle_divergence) for p in pts
                ),
            }
        )
    return rows
