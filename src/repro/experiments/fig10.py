"""Figure 10: code-size impact of the unrolling policies.

Static operation counts (useful, and useful+NOP) for the clustered
machines under the three policies, normalised to the unified machine
without unrolling.

Expected shape (paper): without unrolling NOP padding grows as latency
rises / buses shrink (II inflates); blanket unrolling multiplies useful
code by the unroll factor; selective unrolling sits well below blanket
unrolling (closer to it for starved configurations, where more loops are
bus limited), and the saving is biggest for high-bandwidth fabrics
(2 buses, latency 1) where few loops need unrolling at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import (
    PAPER_BUS_COUNTS,
    PAPER_BUS_LATENCIES,
    unified_config,
)
from ..codegen.codesize import ZERO_SIZE, CodeSize, schedule_code_size
from ..core.selective import UnrollPolicy
from ..runner.scenario import GridItem
from .common import ExperimentContext, paper_machine, suite_grid
from .fig8 import POLICIES


def fig10_grid(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
) -> list[GridItem]:
    """The Figure 10 grid (same scenarios as Figure 8's)."""
    items = suite_grid(ctx.suite, unified_config(), scheduler, UnrollPolicy.NONE)
    for n_clusters in cluster_counts:
        for policy in POLICIES:
            for n_buses in bus_counts:
                for latency in latencies:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    items.extend(suite_grid(ctx.suite, cfg, scheduler, policy))
    return items


@dataclass(frozen=True)
class Fig10Point:
    n_clusters: int
    n_buses: int
    bus_latency: int
    policy: UnrollPolicy
    total_ops_ratio: float  # white bars (useful + NOP)
    useful_ops_ratio: float  # black bars


def _suite_code_size(
    ctx: ExperimentContext, config, scheduler: str, policy: UnrollPolicy
) -> CodeSize:
    total = ZERO_SIZE
    for program in ctx.suite:
        for loop in program.eligible_loops():
            result = ctx.schedule_loop(loop, config, scheduler, policy)
            total = total + schedule_code_size(result.schedule)
    return total


def run_fig10(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
    jobs: int | None = None,
) -> list[Fig10Point]:
    """Run the Figure 10 grid: normalised code size per scenario."""
    ctx.run_grid(
        fig10_grid(
            ctx,
            cluster_counts=cluster_counts,
            bus_counts=bus_counts,
            latencies=latencies,
            scheduler=scheduler,
        ),
        jobs=jobs,
    )
    baseline = _suite_code_size(
        ctx, unified_config(), scheduler, UnrollPolicy.NONE
    )
    points = []
    for n_clusters in cluster_counts:
        for policy in POLICIES:
            for n_buses in bus_counts:
                for latency in latencies:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    size = _suite_code_size(ctx, cfg, scheduler, policy)
                    total_ratio, useful_ratio = size.normalised_to(baseline)
                    points.append(
                        Fig10Point(
                            n_clusters,
                            n_buses,
                            latency,
                            policy,
                            total_ratio,
                            useful_ratio,
                        )
                    )
    return points


def fig10_rows(points: list[Fig10Point]) -> list[dict]:
    """Figure 10 points as table rows."""
    return [
        {
            "clusters": p.n_clusters,
            "buses": p.n_buses,
            "bus_latency": p.bus_latency,
            "policy": str(p.policy),
            "total_ops_ratio": p.total_ops_ratio,
            "useful_ops_ratio": p.useful_ops_ratio,
        }
        for p in points
    ]
