"""Figure 4: bus sensitivity of clustered modulo scheduling.

Relative IPC (clustered / unified, averaged over the suite) as the number
of buses sweeps, for the BSA single-pass scheduler and the N&E two-phase
comparator, at bus latencies 1 and 2, on the 2- and 4-cluster machines.

Expected shape (paper): BSA above N&E everywhere (about 7% at the N&E
configurations 2c/2b and 4c/4b with latency 1); both approach 1.0 as buses
grow; both degrade as buses shrink or slow down, N&E faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import unified_config
from ..core.selective import UnrollPolicy
from ..runner.scenario import GridItem
from .common import ExperimentContext, paper_machine, suite_grid

#: Bus counts swept on the x axis (the paper's plots run to 12).
BUS_SWEEP = (1, 2, 3, 4, 6, 8, 12)
LATENCIES = (1, 2)
ALGORITHMS = ("bsa", "two-phase")
CLUSTER_COUNTS = (2, 4)


def fig4_grid(
    ctx: ExperimentContext,
    *,
    bus_sweep: tuple[int, ...] = BUS_SWEEP,
    cluster_counts: tuple[int, ...] = CLUSTER_COUNTS,
) -> list[GridItem]:
    """The Figure 4 sweep as a flat scenario-point declaration."""
    items = suite_grid(ctx.suite, unified_config(), "bsa", UnrollPolicy.NONE)
    for n_clusters in cluster_counts:
        for algorithm in ALGORITHMS:
            for latency in LATENCIES:
                for n_buses in bus_sweep:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    items.extend(
                        suite_grid(ctx.suite, cfg, algorithm, UnrollPolicy.NONE)
                    )
    return items


@dataclass(frozen=True)
class Fig4Point:
    n_clusters: int
    algorithm: str
    bus_latency: int
    n_buses: int
    relative_ipc: float


def run_fig4(
    ctx: ExperimentContext,
    *,
    bus_sweep: tuple[int, ...] = BUS_SWEEP,
    cluster_counts: tuple[int, ...] = CLUSTER_COUNTS,
    jobs: int | None = None,
) -> list[Fig4Point]:
    """Run the Figure 4 sweep: relative IPC per (clusters, algorithm,
    latency, bus count) point."""
    ctx.run_grid(
        fig4_grid(ctx, bus_sweep=bus_sweep, cluster_counts=cluster_counts),
        jobs=jobs,
    )
    points = []
    for n_clusters in cluster_counts:
        for algorithm in ALGORITHMS:
            for latency in LATENCIES:
                for n_buses in bus_sweep:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    rel = ctx.average_relative_ipc(
                        cfg, algorithm, UnrollPolicy.NONE
                    )
                    points.append(
                        Fig4Point(n_clusters, algorithm, latency, n_buses, rel)
                    )
    return points


def fig4_rows(points: list[Fig4Point]) -> list[dict]:
    """Figure 4 points as table rows."""
    return [
        {
            "clusters": p.n_clusters,
            "algorithm": p.algorithm,
            "bus_latency": p.bus_latency,
            "buses": p.n_buses,
            "relative_ipc": p.relative_ipc,
        }
        for p in points
    ]
