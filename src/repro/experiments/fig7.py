"""Figure 7: the unrolling walk-through examples.

Two worked examples on the 2-cluster machine:

* ``figure7_graph`` — the paper's 6-operation topology (ResMII =
  ceil(6/4) = 2, RecMII = ceil(3/2) = 2, one loop-carried A -> E edge that
  unrolling turns into the two cross-copy communications of the paper's
  figure).  As in the paper, the non-unrolled schedule is bus limited and
  settles at II = 3 (BSA retreats to a zero-communication single-cluster
  packing rather than saturating the bus — a different route to the same
  II); unrolling by 2 reaches II 3 for two iterations = 1.5
  cycles/iteration, *below* the unified machine's rounded MII of 2 — the
  Lavery & Hwu MII-rounding gain the paper cites.

* ``ladder_graph`` — a 12-operation ladder where *every* balanced cluster
  split needs at least two bus transfers, so with one latency-2 bus the
  non-unrolled loop is genuinely bus limited for any assignment; unrolling
  by 2 (even-distance recurrences) separates the copies completely and
  restores unified parity with zero communications.  This is the paper's
  phenomenon in assignment-proof form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..arch.configs import two_cluster_config, unified_config
from ..core.bsa import BsaScheduler
from ..core.mii import mii_report
from ..core.schedule import ModuloSchedule
from ..core.unified import UnifiedScheduler
from ..core.verify import verify_schedule
from ..ir.ddg import DependenceGraph
from ..ir.unroll import count_cross_copy_deps, unroll_graph
from ..workloads.kernels import figure7_graph, ladder_graph


@dataclass
class Fig7Case:
    """One graph scheduled unified / clustered / clustered-unrolled."""

    graph: DependenceGraph
    config: MachineConfig
    res_mii: int
    rec_mii: int
    unified_schedule: ModuloSchedule
    base_schedule: ModuloSchedule
    unrolled_schedule: ModuloSchedule
    cross_copy_deps: int

    @property
    def unified_ii(self) -> int:
        return self.unified_schedule.ii

    @property
    def base_ii_per_iteration(self) -> float:
        return float(self.base_schedule.ii)

    @property
    def unrolled_ii_per_iteration(self) -> float:
        return self.unrolled_schedule.ii / 2.0


def _run_case(graph: DependenceGraph, bus_latency: int) -> Fig7Case:
    config = two_cluster_config(n_buses=1, bus_latency=bus_latency)
    report = mii_report(graph, config)
    unified = UnifiedScheduler(unified_config()).schedule(graph)
    scheduler = BsaScheduler(config)
    base = scheduler.schedule(graph)
    unrolled = scheduler.schedule(unroll_graph(graph, 2))
    for sched in (unified, base, unrolled):
        verify_schedule(sched)
    return Fig7Case(
        graph=graph,
        config=config,
        res_mii=report.res_mii,
        rec_mii=report.rec_mii,
        unified_schedule=unified,
        base_schedule=base,
        unrolled_schedule=unrolled,
        cross_copy_deps=count_cross_copy_deps(graph, 2),
    )


def run_fig7(bus_latency: int = 1) -> Fig7Case:
    """The paper's 6-node example at the given bus latency."""
    return _run_case(figure7_graph(), bus_latency)


def run_fig7_ladder(bus_latency: int = 2) -> Fig7Case:
    """The assignment-proof ladder example (default: latency-2 bus)."""
    return _run_case(ladder_graph(), bus_latency)


def fig7_rows(case: Fig7Case) -> list[dict]:
    """The three variants (unified / no unrolling / unrolled) as rows."""
    return [
        {
            "variant": "unified",
            "ii": case.unified_schedule.ii,
            "ii_per_source_iteration": float(case.unified_schedule.ii),
            "communications": 0,
            "bus_limited": False,
        },
        {
            "variant": "no unrolling",
            "ii": case.base_schedule.ii,
            "ii_per_source_iteration": case.base_ii_per_iteration,
            "communications": case.base_schedule.communication_count,
            "bus_limited": case.base_schedule.was_bus_limited,
        },
        {
            "variant": "unrolled x2",
            "ii": case.unrolled_schedule.ii,
            "ii_per_source_iteration": case.unrolled_ii_per_iteration,
            "communications": case.unrolled_schedule.communication_count,
            "bus_limited": case.unrolled_schedule.was_bus_limited,
        },
    ]
