"""Figure 8: per-program IPC under the three unrolling policies.

For every SPECfp95 program: IPC of the unified machine, and of the 2- and
4-cluster machines with 1 or 2 buses at latencies 1, 2 and 4, under *No
unrolling*, *Unrolling* (all loops, factor = cluster count) and *Selective
unrolling* (Figure 6).

Expected shape (paper): without unrolling the clustered IPC falls as buses
shrink or slow; with unrolling it recovers to roughly unified parity (and
occasionally above — the unified scheduler packs the first unrolled
iteration greedily at the expense of the rest); selective unrolling tracks
full unrolling closely; tomcatv on the 4-cluster machine is the canonical
loser from blanket unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import (
    PAPER_BUS_COUNTS,
    PAPER_BUS_LATENCIES,
    unified_config,
)
from ..core.selective import UnrollPolicy
from ..runner.scenario import GridItem
from .common import ExperimentContext, paper_machine, suite_grid

POLICIES = (UnrollPolicy.NONE, UnrollPolicy.ALL, UnrollPolicy.SELECTIVE)


def fig8_grid(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
) -> list[GridItem]:
    """The Figure 8 grid as a flat scenario-point declaration.

    One ``suite_grid`` per machine scenario (the unified baseline plus
    every clusters x policy x buses x latency combination); ~2,000
    schedule runs on the full suite.
    """
    items = suite_grid(ctx.suite, unified_config(), scheduler, UnrollPolicy.NONE)
    for n_clusters in cluster_counts:
        for policy in POLICIES:
            for n_buses in bus_counts:
                for latency in latencies:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    items.extend(suite_grid(ctx.suite, cfg, scheduler, policy))
    return items


@dataclass(frozen=True)
class Fig8Point:
    program: str
    n_clusters: int  # 1 = unified
    n_buses: int
    bus_latency: int
    policy: UnrollPolicy
    ipc: float


def run_fig8(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = PAPER_BUS_COUNTS,
    latencies: tuple[int, ...] = PAPER_BUS_LATENCIES,
    scheduler: str = "bsa",
    jobs: int | None = None,
) -> list[Fig8Point]:
    """Run the Figure 8 grid: per-program IPC for every scenario.

    The grid executes through the runner (parallel across *jobs* worker
    processes, persisted in the context's cache); the reduction below is
    then pure memo lookups.
    """
    ctx.run_grid(
        fig8_grid(
            ctx,
            cluster_counts=cluster_counts,
            bus_counts=bus_counts,
            latencies=latencies,
            scheduler=scheduler,
        ),
        jobs=jobs,
    )
    points: list[Fig8Point] = []
    unified = unified_config()
    for program in ctx.suite:
        perf = ctx.program_ipc(program, unified, scheduler, UnrollPolicy.NONE)
        points.append(Fig8Point(program.name, 1, 0, 0, UnrollPolicy.NONE, perf.ipc))
    for n_clusters in cluster_counts:
        for policy in POLICIES:
            for n_buses in bus_counts:
                for latency in latencies:
                    cfg = paper_machine(n_clusters, n_buses, latency)
                    for program in ctx.suite:
                        perf = ctx.program_ipc(program, cfg, scheduler, policy)
                        points.append(
                            Fig8Point(
                                program.name,
                                n_clusters,
                                n_buses,
                                latency,
                                policy,
                                perf.ipc,
                            )
                        )
    return points


def fig8_rows(points: list[Fig8Point]) -> list[dict]:
    """Figure 8 points as table rows."""
    return [
        {
            "program": p.program,
            "clusters": p.n_clusters,
            "buses": p.n_buses,
            "bus_latency": p.bus_latency,
            "policy": str(p.policy),
            "ipc": p.ipc,
        }
        for p in points
    ]


def average_ipc(points: list[Fig8Point]) -> list[dict]:
    """The AVERAGE panels of Figure 8: mean IPC per scenario."""
    groups: dict[tuple, list[float]] = {}
    for p in points:
        key = (p.n_clusters, p.n_buses, p.bus_latency, p.policy)
        groups.setdefault(key, []).append(p.ipc)
    rows = []
    for (clusters, buses, latency, policy), values in sorted(
        groups.items(), key=lambda kv: (kv[0][0], str(kv[0][3]), kv[0][1], kv[0][2])
    ):
        rows.append(
            {
                "clusters": clusters,
                "buses": buses,
                "bus_latency": latency,
                "policy": str(policy),
                "mean_ipc": sum(values) / len(values),
            }
        )
    return rows
