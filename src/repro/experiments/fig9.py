"""Figure 9: cycle-time-aware speed-up over the unified machine.

Combines the measured suite IPCs with the Palacharla-style cycle times of
Table 2: ``speedup = (IPC_c / IPC_u) * (cycle_u / cycle_c)``, for the 2-
and 4-cluster machines with 1 and 2 buses (latency 1), without unrolling
(NU) and with selective unrolling (SU).

Expected shape (paper): every clustered configuration beats the unified
machine; best is 4-cluster / 1 bus / selective unrolling at ~3.6x.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.configs import unified_config
from ..core.selective import UnrollPolicy
from ..perf.speedup import SpeedupReport, speedup_report
from ..runner.scenario import GridItem
from .common import ExperimentContext, geometric_mean, paper_machine, suite_grid

SCENARIOS = (
    ("NU", UnrollPolicy.NONE),
    ("SU", UnrollPolicy.SELECTIVE),
)


def fig9_grid(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = (1, 2),
    bus_latency: int = 1,
    scheduler: str = "bsa",
) -> list[GridItem]:
    """The Figure 9 grid as a flat scenario-point declaration."""
    items = suite_grid(ctx.suite, unified_config(), scheduler, UnrollPolicy.NONE)
    for n_clusters in cluster_counts:
        for n_buses in bus_counts:
            cfg = paper_machine(n_clusters, n_buses, bus_latency)
            for _label, policy in SCENARIOS:
                items.extend(suite_grid(ctx.suite, cfg, scheduler, policy))
    return items


@dataclass(frozen=True)
class Fig9Point:
    n_clusters: int
    n_buses: int
    scenario: str  # NU or SU
    report: SpeedupReport


def run_fig9(
    ctx: ExperimentContext,
    *,
    cluster_counts: tuple[int, ...] = (2, 4),
    bus_counts: tuple[int, ...] = (1, 2),
    bus_latency: int = 1,
    scheduler: str = "bsa",
    jobs: int | None = None,
) -> list[Fig9Point]:
    """Run Figure 9: suite IPCs combined with modelled cycle times."""
    ctx.run_grid(
        fig9_grid(
            ctx,
            cluster_counts=cluster_counts,
            bus_counts=bus_counts,
            bus_latency=bus_latency,
            scheduler=scheduler,
        ),
        jobs=jobs,
    )
    unified = unified_config()
    unified_perfs = ctx.suite_ipc(unified, scheduler, UnrollPolicy.NONE)
    points = []
    for n_clusters in cluster_counts:
        for n_buses in bus_counts:
            cfg = paper_machine(n_clusters, n_buses, bus_latency)
            for label, policy in SCENARIOS:
                perfs = ctx.suite_ipc(cfg, scheduler, policy)
                # Per-program speed-ups averaged (the paper reports the
                # SPECfp95 average); geometric mean is the fair average of
                # ratios.
                ratios = [
                    perfs[name].ipc / unified_perfs[name].ipc
                    for name in perfs
                ]
                mean_ipc_c = geometric_mean([perfs[n].ipc for n in perfs])
                mean_ipc_u = geometric_mean(
                    [unified_perfs[n].ipc for n in unified_perfs]
                )
                report = speedup_report(cfg, unified, mean_ipc_c, mean_ipc_u)
                points.append(Fig9Point(n_clusters, n_buses, label, report))
    return points


def fig9_rows(points: list[Fig9Point]) -> list[dict]:
    """Figure 9 points as table rows."""
    return [
        {
            "clusters": p.n_clusters,
            "buses": p.n_buses,
            "scenario": p.scenario,
            "ipc_ratio": p.report.ipc_ratio,
            "clock_ratio": p.report.clock_ratio,
            "speedup": p.report.speedup,
        }
        for p in points
    ]


def best_speedup(points: list[Fig9Point]) -> Fig9Point:
    """The winning configuration (the paper's 4c/1bus/SU headline)."""
    return max(points, key=lambda p: p.report.speedup)
