"""Optimality-gap ablation: the heuristics measured against the oracle.

Every figure in the paper compares heuristic modulo schedulers against
each other; none of them says how far any heuristic sits from *optimal*.
This experiment runs the kernel catalogue through the heuristics **and**
the exact backend (:class:`repro.core.exact.ExactScheduler`) on the same
machines and tabulates heuristic-vs-optimal II and MaxLive per kernel.

Points flow through the shared cache-backed runner like every other
experiment, so gap sweeps reuse schedules other figures already computed
(and vice versa).  When the exact search blows its time budget on a
kernel the runner substitutes the list-schedule fallback; those points
are *not* optimality claims, so the reduction detects the fallback flag
and reports the oracle column as a timeout instead of a number.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..core.lifetimes import max_pressure
from ..core.selective import UnrollPolicy
from ..runner.scenario import GridItem, scenario_for
from ..workloads.kernels import ALL_KERNELS, kernel_loop
from .common import ExperimentContext, config_label, paper_machine

#: Heuristics measured against the oracle (registry names).
GAP_HEURISTICS = ("bsa", "two-phase")
#: Scheduler order of the emitted table (oracle last).
GAP_SCHEDULERS = GAP_HEURISTICS + ("exact",)
#: The quick set: catalogue kernels whose exact search finishes in well
#: under a second each, so the verb is usable interactively and in CI.
QUICK_KERNELS = (
    "daxpy",
    "vadd",
    "dot",
    "rec1",
    "gather",
    "fib",
    "figure7",
    "tridiag",
    "hydro",
    "stencil3",
    "fir4",
    "sqrtnorm",
)
#: The full set: the whole catalogue (the largest kernels may time the
#: oracle out — reported as such, never silently dropped).
FULL_KERNELS = tuple(ALL_KERNELS)


def gap_configs(quick: bool) -> tuple[MachineConfig, ...]:
    """The machines of the gap table (paper fabrics, hardest last)."""
    configs = (paper_machine(2, 1, 1), paper_machine(2, 1, 2))
    if not quick:
        configs = configs + (paper_machine(4, 1, 1),)
    return configs


@dataclass(frozen=True)
class GapPoint:
    """One (kernel, machine, scheduler) measurement."""

    kernel: str
    config: str
    scheduler: str
    ii: int
    mii: int
    max_live: int
    fallback: bool  # the scheduler failed (exact: timed out) on this point


def gap_grid(
    kernels: tuple[str, ...],
    configs: tuple[MachineConfig, ...],
    schedulers: tuple[str, ...] = GAP_SCHEDULERS,
) -> list[GridItem]:
    """Every (kernel, machine, scheduler) point of the gap table."""
    items: list[GridItem] = []
    for config in configs:
        for kernel in kernels:
            loop = kernel_loop(kernel)
            for scheduler in schedulers:
                items.append(
                    (
                        scenario_for(
                            loop, config, scheduler, UnrollPolicy.NONE
                        ),
                        loop,
                    )
                )
    return items


def run_gap(
    ctx: ExperimentContext,
    *,
    kernels: tuple[str, ...] | None = None,
    configs: tuple[MachineConfig, ...] | None = None,
    schedulers: tuple[str, ...] = GAP_SCHEDULERS,
    quick: bool = False,
    jobs: int | None = None,
) -> list[GapPoint]:
    """Measure every scheduler of the table on every kernel and machine."""
    if kernels is None:
        kernels = QUICK_KERNELS if quick else FULL_KERNELS
    if configs is None:
        configs = gap_configs(quick)
    ctx.run_grid(gap_grid(kernels, configs, schedulers), jobs=jobs)
    points: list[GapPoint] = []
    for config in configs:
        for kernel in kernels:
            loop = kernel_loop(kernel)
            for scheduler in schedulers:
                result = ctx.schedule_loop(
                    loop, config, scheduler, UnrollPolicy.NONE
                )
                key = scenario_for(
                    loop, config, scheduler, UnrollPolicy.NONE
                ).canonical()
                points.append(
                    GapPoint(
                        kernel=kernel,
                        config=config_label(config),
                        scheduler=scheduler,
                        ii=result.schedule.ii,
                        mii=result.schedule.mii,
                        max_live=max_pressure(result.schedule),
                        fallback=key in ctx._fallback_keys,
                    )
                )
    return points


def gap_rows(points: list[GapPoint]) -> list[dict]:
    """One table row per (kernel, machine): heuristics vs the oracle.

    The oracle's columns show ``timeout`` when its point fell back (a
    timed-out search proves nothing); the ``ii_gap`` column is the best
    heuristic II minus the optimal II — 0 means some heuristic is
    II-optimal on that kernel.
    """
    groups: dict[tuple[str, str], dict[str, GapPoint]] = {}
    order: list[tuple[str, str]] = []
    for p in points:
        key = (p.config, p.kernel)
        if key not in groups:
            groups[key] = {}
            order.append(key)
        groups[key][p.scheduler] = p
    rows: list[dict] = []
    for config, kernel in order:
        by_sched = groups[(config, kernel)]
        row: dict = {"kernel": kernel, "config": config}
        mii = next(iter(by_sched.values())).mii
        row["mii"] = mii
        heuristic_iis: list[int] = []
        for name in GAP_HEURISTICS:
            p = by_sched.get(name)
            if p is None:
                continue
            col = name.replace("-", "_")
            row[f"{col}_ii"] = p.ii
            row[f"{col}_live"] = p.max_live
            if not p.fallback:
                heuristic_iis.append(p.ii)
        exact = by_sched.get("exact")
        if exact is None or exact.fallback:
            row["exact_ii"] = "timeout"
            row["exact_live"] = "timeout"
            row["ii_gap"] = ""
        else:
            row["exact_ii"] = exact.ii
            row["exact_live"] = exact.max_live
            row["ii_gap"] = (
                min(heuristic_iis) - exact.ii if heuristic_iis else ""
            )
        rows.append(row)
    return rows


def render_gap(points: list[GapPoint], fmt: str = "text") -> str:
    """Render the gap table as ``text``, ``markdown`` or ``json``."""
    rows = gap_rows(points)
    if fmt == "json":
        return json.dumps(rows, indent=2)
    columns = list(rows[0]) if rows else []
    if fmt == "markdown":
        lines = [
            "| " + " | ".join(columns) + " |",
            "| " + " | ".join("---" for _ in columns) + " |",
        ]
        for row in rows:
            lines.append(
                "| " + " | ".join(str(row.get(c, "")) for c in columns) + " |"
            )
        return "\n".join(lines)
    if fmt == "text":
        from ..perf.report import format_table

        return format_table(
            rows, columns, title="Heuristic vs optimal (exact backend)"
        )
    raise ValueError(f"unknown gap format {fmt!r}")
