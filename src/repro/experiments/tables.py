"""Tables 1 and 2 of the paper, as experiment outputs."""

from __future__ import annotations

from ..arch.configs import paper_configs, table1_rows
from ..arch.timing import table2_rows


def run_table1() -> list[dict]:
    """Table 1: the evaluated machine configurations."""
    return table1_rows()


def run_table2(n_buses: int = 1) -> list[dict]:
    """Table 2: cycle times from the Palacharla-style delay model.

    Clustered machines carry *n_buses* (register-file ports depend on it).
    """
    configs = []
    for cfg in paper_configs().values():
        if cfg.is_clustered:
            cfg = cfg.with_buses(n_buses, 1)
        configs.append(cfg)
    return table2_rows(configs)
