"""Distributed sweep fabric: pull-based workers over one shared cache.

The fabric splits a sweep's cache misses into deterministic shards and
leases them to workers over the service's JSON-HTTP front end:

* :mod:`repro.fabric.protocol` — the wire schemas, the protocol
  version, and the 400/409/410 error taxonomy;
* :mod:`repro.fabric.coordinator` — lease book-keeping, expiry and
  straggler re-issue, first-write-wins result collection into the
  shared :class:`~repro.runner.cache.ResultCache`;
* :mod:`repro.fabric.worker` — the pull loop behind
  ``repro-vliw worker``.

Workers and coordinator must run the same cache code version, so both
sides compute identical content-addressed keys — which is why a
distributed sweep is byte-identical to a local ``--jobs`` sweep by
construction.

``FabricWorker`` is exported lazily: the worker builds on
:mod:`repro.service.client`, while :mod:`repro.service.core` imports
the coordinator from here, and an eager import would close that loop.
"""

from .coordinator import FabricCoordinator
from .protocol import (
    PROTOCOL_VERSION,
    FabricBadRequest,
    FabricConflict,
    FabricError,
    FabricGone,
)

__all__ = [
    "PROTOCOL_VERSION",
    "FabricBadRequest",
    "FabricConflict",
    "FabricCoordinator",
    "FabricError",
    "FabricGone",
    "FabricWorker",
    "WorkerDied",
    "WorkerStats",
]

_WORKER_EXPORTS = ("FabricWorker", "WorkerDied", "WorkerStats", "client_from_url")


def __getattr__(name: str):
    if name in _WORKER_EXPORTS:
        from . import worker

        return getattr(worker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
