"""The fabric coordinator: leases, expiry, re-issue, first-write-wins.

:class:`FabricCoordinator` turns a list of cache misses into
deterministic shards (same :func:`~repro.runner.engine._shard` partition
the local ``--jobs`` path uses, so the work split is a pure function of
the grid) and serves them to pull-based workers through two thread-safe
entry points the HTTP layer calls directly: :meth:`claim`
(``POST /leases``) and :meth:`submit_results` (``POST /results``).

Lease state machine, per shard::

    pending ──claim──> leased(worker, deadline) ──results──> done
       ^                    │
       │   deadline passes  │ (renewals push the deadline out)
       └────────────────────┘

plus one escape hatch: when a sweep has no pending shards left but an
idle worker is asking, the slowest still-leased shard is **re-issued**
(straggler mitigation) once its oldest lease has outlived
``straggler_factor`` x the median shard turnaround.  Multiple live
leases on one shard are resolved by **first write wins**: the first
``POST /results`` to commit a point owns it, later copies count as
duplicates, and every point is stored into the shared
:class:`~repro.runner.cache.ResultCache` exactly once — which is what
makes a distributed sweep byte-identical to the local path by
construction (same cache keys, same deterministic per-point schedule).

Expiry is lazy: deadlines are evaluated inside :meth:`claim` /
:meth:`submit_results` and on the executor's wait ticks, so no timer
thread exists.  :meth:`execute` is signature-compatible with
:func:`~repro.runner.engine.execute_points` and plugs straight into
:func:`~repro.runner.engine.run_sweep` via its ``execute`` hook.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from ..ir.serialize import loop_to_dict
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TRACER
from ..runner.cache import ResultCache, default_code_version
from ..runner.engine import _point_dict, _shard, store_result
from ..runner.scenario import GridItem, PointResult, ScenarioPoint
from .protocol import (
    PROTOCOL_VERSION,
    FabricBadRequest,
    FabricConflict,
    FabricError,
    FabricGone,
    validate_claim,
    validate_results,
)

__all__ = ["FabricCoordinator"]


@dataclass
class _Lease:
    """One issuance of one shard to one worker."""

    id: str
    worker: str
    shard: "_Shard"
    issued_unix: float
    deadline_unix: float
    renewals: int = 0
    completed: bool = False
    expired: bool = False

    def active(self, now: float) -> bool:
        return not self.completed and not self.expired and now <= self.deadline_unix


@dataclass
class _Shard:
    """A deterministic slice of one sweep's misses."""

    index: int
    sweep: "_Sweep"
    keys: list[str]
    #: Times this shard has been leased out (>1 means re-issued).
    issues: int = 0
    done: bool = False
    leases: list[_Lease] = field(default_factory=list)


@dataclass
class _Sweep:
    """One in-flight distributed sweep (one ``execute`` call)."""

    id: str
    items: dict[str, GridItem]
    #: Pre-serialised work items, keyed like :attr:`items` (what goes
    #: over the wire; exactly the :func:`_run_batch` item schema).
    item_docs: dict[str, dict[str, Any]]
    cache: ResultCache | None
    trace: dict[str, str] | None
    shards: list[_Shard] = field(default_factory=list)
    pending: deque = field(default_factory=deque)
    #: First-write-wins results (canonical key -> result).
    done: dict[str, PointResult] = field(default_factory=dict)
    meta: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Completed-lease turnarounds (drives the straggler threshold).
    turnarounds: list[float] = field(default_factory=list)
    event: threading.Event = field(default_factory=threading.Event)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


class FabricCoordinator:
    """Lease book-keeping for pull-based sweep workers.

    Parameters
    ----------
    cache:
        Default shared result cache; results posted by workers are
        persisted through :func:`~repro.runner.engine.store_result`
        exactly once per point.  ``execute`` callers may override it per
        sweep (the runner passes its own cache through).
    metrics:
        Optional registry to export the ``fabric_*`` counter/gauge/
        histogram families on (the service passes its own, so they show
        up on ``GET /metrics``).
    code_version:
        The cache code version workers must match; defaults to the
        cache's (or the process default).  Matching versions guarantee
        worker and coordinator compute identical content keys — the
        byte-identity invariant.
    lease_ttl_s:
        Seconds a lease stays valid without a renewal; workers are told
        to heartbeat at a third of this.
    shard_size:
        Target points per shard (the unit of lease/re-issue).
    straggler_factor / straggler_after_s:
        Re-issue a still-leased shard to an idle worker once its oldest
        live lease is older than ``straggler_after_s`` (when set) or
        ``straggler_factor`` x the sweep's median shard turnaround.
    max_leases_per_shard:
        Live-lease cap per shard (bounds duplicated work).
    sweep_timeout_s:
        Optional hard deadline on one ``execute`` call.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        metrics: MetricsRegistry | None = None,
        code_version: str | None = None,
        lease_ttl_s: float = 30.0,
        shard_size: int = 8,
        straggler_factor: float = 4.0,
        straggler_after_s: float | None = None,
        max_leases_per_shard: int = 2,
        sweep_timeout_s: float | None = None,
        tick_s: float | None = None,
        idle_retry_s: float = 0.05,
    ):
        self.cache = cache
        if code_version is None:
            code_version = (
                cache.code_version if cache is not None else default_code_version()
            )
        self.code_version = code_version
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_s = self.lease_ttl_s / 3.0
        self.shard_size = max(1, int(shard_size))
        self.straggler_factor = float(straggler_factor)
        self.straggler_after_s = straggler_after_s
        self.max_leases_per_shard = max(1, int(max_leases_per_shard))
        self.sweep_timeout_s = sweep_timeout_s
        self.tick_s = (
            tick_s
            if tick_s is not None
            else min(max(self.lease_ttl_s / 4.0, 0.01), 0.25)
        )
        self.idle_retry_s = float(idle_retry_s)

        self._lock = threading.Lock()
        self._sweeps: dict[str, _Sweep] = {}
        self._leases: dict[str, _Lease] = {}
        self._workers: dict[str, dict[str, Any]] = {}
        self._sweep_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        self._closed = threading.Event()

        # Counters (under _lock); /stats and /metrics read the same ints.
        self._leases_issued = 0
        self._leases_renewed = 0
        self._leases_expired = 0
        self._shards_reissued = 0
        self._points_completed = 0
        self._results_duplicate = 0
        self._results_rejected = 0

        self._lease_seconds = None
        if metrics is not None:
            self._register_metrics(metrics)

    def _register_metrics(self, metrics: MetricsRegistry) -> None:
        metrics.counter(
            "fabric_leases_issued_total",
            "Shard leases issued to fabric workers",
            callback=lambda: self._leases_issued,
        )
        metrics.counter(
            "fabric_leases_renewed_total",
            "Lease heartbeat renewals accepted",
            callback=lambda: self._leases_renewed,
        )
        metrics.counter(
            "fabric_leases_expired_total",
            "Leases expired past their deadline (worker death or stall)",
            callback=lambda: self._leases_expired,
        )
        metrics.counter(
            "fabric_shards_reissued_total",
            "Shards leased more than once (expiry or straggler re-issue)",
            callback=lambda: self._shards_reissued,
        )
        metrics.counter(
            "fabric_points_completed_total",
            "Scenario points committed by fabric workers (first write per point)",
            callback=lambda: self._points_completed,
        )
        metrics.counter(
            "fabric_results_duplicate_total",
            "Posted point results discarded by first-write-wins",
            callback=lambda: self._results_duplicate,
        )
        metrics.counter(
            "fabric_results_rejected_total",
            "Result posts rejected (malformed, duplicate, expired, version)",
            callback=lambda: self._results_rejected,
        )
        metrics.gauge(
            "fabric_sweeps_active",
            "Distributed sweeps currently executing",
            callback=lambda: len(self._sweeps),
        )
        metrics.gauge(
            "fabric_workers_seen",
            "Distinct workers that have contacted this coordinator",
            callback=lambda: len(self._workers),
        )
        self._lease_seconds = metrics.histogram(
            "fabric_lease_latency_seconds",
            "Lease turnaround: issue to accepted results",
        )

    # ------------------------------------------------------------------
    # Worker-facing API (POST /leases)
    # ------------------------------------------------------------------
    def claim(self, data: dict[str, Any]) -> dict[str, Any]:
        """Handle one ``POST /leases`` body (claim or renew).

        Raises
        ------
        FabricBadRequest
            Malformed body (400).
        FabricConflict
            Worker code version differs from the coordinator's (409).
        FabricGone
            Renewal of an unknown, expired or settled lease (410).
        """
        doc = validate_claim(data)
        worker = doc["worker"]
        now = time.time()
        with self._lock:
            wstats = self._worker_locked(worker, now)
            if "renew" in doc:
                return self._renew_locked(doc["renew"], now, wstats)
            if doc["code_version"] != self.code_version:
                raise FabricConflict(
                    f"code version mismatch: worker runs "
                    f"{doc['code_version']!r}, coordinator runs "
                    f"{self.code_version!r} — results would not share "
                    f"cache keys"
                )
            self._expire_locked(now)
            shard = self._next_shard_locked(now)
            if shard is None:
                return {
                    "protocol": PROTOCOL_VERSION,
                    "lease": None,
                    "idle": True,
                    "retry_s": self.idle_retry_s,
                }
            lease = _Lease(
                id=f"l{next(self._lease_ids):05d}",
                worker=worker,
                shard=shard,
                issued_unix=now,
                deadline_unix=now + self.lease_ttl_s,
            )
            shard.leases.append(lease)
            shard.issues += 1
            if shard.issues > 1:
                self._shards_reissued += 1
            self._leases[lease.id] = lease
            self._leases_issued += 1
            wstats["leases"] += 1
            sweep = shard.sweep
            return {
                "protocol": PROTOCOL_VERSION,
                "lease": lease.id,
                "sweep": sweep.id,
                "shard": [sweep.item_docs[key] for key in shard.keys],
                "deadline_unix": lease.deadline_unix,
                "heartbeat_s": self.heartbeat_s,
                "trace": sweep.trace,
            }

    def _renew_locked(
        self, lease_id: str, now: float, wstats: dict[str, Any]
    ) -> dict[str, Any]:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise FabricGone(f"unknown lease {lease_id!r}")
        if lease.completed:
            raise FabricGone(f"lease {lease_id} already submitted its results")
        if lease.expired or now > lease.deadline_unix:
            self._expire_locked(now)
            raise FabricGone(f"lease {lease_id} expired; its shard may be re-issued")
        lease.deadline_unix = now + self.lease_ttl_s
        lease.renewals += 1
        self._leases_renewed += 1
        wstats["renewals"] += 1
        return {
            "protocol": PROTOCOL_VERSION,
            "lease": lease.id,
            "deadline_unix": lease.deadline_unix,
            "heartbeat_s": self.heartbeat_s,
        }

    # ------------------------------------------------------------------
    # Worker-facing API (POST /results)
    # ------------------------------------------------------------------
    def submit_results(self, data: dict[str, Any]) -> dict[str, Any]:
        """Handle one ``POST /results`` body.

        The whole post is validated **before** anything commits: a
        corrupt item rejects the post atomically (400) and leaves the
        sweep untouched.  Committing is first-write-wins per point; the
        winning write also lands in the shared result cache, so every
        point is stored exactly once no matter how many leases raced.
        """
        doc = validate_results(data)
        now = time.time()
        with self._lock:
            wstats = self._worker_locked(doc["worker"], now)
            lease = self._check_lease_locked(doc, now, wstats)
            sweep = lease.shard.sweep
            shard_keys = set(lease.shard.keys)
            try:
                parsed = self._parse_results(doc["results"], lease, shard_keys)
            except FabricError:
                self._results_rejected += 1
                wstats["rejected"] += 1
                raise
            accepted = duplicates = 0
            spans: list[dict[str, Any]] = []
            for key, point, result, meta in parsed:
                if key in sweep.done:
                    duplicates += 1
                    continue
                sweep.done[key] = result
                sweep.meta[key] = {
                    "wall_s": meta.get("wall_s", 0.0),
                    "worker": doc["worker"],
                }
                if sweep.cache is not None:
                    store_result(sweep.cache, point, result)
                spans.extend(meta.get("spans") or [])
                accepted += 1
            lease.completed = True
            lease.shard.done = True
            turnaround = now - lease.issued_unix
            sweep.turnarounds.append(turnaround)
            self._points_completed += accepted
            self._results_duplicate += duplicates
            wstats["points"] += accepted
            wstats["duplicates"] += duplicates
            sweep_done = len(sweep.done) >= len(sweep.items)
            if sweep_done:
                sweep.event.set()
        if self._lease_seconds is not None:
            self._lease_seconds.observe(turnaround)
        for span in spans:
            TRACER.record(span)
        return {
            "protocol": PROTOCOL_VERSION,
            "accepted": accepted,
            "duplicates": duplicates,
            "sweep_done": sweep_done,
        }

    def _check_lease_locked(
        self, doc: dict[str, Any], now: float, wstats: dict[str, Any]
    ) -> _Lease:
        """Resolve the posting lease or reject the post (locked)."""

        def _reject(exc: FabricError) -> FabricError:
            self._results_rejected += 1
            wstats["rejected"] += 1
            return exc

        if doc["code_version"] != self.code_version:
            raise _reject(
                FabricConflict(
                    f"code version mismatch: worker runs "
                    f"{doc['code_version']!r}, coordinator runs "
                    f"{self.code_version!r}"
                )
            )
        lease = self._leases.get(doc["lease"])
        if lease is None:
            raise _reject(
                FabricGone(
                    f"unknown lease {doc['lease']!r} "
                    f"(never issued, or its sweep already finished)"
                )
            )
        if lease.worker != doc["worker"]:
            raise _reject(
                FabricConflict(
                    f"lease {lease.id} belongs to worker {lease.worker!r}, "
                    f"not {doc['worker']!r}"
                )
            )
        if lease.completed:
            raise _reject(
                FabricConflict(
                    f"duplicate post: lease {lease.id} already submitted "
                    f"its results"
                )
            )
        self._expire_locked(now)
        if lease.expired or now > lease.deadline_unix:
            raise _reject(
                FabricGone(
                    f"lease {lease.id} expired before its results arrived; "
                    f"its shard may have been re-issued"
                )
            )
        return lease

    @staticmethod
    def _parse_results(
        items: list[dict[str, Any]], lease: _Lease, shard_keys: set[str]
    ) -> list[tuple[str, ScenarioPoint, PointResult, dict[str, Any]]]:
        """Deserialise and validate every posted item (atomic: all or 400)."""
        parsed = []
        for i, item in enumerate(items):
            try:
                point = ScenarioPoint(**item["point"])
                key = point.canonical()
            except TypeError as exc:
                raise FabricBadRequest(
                    f"results[{i}]: malformed scenario point: {exc}"
                ) from None
            if key not in shard_keys:
                raise FabricBadRequest(
                    f"results[{i}]: point is not part of lease {lease.id}"
                )
            try:
                result = PointResult.from_dict(item["result"])
                # Force-deserialise the embedded schedule so a corrupt
                # payload is rejected here, not when a reducer reads it.
                result.loop_result()
            except (KeyError, TypeError, ValueError) as exc:
                raise FabricBadRequest(
                    f"results[{i}]: corrupt result payload: "
                    f"{type(exc).__name__}: {exc}"
                ) from None
            meta = item.get("meta") or {}
            wall = meta.get("wall_s", 0.0)
            if not isinstance(wall, (int, float)) or isinstance(wall, bool):
                wall = 0.0
            parsed.append(
                (key, point, result, {"wall_s": float(wall), "spans": meta.get("spans")})
            )
        return parsed

    # ------------------------------------------------------------------
    # Lease/shard selection (all locked)
    # ------------------------------------------------------------------
    def _worker_locked(self, worker: str, now: float) -> dict[str, Any]:
        wstats = self._workers.get(worker)
        if wstats is None:
            wstats = {
                "leases": 0,
                "renewals": 0,
                "points": 0,
                "duplicates": 0,
                "rejected": 0,
                "expired": 0,
                "last_seen_unix": now,
            }
            self._workers[worker] = wstats
        wstats["last_seen_unix"] = now
        return wstats

    def _expire_locked(self, now: float) -> None:
        """Expire overdue leases; orphaned shards go back to pending."""
        for lease in list(self._leases.values()):
            if lease.completed or lease.expired or now <= lease.deadline_unix:
                continue
            lease.expired = True
            self._leases_expired += 1
            wstats = self._workers.get(lease.worker)
            if wstats is not None:
                wstats["expired"] += 1
            shard = lease.shard
            if shard.done:
                continue
            others = [
                le for le in shard.leases if le is not lease and le.active(now)
            ]
            if not others and shard not in shard.sweep.pending:
                # Front of the queue: a shard that already cost a failed
                # lease should not also wait behind fresh work.
                shard.sweep.pending.appendleft(shard)

    def _next_shard_locked(self, now: float) -> _Shard | None:
        for sweep in self._sweeps.values():
            while sweep.pending:
                shard = sweep.pending.popleft()
                if not shard.done:
                    return shard
            shard = self._straggler_locked(sweep, now)
            if shard is not None:
                return shard
        return None

    def _straggler_locked(self, sweep: _Sweep, now: float) -> _Shard | None:
        """The slowest re-issuable leased shard, or ``None``.

        Only reached when the sweep has no pending shards (so a worker
        is idle near completion) — the classic straggler window.
        """
        threshold = self.straggler_after_s
        if threshold is None:
            if not sweep.turnarounds:
                return None
            threshold = self.straggler_factor * _median(sweep.turnarounds)
        candidates = []
        for shard in sweep.shards:
            if shard.done:
                continue
            live = [lease for lease in shard.leases if lease.active(now)]
            if not live or len(live) >= self.max_leases_per_shard:
                continue
            age = now - min(lease.issued_unix for lease in live)
            if age >= threshold:
                # -index: deterministic tie-break to the lowest index.
                candidates.append((age, -shard.index, shard))
        if not candidates:
            return None
        return max(candidates)[2]

    # ------------------------------------------------------------------
    # The executor (the run_sweep `execute` hook)
    # ------------------------------------------------------------------
    def execute(
        self,
        misses: list[tuple[str, GridItem]],
        *,
        jobs: int = 1,
        pool: Any = None,
        cache: ResultCache | None = None,
        prior_for: Callable[[ScenarioPoint], tuple[Any, bool]] | None = None,
        meta_out: dict[str, dict[str, Any]] | None = None,
    ) -> dict[str, PointResult]:
        """Execute *misses* on the worker fleet; blocks until complete.

        Signature-compatible with
        :func:`~repro.runner.engine.execute_points` so it plugs into
        ``run_sweep(execute=...)`` unchanged.  ``jobs`` and ``pool`` are
        ignored — parallelism is however many workers are pulling.

        Raises
        ------
        FabricError
            When ``sweep_timeout_s`` elapses or the coordinator is
            closed with the sweep incomplete.
        """
        del jobs, pool
        if not misses:
            return {}
        sweep = self._register_sweep(misses, cache=cache, prior_for=prior_for)
        try:
            with TRACER.span(
                "fabric.sweep",
                sweep=sweep.id,
                points=len(sweep.items),
                shards=len(sweep.shards),
            ):
                self._await_sweep(sweep)
        finally:
            self._unregister_sweep(sweep)
        if meta_out is not None:
            meta_out.update(sweep.meta)
        return dict(sweep.done)

    def _register_sweep(
        self,
        misses: list[tuple[str, GridItem]],
        *,
        cache: ResultCache | None,
        prior_for: Callable[[ScenarioPoint], tuple[Any, bool]] | None = None,
    ) -> _Sweep:
        item_docs: dict[str, dict[str, Any]] = {}
        for key, (point, loop) in misses:
            prior, prior_fb = (None, False)
            if prior_for is not None:
                prior, prior_fb = prior_for(point)
            item_docs[key] = {
                "point": _point_dict(point),
                "loop": loop_to_dict(loop),
                "prior": (
                    PointResult.from_loop_result(
                        prior, fallback=bool(prior_fb)
                    ).to_dict()
                    if prior is not None
                    else None
                ),
            }
        sweep = _Sweep(
            id=f"s{next(self._sweep_ids):05d}",
            items=dict(misses),
            item_docs=item_docs,
            cache=cache if cache is not None else self.cache,
            trace=TRACER.carrier(),
        )
        nshards = max(1, math.ceil(len(misses) / self.shard_size))
        parts = _shard(list(misses), nshards)
        sweep.shards = [
            _Shard(index=i, sweep=sweep, keys=[key for key, _item in part])
            for i, part in enumerate(parts)
        ]
        sweep.pending = deque(sweep.shards)
        with self._lock:
            self._sweeps[sweep.id] = sweep
        return sweep

    def _await_sweep(self, sweep: _Sweep) -> None:
        deadline = (
            time.monotonic() + self.sweep_timeout_s
            if self.sweep_timeout_s is not None
            else None
        )
        while not sweep.event.wait(self.tick_s):
            if self._closed.is_set():
                raise FabricError(
                    f"coordinator closed with sweep {sweep.id} at "
                    f"{len(sweep.done)}/{len(sweep.items)} point(s)"
                )
            with self._lock:
                self._expire_locked(time.time())
            if deadline is not None and time.monotonic() >= deadline:
                raise FabricError(
                    f"distributed sweep {sweep.id} timed out after "
                    f"{self.sweep_timeout_s:g}s with "
                    f"{len(sweep.done)}/{len(sweep.items)} point(s) done"
                )

    def _unregister_sweep(self, sweep: _Sweep) -> None:
        with self._lock:
            self._sweeps.pop(sweep.id, None)
            # Late posts against this sweep's leases now answer 410.
            for shard in sweep.shards:
                for lease in shard.leases:
                    self._leases.pop(lease.id, None)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` fabric block (same ints ``/metrics`` exports)."""
        with self._lock:
            shards_open = sum(
                1
                for sweep in self._sweeps.values()
                for shard in sweep.shards
                if not shard.done
            )
            return {
                "protocol": PROTOCOL_VERSION,
                "code_version": self.code_version,
                "lease_ttl_s": self.lease_ttl_s,
                "shard_size": self.shard_size,
                "sweeps_active": len(self._sweeps),
                "shards_open": shards_open,
                "counters": {
                    "leases_issued": self._leases_issued,
                    "leases_renewed": self._leases_renewed,
                    "leases_expired": self._leases_expired,
                    "shards_reissued": self._shards_reissued,
                    "points_completed": self._points_completed,
                    "results_duplicate": self._results_duplicate,
                    "results_rejected": self._results_rejected,
                },
                "workers": {
                    worker: dict(wstats)
                    for worker, wstats in sorted(self._workers.items())
                },
            }

    def close(self) -> None:
        """Abort in-flight ``execute`` calls (they raise ``FabricError``)."""
        self._closed.set()
