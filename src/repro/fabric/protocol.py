"""Wire protocol of the distributed sweep fabric.

Two POST endpoints, layered on the existing service HTTP front end:

``POST /leases``
    Claim work or renew a lease.  A **claim** body is
    ``{"protocol": 1, "worker": id, "code_version": v}`` and the reply
    is either a shard lease (``lease``, ``sweep``, ``shard`` items,
    ``deadline_unix``, ``heartbeat_s``, ``trace``) or an idle document
    (``{"lease": null, "idle": true, "retry_s": ...}``).  A **renew**
    body is ``{"protocol": 1, "worker": id, "renew": lease_id}`` and
    the reply carries the extended ``deadline_unix``.

``POST /results``
    Stream a completed shard back:
    ``{"protocol": 1, "worker": id, "lease": lease_id,
    "code_version": v, "results": [{"point", "result", "meta"}, ...]}``.
    The reply is ``{"accepted": n, "duplicates": n, "sweep_done": b}``.

Error mapping (the HTTP layer sends ``exc.http_status``):

==========================  ====  =======================================
condition                   code  exception
==========================  ====  =======================================
malformed / corrupt body     400  :class:`FabricBadRequest`
duplicate post, version      409  :class:`FabricConflict`
mismatch
expired / unknown lease      410  :class:`FabricGone`
==========================  ====  =======================================

Validation here is purely structural (types, required keys, unknown
keys); semantic checks — does the lease exist, do the points belong to
the shard, does the payload deserialise — live in the coordinator,
which owns the state those checks need.
"""

from __future__ import annotations

from typing import Any

from ..errors import ServiceError

#: Version of the lease/results wire protocol.  Bump on any breaking
#: change to the request or response schemas; workers and coordinators
#: reject mismatched versions outright.
PROTOCOL_VERSION = 1

#: Upper bound on worker / lease identifier lengths (sanity, not
#: security: ids end up in logs, metrics labels and stats documents).
MAX_ID_LEN = 120


class FabricError(ServiceError):
    """Base class of fabric protocol violations; carries an HTTP status."""

    #: Status the HTTP layer responds with (subclasses override).
    http_status = 500


class FabricBadRequest(FabricError):
    """The request body is malformed or a payload fails to deserialise."""

    http_status = 400


class FabricConflict(FabricError):
    """Duplicate result post, or worker/coordinator code versions differ."""

    http_status = 409


class FabricGone(FabricError):
    """The referenced lease is unknown, expired, or already settled."""

    http_status = 410


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FabricBadRequest(message)


def _check_protocol(data: dict[str, Any]) -> None:
    version = data.get("protocol")
    _require(
        version == PROTOCOL_VERSION,
        f"unsupported protocol version {version!r} "
        f"(this coordinator speaks {PROTOCOL_VERSION})",
    )


def _check_id(data: dict[str, Any], key: str) -> str:
    value = data.get(key)
    _require(
        isinstance(value, str) and 0 < len(value) <= MAX_ID_LEN,
        f"{key!r} must be a non-empty string of at most {MAX_ID_LEN} chars",
    )
    return value


def validate_claim(data: dict[str, Any]) -> dict[str, Any]:
    """Structurally validate a ``POST /leases`` body (claim or renew).

    Returns the validated document; a renew is recognised by the
    presence of ``"renew"`` (and then must not carry ``code_version`` —
    the version was checked when the lease was issued).
    """
    _require(isinstance(data, dict), "lease request must be a JSON object")
    _check_protocol(data)
    _check_id(data, "worker")
    if "renew" in data:
        unknown = sorted(set(data) - {"protocol", "worker", "renew"})
        _require(not unknown, f"unknown lease-renewal field(s): {unknown}")
        _check_id(data, "renew")
        return data
    unknown = sorted(set(data) - {"protocol", "worker", "code_version"})
    _require(not unknown, f"unknown lease-claim field(s): {unknown}")
    code_version = data.get("code_version")
    _require(
        isinstance(code_version, str) and bool(code_version),
        "'code_version' (the worker's cache code version) is required",
    )
    return data


def validate_results(data: dict[str, Any]) -> dict[str, Any]:
    """Structurally validate a ``POST /results`` body.

    Each result item must be an object with ``point`` and ``result``
    objects (and an optional ``meta`` object); whether they deserialise
    into real scenario points and results is the coordinator's call.
    """
    _require(isinstance(data, dict), "results request must be a JSON object")
    _check_protocol(data)
    _check_id(data, "worker")
    _check_id(data, "lease")
    code_version = data.get("code_version")
    _require(
        isinstance(code_version, str) and bool(code_version),
        "'code_version' (the worker's cache code version) is required",
    )
    unknown = sorted(
        set(data) - {"protocol", "worker", "lease", "code_version", "results"}
    )
    _require(not unknown, f"unknown results field(s): {unknown}")
    results = data.get("results")
    _require(
        isinstance(results, list) and bool(results),
        "'results' must be a non-empty list",
    )
    for i, item in enumerate(results):
        _require(
            isinstance(item, dict), f"results[{i}] must be a JSON object"
        )
        _require(
            isinstance(item.get("point"), dict),
            f"results[{i}]['point'] (a scenario point object) is required",
        )
        _require(
            isinstance(item.get("result"), dict),
            f"results[{i}]['result'] (a point result object) is required",
        )
        meta = item.get("meta")
        _require(
            meta is None or isinstance(meta, dict),
            f"results[{i}]['meta'] must be an object when given",
        )
    return data
