"""The fabric worker: pull shards, execute, post results, repeat.

A :class:`FabricWorker` is the whole client side of the fabric protocol
in one loop: claim a lease (``POST /leases``), execute the shard's
points one at a time through the exact same batch core the local
``--jobs`` path uses (:func:`~repro.runner.engine._run_batch`), renew
the lease between points when a heartbeat is due, then post the shard's
results (``POST /results``) and go claim the next one.  Because the
worker runs the same code version as the coordinator (enforced at claim
time) and the same deterministic per-point scheduler, whatever it
computes is byte-identical to what any other worker — or the local path
— would have computed for the same points.

Failure handling is deliberately boring: a lost or expired lease
(HTTP 410) just drops the shard on the floor, because the coordinator
has already re-issued it; a duplicate-post conflict (409) is counted
and ignored, because first-write-wins upstream means someone else's
identical bytes already landed.  :class:`ChaosWorker` in the test tree
subclasses this to inject every one of those failures on purpose.

``repro-vliw worker --coordinator URL`` wraps this class; ``--fail-after
N`` makes it die (raise :class:`WorkerDied`) after executing N points,
which is how CI kills a worker mid-shard without any process gymnastics.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable
from urllib.parse import urlsplit

from ..errors import ServiceError
from ..runner.cache import default_code_version
from ..runner.engine import _run_batch
from ..service.client import ClientError, ServiceClient
from ..service.server import DEFAULT_HOST, DEFAULT_PORT
from .protocol import PROTOCOL_VERSION

__all__ = ["FabricWorker", "WorkerDied", "WorkerStats", "client_from_url"]


class WorkerDied(ServiceError):
    """Injected worker death (``--fail-after``); the lease is abandoned."""


def client_from_url(url: str, *, timeout: float = 120.0) -> ServiceClient:
    """A :class:`ServiceClient` for a coordinator URL.

    Accepts ``http://host:port``, ``host:port`` or bare ``host`` (the
    default port fills the gaps).  Anything that is not plain HTTP is
    rejected — the fabric speaks the service's JSON-over-HTTP only.
    """
    raw = url if "//" in url else f"http://{url}"
    parts = urlsplit(raw)
    if parts.scheme not in ("", "http"):
        raise ValueError(f"unsupported coordinator URL scheme {parts.scheme!r}")
    return ServiceClient(
        parts.hostname or DEFAULT_HOST,
        parts.port or DEFAULT_PORT,
        timeout=timeout,
    )


@dataclass
class WorkerStats:
    """What one worker run did, for logs and test assertions."""

    worker: str
    shards: int = 0
    points: int = 0
    posted: int = 0
    duplicates: int = 0
    renewals: int = 0
    lost_leases: int = 0
    rejected_posts: int = 0
    idle_polls: int = 0

    def render(self) -> str:
        return (
            f"worker {self.worker}: {self.shards} shard(s), "
            f"{self.points} point(s) executed, {self.posted} accepted, "
            f"{self.duplicates} duplicate(s), {self.renewals} renewal(s), "
            f"{self.lost_leases} lost lease(s), "
            f"{self.rejected_posts} rejected post(s)"
        )


class FabricWorker:
    """One pull-based sweep worker (the ``repro-vliw worker`` loop).

    Parameters
    ----------
    coordinator:
        Coordinator URL (``http://host:port``) or a ready
        :class:`~repro.service.client.ServiceClient`.
    worker_id:
        Stable identity in leases/stats; defaults to pid + random suffix.
    code_version:
        Cache code version announced at claim time; defaults to this
        process's :func:`~repro.runner.cache.default_code_version` —
        override only to *test* the mismatch rejection.
    max_shards:
        Stop after completing this many shards (``--max-shards``).
    fail_after:
        Die (raise :class:`WorkerDied`) after executing this many points
        — possibly mid-shard, which is the point (``--fail-after``).
    idle_exit_s:
        Exit cleanly after this long with no work on offer; ``None``
        polls forever (until the coordinator goes away).
    poll_s:
        Idle poll fallback interval (the coordinator's ``retry_s`` hint
        wins when present).
    progress:
        Optional ``callable(str)`` for per-shard progress lines.
    """

    def __init__(
        self,
        coordinator: str | ServiceClient,
        *,
        worker_id: str | None = None,
        code_version: str | None = None,
        max_shards: int | None = None,
        fail_after: int | None = None,
        idle_exit_s: float | None = None,
        poll_s: float = 0.05,
        timeout: float = 120.0,
        wait_healthy_s: float = 10.0,
        progress: Callable[[str], None] | None = None,
    ):
        if isinstance(coordinator, ServiceClient):
            self.client = coordinator
        else:
            self.client = client_from_url(coordinator, timeout=timeout)
        self.worker_id = worker_id or f"w-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.code_version = code_version or default_code_version()
        self.max_shards = max_shards
        self.fail_after = fail_after
        self.idle_exit_s = idle_exit_s
        self.poll_s = poll_s
        self.wait_healthy_s = wait_healthy_s
        self.progress = progress
        self.stats = WorkerStats(worker=self.worker_id)
        self._executed = 0

    # ------------------------------------------------------------------
    def run(self) -> WorkerStats:
        """Pull and execute shards until there is a reason to stop.

        Stops cleanly on ``max_shards``, ``idle_exit_s`` or coordinator
        shutdown (503/transport failure once healthy).  Raises
        :class:`WorkerDied` on injected death and :class:`ClientError`
        on fatal protocol errors (e.g. 409 code-version mismatch).
        """
        if not self.client.wait_until_healthy(timeout=self.wait_healthy_s):
            raise ClientError(
                0, f"coordinator {self.client.base_url} never became healthy"
            )
        self._say(f"worker {self.worker_id} pulling from {self.client.base_url}")
        idle_since: float | None = None
        while True:
            if self.max_shards is not None and self.stats.shards >= self.max_shards:
                self._say(f"reached --max-shards {self.max_shards}; exiting")
                break
            try:
                doc = self.client.lease(
                    {
                        "protocol": PROTOCOL_VERSION,
                        "worker": self.worker_id,
                        "code_version": self.code_version,
                    }
                )
            except ClientError as exc:
                if exc.status in (0, 503):
                    # Coordinator shutting down (or gone): a clean stop.
                    self._say(f"coordinator unavailable ({exc}); exiting")
                    break
                raise
            if doc.get("lease"):
                idle_since = None
                self._run_lease(doc)
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                self.idle_exit_s is not None
                and now - idle_since >= self.idle_exit_s
            ):
                self._say(f"idle for {self.idle_exit_s:g}s; exiting")
                break
            self.stats.idle_polls += 1
            time.sleep(float(doc.get("retry_s") or self.poll_s))
        return self.stats

    # ------------------------------------------------------------------
    def _run_lease(self, doc: dict[str, Any]) -> None:
        results = self._execute_shard(doc)
        if results is None:
            return  # lease lost mid-shard; the coordinator re-issues
        self._post(doc, results)
        self.stats.shards += 1
        self._say(
            f"lease {doc['lease']}: {len(results)} point(s) done "
            f"({self.stats.shards} shard(s) total)"
        )

    def _execute_shard(
        self, doc: dict[str, Any]
    ) -> list[dict[str, Any]] | None:
        """Execute the leased items; ``None`` means the lease was lost."""
        heartbeat = float(doc.get("heartbeat_s") or 1.0)
        last_beat = time.monotonic()
        results: list[dict[str, Any]] = []
        for item in doc["shard"]:
            if self.fail_after is not None and self._executed >= self.fail_after:
                raise WorkerDied(
                    f"worker {self.worker_id}: injected failure after "
                    f"{self._executed} point(s) (--fail-after)"
                )
            if time.monotonic() - last_beat >= heartbeat:
                if not self._renew(doc):
                    return None
                last_beat = time.monotonic()
            # One-point batches keep heartbeats timely and make injected
            # deaths land *between* points, i.e. genuinely mid-shard.
            (_key, payload, meta) = _run_batch(
                [item], None, None, doc.get("trace")
            )[0]
            self._executed += 1
            self.stats.points += 1
            results.append(
                {"point": item["point"], "result": payload, "meta": meta}
            )
        return results

    def _renew(self, doc: dict[str, Any]) -> bool:
        try:
            self.client.lease(
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "renew": doc["lease"],
                }
            )
        except ClientError as exc:
            if exc.status in (0, 410):
                self.stats.lost_leases += 1
                self._say(f"lease {doc['lease']} lost ({exc}); dropping shard")
                return False
            raise
        self.stats.renewals += 1
        return True

    def _post(self, doc: dict[str, Any], results: list[dict[str, Any]]) -> None:
        try:
            reply = self.client.results(
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "lease": doc["lease"],
                    "code_version": self.code_version,
                    "results": results,
                }
            )
        except ClientError as exc:
            if exc.status in (409, 410):
                # Someone else's identical bytes won, or we outlived the
                # lease: either way the sweep is fine without this post.
                self.stats.rejected_posts += 1
                self._say(f"post for lease {doc['lease']} rejected ({exc})")
                return
            raise
        self.stats.posted += int(reply.get("accepted", 0))
        self.stats.duplicates += int(reply.get("duplicates", 0))

    def _say(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)
