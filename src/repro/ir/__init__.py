"""Loop intermediate representation: operations, dependence graphs, loops."""

from .builder import LoopBuilder, Value
from .ddg import Dependence, DependenceGraph, DepKind, merge_graphs
from .frontend import LOOP_SUFFIX, parse_file, parse_program
from .loop import MIN_MODULO_TRIP_COUNT, Loop, Program
from .operation import DEFAULT_CATALOG, FuClass, OpCatalog, Opcode, Operation
from .serialize import (
    config_from_dict,
    config_to_dict,
    dumps,
    graph_from_dict,
    graph_to_dict,
    loads,
    loop_from_dict,
    loop_to_dict,
    program_from_dict,
    program_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from .unroll import (
    copy_of,
    count_cross_copy_deps,
    original_node,
    unroll_graph,
)

__all__ = [
    "DEFAULT_CATALOG",
    "LOOP_SUFFIX",
    "MIN_MODULO_TRIP_COUNT",
    "Dependence",
    "DependenceGraph",
    "DepKind",
    "FuClass",
    "Loop",
    "LoopBuilder",
    "OpCatalog",
    "Opcode",
    "Operation",
    "Program",
    "Value",
    "config_from_dict",
    "config_to_dict",
    "copy_of",
    "dumps",
    "graph_from_dict",
    "graph_to_dict",
    "loads",
    "loop_from_dict",
    "loop_to_dict",
    "program_from_dict",
    "program_to_dict",
    "schedule_from_dict",
    "schedule_to_dict",
    "count_cross_copy_deps",
    "merge_graphs",
    "original_node",
    "parse_file",
    "parse_program",
    "unroll_graph",
]
