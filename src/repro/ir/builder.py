"""A small fluent DSL for writing loop bodies by hand.

Example -- ``y[i] = a * x[i] + y[i]`` (daxpy)::

    b = LoopBuilder("daxpy")
    x = b.load("x[i]")
    y = b.load("y[i]")
    ax = b.fmul(x, b.live_in("a"), tag="a*x")
    s = b.fadd(ax, y, tag="a*x+y")
    b.store(s, tag="y[i]")
    graph = b.build()

Values produced outside the loop (live-ins) do not become graph nodes: they
are loop invariants held in registers and never travel over a bus, matching
how modulo schedulers treat invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GraphError
from .ddg import DepKind, DependenceGraph
from .operation import DEFAULT_CATALOG, OpCatalog


@dataclass(frozen=True)
class Value:
    """Handle to a value usable as an operand inside the builder."""

    node_id: int | None  # None for live-ins / constants
    tag: str = ""

    @property
    def is_live_in(self) -> bool:
        return self.node_id is None


class LoopBuilder:
    """Builds a :class:`DependenceGraph` through named operation helpers."""

    def __init__(self, name: str = "loop", catalog: OpCatalog = DEFAULT_CATALOG):
        self.graph = DependenceGraph(name, catalog)
        self._built = False

    # -- operand sources -------------------------------------------------
    def live_in(self, tag: str = "") -> Value:
        """A loop-invariant input (no node, no dependence)."""
        return Value(None, tag)

    const = live_in  # constants behave identically

    # -- generic op ------------------------------------------------------
    def op(
        self,
        opcode: str,
        *operands: Value,
        tag: str = "",
        carried: dict[Value, int] | None = None,
    ) -> Value:
        """Add an operation consuming *operands*.

        ``carried`` maps an operand to a loop-carried distance: the value is
        consumed from that many iterations ago.  Cross-iteration uses of a
        value produced *later* in the body are expressed by calling
        :meth:`carried_use` after both nodes exist.
        """
        self._check_open()
        node = self.graph.add_operation(opcode, tag)
        carried = carried or {}
        for operand in operands:
            if operand.is_live_in:
                continue
            distance = carried.get(operand, 0)
            self.graph.add_dependence(operand.node_id, node, distance=distance)
        return Value(node, tag)

    # -- convenience wrappers (cover the default catalog) ----------------
    def load(self, tag: str = "", addr: Value | None = None) -> Value:
        args = (addr,) if addr is not None else ()
        return self.op("load", *args, tag=tag)

    def store(self, value: Value, tag: str = "", addr: Value | None = None) -> Value:
        args = (value, addr) if addr is not None else (value,)
        return self.op("store", *args, tag=tag)

    def iadd(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("iadd", a, b, tag=tag)

    def isub(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("isub", a, b, tag=tag)

    def imul(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("imul", a, b, tag=tag)

    def iaddr(self, *args: Value, tag: str = "") -> Value:
        return self.op("iaddr", *args, tag=tag)

    def fadd(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("fadd", a, b, tag=tag)

    def fsub(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("fsub", a, b, tag=tag)

    def fmul(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("fmul", a, b, tag=tag)

    def fdiv(self, a: Value, b: Value, tag: str = "") -> Value:
        return self.op("fdiv", a, b, tag=tag)

    def fsqrt(self, a: Value, tag: str = "") -> Value:
        return self.op("fsqrt", a, tag=tag)

    def gen(self, *args: Value, tag: str = "") -> Value:
        return self.op("gen", *args, tag=tag)

    # -- explicit dependences --------------------------------------------
    def carried_use(self, producer: Value, consumer: Value, distance: int) -> None:
        """Flow dependence ``producer -> consumer`` at a carried distance.

        Use for recurrences where the producing node appears after the
        consuming node in program order (e.g. ``s`` consumed at the top of
        the body and redefined at the bottom).
        """
        self._check_open()
        if producer.is_live_in or consumer.is_live_in:
            raise GraphError("carried_use: both endpoints must be loop operations")
        self.graph.add_dependence(producer.node_id, consumer.node_id, distance=distance)

    def mem_order(self, first: Value, second: Value, distance: int = 0) -> None:
        """Memory-ordering edge (store/load serialisation)."""
        self._check_open()
        if first.is_live_in or second.is_live_in:
            raise GraphError("mem_order: both endpoints must be loop operations")
        self.graph.add_dependence(
            first.node_id, second.node_id, distance=distance, kind=DepKind.MEM
        )

    # -- finalise ----------------------------------------------------------
    def build(self, validate: bool = True) -> DependenceGraph:
        """Return the finished graph (optionally validated)."""
        self._check_open()
        self._built = True
        if validate:
            self.graph.validate()
        return self.graph

    def _check_open(self) -> None:
        if self._built:
            raise GraphError("LoopBuilder already built; create a new builder")
