"""Data-dependence graphs for modulo scheduling.

A :class:`DependenceGraph` is a multigraph whose nodes are
:class:`~repro.ir.operation.Operation` records and whose edges carry the pair
``(latency, distance)`` used by modulo scheduling: a dependence
``u -> v`` with distance *d* means operation *v* of iteration ``i + d``
consumes the value produced by operation *u* of iteration ``i``; in a
schedule with initiation interval II it imposes::

    sigma(v) + II * d  >=  sigma(u) + latency

Edges are classified by :class:`DepKind`.  Only *flow* dependences move a
register value and therefore may require an inter-cluster communication;
anti/output/memory-ordering edges constrain timing but never use a bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from ..errors import GraphError
from .operation import DEFAULT_CATALOG, OpCatalog, Operation


class DepKind(enum.Enum):
    """Classification of a dependence edge."""

    FLOW = "flow"  # true (read-after-write) register dependence
    ANTI = "anti"  # write-after-read
    OUTPUT = "output"  # write-after-write
    MEM = "mem"  # memory ordering

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Dependence:
    """One edge of a dependence graph.

    ``latency`` is usually the producer's opcode latency for flow edges and
    a small constant for ordering edges, but it is stored explicitly so
    graphs stay meaningful if catalogs change.
    """

    src: int
    dst: int
    latency: int
    distance: int = 0
    kind: DepKind = DepKind.FLOW

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise GraphError(f"dependence {self.src}->{self.dst}: negative distance")
        if self.latency < 0:
            raise GraphError(f"dependence {self.src}->{self.dst}: negative latency")

    @property
    def is_loop_carried(self) -> bool:
        return self.distance > 0

    @property
    def moves_value(self) -> bool:
        """Whether the edge transports a register value (may need a bus)."""
        return self.kind is DepKind.FLOW

    def __str__(self) -> str:
        return (
            f"{self.src}->{self.dst} (lat={self.latency}, d={self.distance},"
            f" {self.kind.value})"
        )


class DependenceGraph:
    """Mutable data-dependence graph of one innermost loop body.

    Nodes are added through :meth:`add_operation` and referenced everywhere
    by their dense integer id.  Multiple edges between the same pair of
    nodes are allowed (e.g. a flow and an anti dependence).
    """

    def __init__(self, name: str = "loop", catalog: OpCatalog = DEFAULT_CATALOG):
        self.name = name
        self.catalog = catalog
        self._nodes: dict[int, Operation] = {}
        self._edges: list[Dependence] = []
        self._succs: dict[int, list[Dependence]] = {}
        self._preds: dict[int, list[Dependence]] = {}
        self._flow_out_cache: dict[int, tuple[Dependence, ...]] | None = None
        self._flow_in_cache: dict[int, tuple[Dependence, ...]] | None = None
        self._derived: dict[object, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(self, opcode_name: str, tag: str = "") -> int:
        """Append an operation; returns its node id."""
        opcode = self.catalog[opcode_name]
        node_id = len(self._nodes)
        op = Operation(node_id, opcode, tag)
        self._nodes[node_id] = op
        self._succs[node_id] = []
        self._preds[node_id] = []
        self._invalidate_caches()
        return node_id

    def add_dependence(
        self,
        src: int,
        dst: int,
        *,
        distance: int = 0,
        kind: DepKind = DepKind.FLOW,
        latency: int | None = None,
    ) -> Dependence:
        """Add an edge ``src -> dst``.

        For flow edges the latency defaults to the producer's opcode
        latency; ordering edges default to latency 1 (store->load) so the
        consumer issues strictly later, matching conventional memory
        disambiguation conservatism.
        """
        if src not in self._nodes or dst not in self._nodes:
            raise GraphError(f"edge {src}->{dst}: unknown node")
        if latency is None:
            latency = self._nodes[src].latency if kind is DepKind.FLOW else 1
        if kind is DepKind.FLOW and not self._nodes[src].writes_register:
            raise GraphError(
                f"edge {src}->{dst}: source {self._nodes[src]} produces no register value"
            )
        dep = Dependence(src, dst, latency, distance, kind)
        self._edges.append(dep)
        self._succs[src].append(dep)
        self._preds[dst].append(dep)
        self._invalidate_caches()
        return dep

    def _invalidate_caches(self) -> None:
        self._flow_out_cache = None
        self._flow_in_cache = None
        if self._derived:
            self._derived.clear()

    def derived(self, key, build):
        """Memoise ``build()`` against this graph's current content.

        Schedulers re-derive orderings, timing priorities and MII bounds
        for the *same* graph on every II attempt; memoising them on the
        graph (invalidated by any mutation) makes retries nearly free.
        The cached value is shared — callers must not mutate it.
        """
        try:
            return self._derived[key]
        except KeyError:
            value = self._derived[key] = build()
            return value

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    def operation(self, node_id: int) -> Operation:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GraphError(f"unknown node id {node_id}") from None

    def operations(self) -> Iterator[Operation]:
        return iter(self._nodes.values())

    @property
    def edges(self) -> list[Dependence]:
        return list(self._edges)

    def successors(self, node_id: int) -> list[Dependence]:
        """Outgoing edges of *node_id*."""
        return list(self._succs[node_id])

    def predecessors(self, node_id: int) -> list[Dependence]:
        """Incoming edges of *node_id*."""
        return list(self._preds[node_id])

    def neighbors(self, node_id: int) -> set[int]:
        """Node ids adjacent to *node_id* in either direction."""
        out = {d.dst for d in self._succs[node_id]}
        out.update(d.src for d in self._preds[node_id])
        out.discard(node_id)
        return out

    def flow_consumers(self, node_id: int) -> tuple[Dependence, ...]:
        """Flow edges leaving *node_id* (consumers of its value).

        Cached per graph: schedulers call this in their inner loops.
        """
        if self._flow_out_cache is None:
            self._flow_out_cache = {
                n: tuple(d for d in succs if d.moves_value)
                for n, succs in self._succs.items()
            }
        return self._flow_out_cache[node_id]

    def flow_producers(self, node_id: int) -> tuple[Dependence, ...]:
        """Flow edges entering *node_id* (values it reads).

        Cached per graph: schedulers call this in their inner loops.
        """
        if self._flow_in_cache is None:
            self._flow_in_cache = {
                n: tuple(d for d in preds if d.moves_value)
                for n, preds in self._preds.items()
            }
        return self._flow_in_cache[node_id]

    def op_count_by_class(self) -> dict:
        """Number of operations per functional-unit class."""
        counts: dict = {}
        for op in self._nodes.values():
            counts[op.fu_class] = counts.get(op.fu_class, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a :class:`networkx.MultiDiGraph` (nodes keep ops)."""
        g = nx.MultiDiGraph(name=self.name)
        for node_id, op in self._nodes.items():
            g.add_node(node_id, op=op)
        for dep in self._edges:
            g.add_edge(
                dep.src,
                dep.dst,
                latency=dep.latency,
                distance=dep.distance,
                kind=dep.kind,
            )
        return g

    def strongly_connected_components(self) -> list[set[int]]:
        """SCCs of the graph (recurrences are the SCCs with a cycle)."""
        return [set(c) for c in nx.strongly_connected_components(self.to_networkx())]

    def validate(self) -> None:
        """Raise :class:`GraphError` on structural problems.

        Checks: edge endpoints exist (guaranteed by construction), every
        zero-distance subgraph is acyclic (a cycle entirely at distance 0
        can never be scheduled), and flow-edge latencies match producers.
        """
        zero = nx.DiGraph()
        zero.add_nodes_from(self._nodes)
        for dep in self._edges:
            if dep.distance == 0:
                zero.add_edge(dep.src, dep.dst)
        if not nx.is_directed_acyclic_graph(zero):
            cycle = nx.find_cycle(zero)
            raise GraphError(f"zero-distance cycle (unschedulable): {cycle}")
        for dep in self._edges:
            if dep.kind is DepKind.FLOW:
                expected = self._nodes[dep.src].latency
                if dep.latency < expected:
                    raise GraphError(
                        f"flow edge {dep}: latency below producer latency {expected}"
                    )

    def copy(self, name: str | None = None) -> "DependenceGraph":
        """Deep-enough copy (operations are immutable)."""
        g = DependenceGraph(name or self.name, self.catalog)
        for op in self._nodes.values():
            new_id = g.add_operation(op.opcode.name, op.tag)
            assert new_id == op.node_id
        for dep in self._edges:
            g.add_dependence(
                dep.src,
                dep.dst,
                distance=dep.distance,
                kind=dep.kind,
                latency=dep.latency,
            )
        return g

    # ------------------------------------------------------------------
    # Debugging helpers
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable dump."""
        lines = [f"DependenceGraph {self.name!r}: {len(self)} ops, {len(self._edges)} deps"]
        for op in self._nodes.values():
            lines.append(f"  {op}")
        for dep in self._edges:
            lines.append(f"  {dep}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """GraphViz dot text (loop-carried edges dashed)."""
        lines = [f'digraph "{self.name}" {{']
        for op in self._nodes.values():
            lines.append(f'  n{op.node_id} [label="{op}"];')
        for dep in self._edges:
            style = "dashed" if dep.is_loop_carried else "solid"
            label = f"{dep.latency},{dep.distance}"
            lines.append(
                f'  n{dep.src} -> n{dep.dst} [label="{label}", style={style}];'
            )
        lines.append("}")
        return "\n".join(lines)


def merge_graphs(name: str, graphs: Iterable[DependenceGraph]) -> DependenceGraph:
    """Disjoint union of several graphs (used to build large loop bodies)."""
    graphs = list(graphs)
    if not graphs:
        raise GraphError("merge_graphs: no graphs given")
    catalog = graphs[0].catalog
    merged = DependenceGraph(name, catalog)
    for g in graphs:
        offset = len(merged)
        for op in g.operations():
            merged.add_operation(op.opcode.name, op.tag)
        for dep in g.edges:
            merged.add_dependence(
                dep.src + offset,
                dep.dst + offset,
                distance=dep.distance,
                kind=dep.kind,
                latency=dep.latency,
            )
    return merged
