"""Textual loop-IR frontend: parse ``.loop`` programs into :class:`Loop`.

The format is a small RISC-like assembly for one innermost loop body,
organised as three basic blocks in the classic software-pipelining shape
(preamble / body / postamble):

.. code-block:: text

    # y[i] = a * x[i] + y[i], 100 iterations        (comments with '#')
    loop daxpy           # optional: graph name
    trip 100             # optional: trip count (default 100)

    BB0:                 # loop-invariant inputs (live-ins / constants)
        a = live
        q = const 2.5

    BB1:                 # the loop body: dest = opcode operands...
        x  = load x[i]
        y  = load y[i]
        ax = fmul x, a
        s  = fadd ax, y
        store s, y[i]

    BB2:                 # must be empty: the loop writes no live-outs
                         # beyond memory (stores happen in BB1)

Instruction forms inside ``BB1``:

``dest = OPCODE op1, op2, ...``
    Any opcode of the machine catalogue (``fadd``, ``fmul``, ``iadd``,
    ``gen``, ...).  Operands are previously defined names; a carried use
    from ``N`` iterations ago is written ``name@N`` (``N >= 1``), and may
    forward-reference a name defined later in the body — that is how
    recurrences are spelled, e.g. ``s = fadd m, s@1``.
``dest = load LABEL`` / ``dest = load LABEL, addr``
    A memory load; ``LABEL`` is a free-form memory reference used as the
    node tag.  The optional second operand is an address value.
``store value, LABEL`` / ``store value, LABEL, addr``
    A memory store (no destination: stores produce no register value).
``order first, second`` / ``order first, second, N``
    An explicit memory-ordering edge at iteration distance ``N``
    (default 0), serialising two memory operations.

Every malformed construct raises :class:`~repro.errors.ParseError` with
the 1-based line and column of the offending token.  The result is a
:class:`~repro.ir.loop.Loop` whose graph validates and content-hashes
exactly like a hand-built one, so parsed programs flow through caching,
sweeps and the fabric unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ParseError
from .builder import LoopBuilder, Value
from .loop import Loop
from .operation import DEFAULT_CATALOG, OpCatalog

__all__ = ["parse_program", "parse_file", "LOOP_SUFFIX"]

#: File extension the CLI treats as a textual loop program.
LOOP_SUFFIX = ".loop"

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_OPERAND_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)(@(\d+))?$")
_SECTION_RE = re.compile(r"(BB[0-9]+):\s*$")


@dataclass
class _Operand:
    name: str
    distance: int
    col: int


@dataclass
class _Inst:
    kind: str  # "op" | "load" | "store" | "order"
    lineno: int
    col: int
    dest: str | None = None
    opcode: str | None = None
    operands: list[_Operand] = field(default_factory=list)
    label: str = ""  # memory reference label for load/store
    distance: int = 0  # for "order"


class _Parser:
    def __init__(self, text: str, source: str, catalog: OpCatalog):
        self.lines = text.splitlines()
        self.source = source
        self.catalog = catalog
        self.loop_name: str | None = None
        self.trip: int | None = None
        self.live_ins: dict[str, int] = {}  # name -> lineno
        self.insts: list[_Inst] = []
        self.defs: dict[str, int] = {}  # dest name -> index into insts

    def err(self, message: str, lineno: int, col: int):
        raise ParseError(message, source=self.source, line=lineno, col=col)

    # -- small lexing helpers -------------------------------------------
    @staticmethod
    def _strip_comment(line: str) -> str:
        cut = line.find("#")
        return line if cut < 0 else line[:cut]

    def _operand(self, text: str, lineno: int, col: int) -> _Operand:
        m = _OPERAND_RE.match(text)
        if not m:
            self.err(f"malformed operand {text!r} (expected NAME or NAME@N)",
                     lineno, col)
        name, _, dist = m.groups()
        distance = int(dist) if dist is not None else 0
        if dist is not None and distance < 1:
            self.err(
                f"carried distance must be >= 1 in {text!r} "
                f"(@0 is just a plain use)",
                lineno, col,
            )
        return _Operand(name, distance, col)

    def _split_fields(self, text: str, base_col: int) -> list[tuple[str, int]]:
        """Comma-split with per-field 1-based column positions."""
        fields = []
        pos = 0
        for part in text.split(","):
            stripped = part.strip()
            offset = part.index(stripped) if stripped else 0
            fields.append((stripped, base_col + pos + offset))
            pos += len(part) + 1
        return fields

    # -- line dispatch ---------------------------------------------------
    def parse(self) -> None:
        section: str | None = None
        for lineno, raw in enumerate(self.lines, start=1):
            line = self._strip_comment(raw)
            stripped = line.strip()
            if not stripped:
                continue
            col = line.index(stripped) + 1
            m = _SECTION_RE.match(stripped)
            if m:
                order = {"BB0": 0, "BB1": 1, "BB2": 2}
                if m.group(1) not in order:
                    self.err(f"unknown section {m.group(1)!r}", lineno, col)
                if section is not None and order[m.group(1)] <= order[section]:
                    self.err(
                        f"section {m.group(1)!r} out of order (after {section!r})",
                        lineno, col,
                    )
                section = m.group(1)
                continue
            if section is None:
                self._parse_directive(stripped, lineno, col)
            elif section == "BB0":
                self._parse_live_in(stripped, lineno, col)
            elif section == "BB1":
                self._parse_instruction(stripped, lineno, col)
            else:  # BB2
                self.err(
                    "BB2 must be empty: the loop body ends at BB1 "
                    "(live-outs leave through memory stores)",
                    lineno, col,
                )
        if not self.insts:
            self.err("program has no BB1 instructions", len(self.lines) or 1, 1)

    def _parse_directive(self, text: str, lineno: int, col: int) -> None:
        parts = text.split(None, 1)
        if parts[0] == "loop":
            if len(parts) != 2 or not _NAME_RE.fullmatch(parts[1].strip()):
                self.err("expected 'loop NAME'", lineno, col)
            self.loop_name = parts[1].strip()
        elif parts[0] == "trip":
            try:
                self.trip = int(parts[1].strip())
            except (IndexError, ValueError):
                self.err("expected 'trip N' with integer N", lineno, col)
            if self.trip < 1:
                self.err(f"trip count must be >= 1, got {self.trip}", lineno, col)
        else:
            self.err(
                f"unexpected {parts[0]!r} before BB0: (only 'loop NAME' and "
                f"'trip N' directives may appear here)",
                lineno, col,
            )

    def _check_fresh(self, name: str, lineno: int, col: int) -> None:
        if name in self.live_ins:
            self.err(f"duplicate definition of {name!r} (first a live-in)",
                     lineno, col)
        if name in self.defs:
            first = self.insts[self.defs[name]].lineno
            self.err(
                f"duplicate definition of {name!r} (first defined on line {first})",
                lineno, col,
            )

    def _parse_live_in(self, text: str, lineno: int, col: int) -> None:
        m = re.match(r"([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(live|const)(\s+\S+)?\s*$",
                     text)
        if not m:
            self.err(
                "expected 'name = live' or 'name = const [literal]' in BB0",
                lineno, col,
            )
        name = m.group(1)
        self._check_fresh(name, lineno, col)
        self.live_ins[name] = lineno

    def _parse_instruction(self, text: str, lineno: int, col: int) -> None:
        head = text.split(None, 1)
        if head[0] == "store":
            self._parse_store(head[1] if len(head) > 1 else "", lineno, col)
            return
        if head[0] == "order":
            self._parse_order(head[1] if len(head) > 1 else "", lineno, col)
            return
        if "=" not in text:
            self.err(
                f"expected 'dest = opcode ...', 'store ...' or 'order ...', "
                f"got {text!r}",
                lineno, col,
            )
        dest_text, rhs = text.split("=", 1)
        dest = dest_text.strip()
        if not _NAME_RE.fullmatch(dest):
            self.err(f"bad destination name {dest!r}", lineno, col)
        self._check_fresh(dest, lineno, col)
        rhs_col = col + text.index("=") + 1 + (len(rhs) - len(rhs.lstrip()))
        rhs = rhs.strip()
        if not rhs:
            self.err(f"missing right-hand side for {dest!r}", lineno, rhs_col)
        parts = rhs.split(None, 1)
        opcode = parts[0]
        arg_text = parts[1] if len(parts) > 1 else ""
        arg_col = rhs_col + (rhs.index(arg_text) if arg_text else 0)
        if opcode == "load":
            self._parse_load(dest, arg_text, lineno, col, arg_col)
            return
        if opcode in ("live", "const"):
            self.err(
                f"{opcode!r} definitions belong in BB0, not BB1", lineno, rhs_col
            )
        if opcode not in self.catalog:
            self.err(
                f"unknown opcode {opcode!r}; catalogue: "
                f"{sorted(self.catalog.names())}",
                lineno, rhs_col,
            )
        if not self.catalog[opcode].writes_register:
            self.err(
                f"opcode {opcode!r} produces no register value; "
                f"it cannot define {dest!r}",
                lineno, rhs_col,
            )
        inst = _Inst("op", lineno, col, dest=dest, opcode=opcode)
        for text_field, field_col in self._split_fields(arg_text, arg_col):
            if not text_field:
                self.err("empty operand", lineno, field_col)
            inst.operands.append(self._operand(text_field, lineno, field_col))
        self.defs[dest] = len(self.insts)
        self.insts.append(inst)

    def _parse_load(
        self, dest: str, arg_text: str, lineno: int, col: int, arg_col: int
    ) -> None:
        inst = _Inst("load", lineno, col, dest=dest, opcode="load")
        fields = self._split_fields(arg_text, arg_col) if arg_text.strip() else []
        if len(fields) > 2:
            self.err("load takes at most 'LABEL, addr'", lineno, fields[2][1])
        if fields:
            inst.label = fields[0][0]
        if len(fields) == 2:
            inst.operands.append(self._operand(fields[1][0], lineno, fields[1][1]))
        self.defs[dest] = len(self.insts)
        self.insts.append(inst)

    def _parse_store(self, arg_text: str, lineno: int, col: int) -> None:
        if not arg_text.strip():
            self.err("store needs a value operand", lineno, col)
        fields = self._split_fields(arg_text, col + len("store "))
        if len(fields) > 3:
            self.err("store takes at most 'value, LABEL, addr'",
                     lineno, fields[3][1])
        inst = _Inst("store", lineno, col, opcode="store")
        inst.operands.append(self._operand(fields[0][0], lineno, fields[0][1]))
        if len(fields) >= 2:
            inst.label = fields[1][0]
        if len(fields) == 3:
            inst.operands.append(self._operand(fields[2][0], lineno, fields[2][1]))
        self.insts.append(inst)

    def _parse_order(self, arg_text: str, lineno: int, col: int) -> None:
        fields = self._split_fields(arg_text, col + len("order "))
        if len(fields) not in (2, 3):
            self.err("expected 'order first, second[, distance]'", lineno, col)
        inst = _Inst("order", lineno, col)
        for text_field, field_col in fields[:2]:
            operand = self._operand(text_field, lineno, field_col)
            if operand.distance:
                self.err("order operands are plain names; the distance is the "
                         "optional third field", lineno, field_col)
            inst.operands.append(operand)
        if len(fields) == 3:
            try:
                inst.distance = int(fields[2][0])
            except ValueError:
                self.err(f"bad order distance {fields[2][0]!r}",
                         lineno, fields[2][1])
            if inst.distance < 0:
                self.err("order distance must be >= 0", lineno, fields[2][1])
        self.insts.append(inst)

    # -- graph construction ----------------------------------------------
    def build(self, default_name: str) -> Loop:
        b = LoopBuilder(self.loop_name or default_name, self.catalog)
        values: dict[str, Value] = {
            name: b.live_in(name) for name in self.live_ins
        }
        node_of: list[Value] = []
        for inst in self.insts:
            if inst.kind == "order":
                node_of.append(Value(None))  # placeholder, no node
                continue
            tag = inst.label or inst.dest or inst.opcode or ""
            value = b.op(inst.opcode, tag=tag)
            node_of.append(value)
            if inst.dest is not None:
                values[inst.dest] = value

        def resolve(operand: _Operand, index: int, lineno: int) -> Value:
            value = values.get(operand.name)
            if value is None:
                self.err(
                    f"use of undefined value {operand.name!r}",
                    lineno, operand.col,
                )
            if value.node_id is None:  # a live-in
                if operand.distance:
                    self.err(
                        f"{operand.name!r} is a live-in; loop-invariant values "
                        f"have no carried distance",
                        lineno, operand.col,
                    )
                return value
            def_index = self.defs[operand.name]
            if operand.distance == 0 and def_index >= index:
                self.err(
                    f"use of {operand.name!r} before its definition "
                    f"(a cross-iteration use needs an explicit @distance)",
                    lineno, operand.col,
                )
            return value

        for index, inst in enumerate(self.insts):
            if inst.kind == "order":
                first, second = inst.operands
                for operand in (first, second):
                    if operand.name not in self.defs:
                        self.err(
                            f"order names unknown operation {operand.name!r}",
                            inst.lineno, operand.col,
                        )
                b.mem_order(
                    node_of[self.defs[first.name]],
                    node_of[self.defs[second.name]],
                    distance=inst.distance,
                )
                continue
            consumer = node_of[index]
            for operand in inst.operands:
                producer = resolve(operand, index, inst.lineno)
                if producer.node_id is None:
                    continue  # live-ins carry no dependence
                b.carried_use(producer, consumer, distance=operand.distance)
        graph = b.build()
        return Loop(graph=graph, trip_count=self.trip or 100)


def parse_program(
    text: str,
    *,
    name: str | None = None,
    source: str = "<loop>",
    catalog: OpCatalog = DEFAULT_CATALOG,
) -> Loop:
    """Parse ``.loop`` source text into a :class:`Loop`.

    ``name`` is the graph name used when the program has no ``loop NAME``
    directive; ``source`` labels :class:`ParseError` locations.
    """
    parser = _Parser(text, source, catalog)
    parser.parse()
    return parser.build(name or "loop")


def parse_file(path: str | Path, *, catalog: OpCatalog = DEFAULT_CATALOG) -> Loop:
    """Parse a ``.loop`` file; the default loop name is the file stem."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ParseError(str(exc), source=str(path), line=0, col=0) from None
    return parse_program(text, name=path.stem, source=str(path), catalog=catalog)
