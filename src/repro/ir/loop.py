"""Loop and program containers.

The paper evaluates "modulo scheduling of innermost loops with a number of
iterations greater than four", weighting each loop by how often it executes
(Section 6.1-6.2).  A :class:`Loop` bundles a dependence graph with those
dynamic statistics, and a :class:`Program` is a named set of loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import GraphError
from .ddg import DependenceGraph

#: Loops at or below this trip count are excluded from evaluation, matching
#: the paper ("number of iterations greater than four").
MIN_MODULO_TRIP_COUNT = 4


@dataclass
class Loop:
    """One innermost loop with its dynamic execution statistics.

    Attributes
    ----------
    graph:
        Dependence graph of one iteration of the loop body.
    trip_count:
        Average number of iterations each time the loop is entered.
    times_executed:
        How many times the loop is entered during the program run.
    """

    graph: DependenceGraph
    trip_count: int
    times_executed: int = 1

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise GraphError(f"loop {self.name!r}: trip_count must be >= 1")
        if self.times_executed < 0:
            raise GraphError(f"loop {self.name!r}: times_executed must be >= 0")

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def ops_per_iteration(self) -> int:
        return len(self.graph)

    @property
    def dynamic_operations(self) -> int:
        """Useful operations executed by this loop over the whole run."""
        return self.ops_per_iteration * self.trip_count * self.times_executed

    @property
    def eligible_for_modulo_scheduling(self) -> bool:
        """Paper rule: only loops with more than four iterations count."""
        return self.trip_count > MIN_MODULO_TRIP_COUNT

    def __str__(self) -> str:
        return (
            f"Loop {self.name!r}: {self.ops_per_iteration} ops, "
            f"trip={self.trip_count}, runs={self.times_executed}"
        )


@dataclass
class Program:
    """A named collection of innermost loops (one SPECfp95-like program)."""

    name: str
    loops: list[Loop] = field(default_factory=list)

    def add(self, loop: Loop) -> None:
        self.loops.append(loop)

    def __iter__(self) -> Iterator[Loop]:
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def eligible_loops(self) -> list[Loop]:
        """Loops the paper's evaluation would modulo-schedule."""
        return [lp for lp in self.loops if lp.eligible_for_modulo_scheduling]

    @property
    def dynamic_operations(self) -> int:
        return sum(lp.dynamic_operations for lp in self.eligible_loops())

    def describe(self) -> str:
        lines = [f"Program {self.name!r}: {len(self.loops)} loops"]
        lines.extend(f"  {lp}" for lp in self.loops)
        return "\n".join(lines)
