"""Operations of the loop intermediate representation.

The paper's machine has three functional-unit classes (integer, floating
point and memory, Section 3 / Table 1).  Each operation in a dependence
graph carries an opcode drawn from a small catalogue; the opcode determines
the functional-unit class that executes it and its result latency.

Latencies follow the values used by the SMS / ICTINEO line of work (the
scan of the paper's Table 1 is partially illegible; the exact numbers only
shift absolute IPC, not any of the comparisons).  They can be overridden
per-:class:`OpCatalog` for sensitivity studies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class FuClass(enum.Enum):
    """Functional-unit class an operation executes on."""

    INT = "int"
    FP = "fp"
    MEM = "mem"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Opcode:
    """A machine operation kind.

    Attributes
    ----------
    name:
        Mnemonic, e.g. ``"fadd"``.
    fu_class:
        Functional-unit class that executes the operation.
    latency:
        Cycles from issue until the result may be consumed.  Operations are
        fully pipelined: a functional unit accepts a new operation every
        cycle regardless of latency.
    writes_register:
        Whether the operation produces a register value (stores and branches
        do not; their "result" cannot be communicated over a bus).
    """

    name: str
    fu_class: FuClass
    latency: int
    writes_register: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"opcode {self.name!r}: latency must be >= 0")


def _default_opcodes() -> dict[str, Opcode]:
    ops = [
        # Integer
        Opcode("iadd", FuClass.INT, 1),
        Opcode("isub", FuClass.INT, 1),
        Opcode("imul", FuClass.INT, 2),
        Opcode("ilogic", FuClass.INT, 1),
        Opcode("ishift", FuClass.INT, 1),
        Opcode("icmp", FuClass.INT, 1),
        Opcode("iaddr", FuClass.INT, 1),  # address arithmetic
        # Floating point
        Opcode("fadd", FuClass.FP, 3),
        Opcode("fsub", FuClass.FP, 3),
        Opcode("fmul", FuClass.FP, 4),
        Opcode("fdiv", FuClass.FP, 17),
        Opcode("fsqrt", FuClass.FP, 17),
        Opcode("fneg", FuClass.FP, 1),
        Opcode("fcmp", FuClass.FP, 1),
        Opcode("fmac", FuClass.FP, 4),
        # Memory
        Opcode("load", FuClass.MEM, 2),
        Opcode("store", FuClass.MEM, 1, writes_register=False),
        # A generic 1-cycle op used by the paper's Figure 7 walk-through
        # ("two general-purpose functional units ... each instruction is
        # 1-cycle latency").
        Opcode("gen", FuClass.INT, 1),
    ]
    return {op.name: op for op in ops}


@dataclass
class OpCatalog:
    """The set of opcodes available to a workload.

    A catalog maps mnemonics to :class:`Opcode` records.  The default
    catalog covers the paper's three FU classes with conventional latencies;
    :meth:`with_latency` derives variants for sensitivity experiments.
    """

    opcodes: dict[str, Opcode] = field(default_factory=_default_opcodes)

    def __getitem__(self, name: str) -> Opcode:
        try:
            return self.opcodes[name]
        except KeyError:
            raise KeyError(
                f"unknown opcode {name!r}; known: {sorted(self.opcodes)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.opcodes

    def names(self) -> list[str]:
        """All mnemonics, sorted."""
        return sorted(self.opcodes)

    def by_class(self, fu_class: FuClass) -> list[Opcode]:
        """All opcodes executed by *fu_class*, sorted by name."""
        return sorted(
            (op for op in self.opcodes.values() if op.fu_class is fu_class),
            key=lambda op: op.name,
        )

    def with_latency(self, name: str, latency: int) -> "OpCatalog":
        """Return a new catalog with *name*'s latency replaced."""
        new = dict(self.opcodes)
        new[name] = replace(new[name], latency=latency)
        return OpCatalog(new)


#: Shared default catalog.  Treat as immutable.
DEFAULT_CATALOG = OpCatalog()


@dataclass(frozen=True)
class Operation:
    """A node of a dependence graph: one machine operation of the loop body.

    Attributes
    ----------
    node_id:
        Dense integer id, unique within its graph.
    opcode:
        The operation kind (determines FU class and latency).
    tag:
        Free-form label for readability of dumps (e.g. ``"a[i]"``).
    """

    node_id: int
    opcode: Opcode
    tag: str = ""

    @property
    def fu_class(self) -> FuClass:
        return self.opcode.fu_class

    @property
    def latency(self) -> int:
        return self.opcode.latency

    @property
    def writes_register(self) -> bool:
        return self.opcode.writes_register

    def __str__(self) -> str:
        label = f"n{self.node_id}:{self.opcode.name}"
        return f"{label}({self.tag})" if self.tag else label
