"""JSON (de)serialisation of graphs, loops and schedules.

Lets users persist workloads and scheduler outputs — dump a dependence
graph from one session, inspect or re-verify a schedule in another, diff
schedules across library versions.  The format is plain dict/JSON with a
``"format"`` version tag; round-tripping is exact and covered by property
tests.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from ..errors import GraphError
from .ddg import DepKind, DependenceGraph
from .loop import Loop, Program
from .operation import DEFAULT_CATALOG, OpCatalog

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids ir<->arch cycle)
    from ..arch.cluster import MachineConfig
    from ..arch.resources import FuSet

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Dependence graphs
# ---------------------------------------------------------------------------
def graph_to_dict(graph: DependenceGraph) -> dict[str, Any]:
    """Serialise a dependence graph to a JSON-ready dict."""
    return {
        "format": FORMAT_VERSION,
        "kind": "graph",
        "name": graph.name,
        "operations": [
            {"opcode": op.opcode.name, "tag": op.tag} for op in graph.operations()
        ],
        "dependences": [
            {
                "src": d.src,
                "dst": d.dst,
                "latency": d.latency,
                "distance": d.distance,
                "kind": d.kind.value,
            }
            for d in graph.edges
        ],
    }


def graph_from_dict(
    data: dict[str, Any], catalog: OpCatalog = DEFAULT_CATALOG
) -> DependenceGraph:
    """Rebuild (and validate) a graph serialised by :func:`graph_to_dict`."""
    _check_format(data, "graph")
    graph = DependenceGraph(data["name"], catalog)
    for op in data["operations"]:
        graph.add_operation(op["opcode"], op.get("tag", ""))
    for dep in data["dependences"]:
        graph.add_dependence(
            dep["src"],
            dep["dst"],
            distance=dep["distance"],
            kind=DepKind(dep["kind"]),
            latency=dep["latency"],
        )
    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Loops and programs
# ---------------------------------------------------------------------------
def loop_to_dict(loop: Loop) -> dict[str, Any]:
    """Serialise a loop (graph + dynamic statistics)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "loop",
        "graph": graph_to_dict(loop.graph),
        "trip_count": loop.trip_count,
        "times_executed": loop.times_executed,
    }


def loop_from_dict(
    data: dict[str, Any], catalog: OpCatalog = DEFAULT_CATALOG
) -> Loop:
    """Rebuild a loop serialised by :func:`loop_to_dict`."""
    _check_format(data, "loop")
    return Loop(
        graph=graph_from_dict(data["graph"], catalog),
        trip_count=data["trip_count"],
        times_executed=data["times_executed"],
    )


def program_to_dict(program: Program) -> dict[str, Any]:
    """Serialise a program (a named set of loops)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "program",
        "name": program.name,
        "loops": [loop_to_dict(lp) for lp in program.loops],
    }


def program_from_dict(
    data: dict[str, Any], catalog: OpCatalog = DEFAULT_CATALOG
) -> Program:
    """Rebuild a program serialised by :func:`program_to_dict`."""
    _check_format(data, "program")
    return Program(
        name=data["name"],
        loops=[loop_from_dict(lp, catalog) for lp in data["loops"]],
    )


# ---------------------------------------------------------------------------
# Machine configurations and schedules
# ---------------------------------------------------------------------------
def config_to_dict(config: "MachineConfig") -> dict[str, Any]:
    """Serialise a machine configuration (homogeneous or not)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "machine",
        "name": config.name,
        "n_clusters": config.n_clusters,
        "fu_per_cluster": _fuset(config.fu_per_cluster),
        "regs_per_cluster": config.regs_per_cluster,
        "buses": {"count": config.buses.count, "latency": config.buses.latency},
        "cluster_fus": (
            [_fuset(f) for f in config.cluster_fus]
            if config.cluster_fus is not None
            else None
        ),
    }


def config_from_dict(data: dict[str, Any]) -> "MachineConfig":
    """Rebuild a machine configuration serialised by :func:`config_to_dict`."""
    from ..arch.cluster import MachineConfig
    from ..arch.resources import BusSpec

    _check_format(data, "machine")
    cluster_fus = data.get("cluster_fus")
    return MachineConfig(
        name=data["name"],
        n_clusters=data["n_clusters"],
        fu_per_cluster=_unfuset(data["fu_per_cluster"]),
        regs_per_cluster=data["regs_per_cluster"],
        buses=BusSpec(data["buses"]["count"], data["buses"]["latency"]),
        cluster_fus=(
            tuple(_unfuset(f) for f in cluster_fus) if cluster_fus else None
        ),
    )


def schedule_to_dict(schedule) -> dict[str, Any]:
    """Serialise a :class:`~repro.core.schedule.ModuloSchedule`."""
    return {
        "format": FORMAT_VERSION,
        "kind": "schedule",
        "graph": graph_to_dict(schedule.graph),
        "machine": config_to_dict(schedule.config),
        "ii": schedule.ii,
        "mii": schedule.mii,
        "bus_utilisation": schedule.bus_utilisation,
        "attempt_failures": [
            {
                "no_fu": log.no_fu,
                "no_bus": log.no_bus,
                "register_pressure": log.register_pressure,
                "dependence_window": log.dependence_window,
            }
            for log in schedule.attempt_failures
        ],
        "operations": [
            {
                "node": op.node,
                "cycle": op.cycle,
                "cluster": op.cluster,
                "fu_index": op.fu_index,
            }
            for op in schedule.ops.values()
        ],
        "communications": [
            {
                "producer": c.producer,
                "src_cluster": c.src_cluster,
                "bus": c.bus,
                "start_cycle": c.start_cycle,
                "readers": sorted(c.readers),
            }
            for c in schedule.comms
        ],
    }


def schedule_from_dict(data: dict[str, Any], catalog: OpCatalog = DEFAULT_CATALOG):
    """Rebuild a schedule; callers typically re-verify it afterwards."""
    from ..core.schedule import Communication, FailureLog, ModuloSchedule, ScheduledOp

    _check_format(data, "schedule")
    graph = graph_from_dict(data["graph"], catalog)
    config = config_from_dict(data["machine"])
    schedule = ModuloSchedule(graph, config, data["ii"], mii=data["mii"])
    schedule.bus_utilisation = data.get("bus_utilisation", 0.0)
    schedule.attempt_failures = [
        FailureLog(**log) for log in data.get("attempt_failures", [])
    ]
    for op in data["operations"]:
        schedule.place(
            ScheduledOp(op["node"], op["cycle"], op["cluster"], op["fu_index"])
        )
    for c in data["communications"]:
        schedule.add_comm(
            Communication(
                c["producer"],
                c["src_cluster"],
                c["bus"],
                c["start_cycle"],
                frozenset(c["readers"]),
            )
        )
    return schedule


# ---------------------------------------------------------------------------
def dumps(obj_dict: dict[str, Any]) -> str:
    """JSON text for any dict produced by the *_to_dict functions."""
    return json.dumps(obj_dict, indent=2, sort_keys=True)


def loads(text: str) -> dict[str, Any]:
    """Parse JSON text back into a dict for the *_from_dict functions."""
    return json.loads(text)


def _fuset(f: "FuSet") -> dict[str, int]:
    return {"int": f.int_units, "fp": f.fp_units, "mem": f.mem_units}


def _unfuset(d: dict[str, int]) -> "FuSet":
    from ..arch.resources import FuSet

    return FuSet(d["int"], d["fp"], d["mem"])


def _check_format(data: dict[str, Any], kind: str) -> None:
    if data.get("format") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported format version {data.get('format')!r} "
            f"(library supports {FORMAT_VERSION})"
        )
    if data.get("kind") != kind:
        raise GraphError(f"expected a {kind!r} document, got {data.get('kind')!r}")
