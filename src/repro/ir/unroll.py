"""Graph-level loop unrolling (Section 5.2 of the paper).

Unrolling by a factor *U* replicates the loop body *U* times.  A dependence
``u -> v`` with iteration distance *d* in the original loop relates copy
*k* of *u* (original iteration ``U*j + k``) to the consumer in original
iteration ``U*j + k + d``, i.e. copy ``(k + d) mod U`` of *v* in unrolled
iteration ``j + (k + d) // U``::

    u_k  ->  v_{(k+d) mod U}    with distance (k + d) // U

Intra-iteration edges (d = 0) therefore stay inside each copy, and the
paper's observation follows directly: a loop with few loop-carried
dependences unrolls into *U* nearly disconnected subgraphs, which the BSA
scheduler then places on different clusters with almost no communication.

``count_cross_copy_deps`` implements the paper's ``NDepsNotMult``: the
number of dependences whose distance is greater than zero and not a
multiple of the unroll factor — exactly the edges that end up crossing
copies (and hence potentially clusters) after unrolling.
"""

from __future__ import annotations

from ..errors import GraphError
from .ddg import DependenceGraph


def unroll_graph(graph: DependenceGraph, factor: int) -> DependenceGraph:
    """Return *graph* unrolled by *factor* (factor 1 returns a copy).

    Node ids map as ``new_id = copy_index * len(graph) + old_id`` so tests
    and visualisers can recover the correspondence.
    """
    if factor < 1:
        raise GraphError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return graph.copy()

    n = len(graph)
    unrolled = DependenceGraph(f"{graph.name}@x{factor}", graph.catalog)
    for k in range(factor):
        for op in graph.operations():
            tag = f"{op.tag}#{k}" if op.tag else f"#{k}"
            new_id = unrolled.add_operation(op.opcode.name, tag)
            # Not an assert: the id layout is load-bearing (copy_of /
            # original_node arithmetic) and must hold under ``python -O``.
            if new_id != k * n + op.node_id:
                raise GraphError(
                    f"unroll id layout broken: copy {k} of node {op.node_id} "
                    f"got id {new_id}, expected {k * n + op.node_id} "
                    "(non-dense node ids in the source graph?)"
                )
    for k in range(factor):
        for dep in graph.edges:
            dst_copy = (k + dep.distance) % factor
            new_distance = (k + dep.distance) // factor
            unrolled.add_dependence(
                k * n + dep.src,
                dst_copy * n + dep.dst,
                distance=new_distance,
                kind=dep.kind,
                latency=dep.latency,
            )
    return unrolled


def copy_of(node_id: int, original_size: int) -> int:
    """Which unrolled copy a node id of an unrolled graph belongs to."""
    return node_id // original_size


def original_node(node_id: int, original_size: int) -> int:
    """The original node id a node of an unrolled graph descends from."""
    return node_id % original_size


def count_cross_copy_deps(graph: DependenceGraph, factor: int) -> int:
    """The paper's ``NDepsNotMult(G)``.

    Dependences with ``distance > 0`` and ``distance % factor != 0`` connect
    different copies after unrolling by *factor*.  Only value-moving (flow)
    edges are counted, because only those require a bus transfer.
    """
    if factor < 1:
        raise GraphError(f"unroll factor must be >= 1, got {factor}")
    return sum(
        1
        for dep in graph.edges
        if dep.moves_value and dep.distance > 0 and dep.distance % factor != 0
    )
