"""Observability: tracing spans, metrics, Prometheus exposition, run reports.

Stdlib-only and strictly out-of-band: nothing in this package feeds
scheduling decisions, scenario identities, or cache keys.  The four
modules layer as

* :mod:`repro.obs.trace` — nestable spans with cross-process context
  propagation, plus per-phase wall-clock accounting for the scheduler
  engine (both zero-cost when disabled);
* :mod:`repro.obs.metrics` — a thread-safe registry of counters, gauges
  and fixed-bucket histograms;
* :mod:`repro.obs.prom` — Prometheus text exposition (0.0.4) rendering
  and a strict parser used by tests and the CI scrape gate;
* :mod:`repro.obs.report` — structured per-sweep run reports
  (record → aggregate → render) behind ``--report-out`` and the
  ``repro-vliw report`` verb.
"""

from .metrics import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .prom import CONTENT_TYPE, PromParseError, parse, render
from .report import (
    PointRecord,
    RunRecorder,
    RunReport,
    aggregate,
    render_report,
)
from .trace import PHASES, TRACER, PhaseTimer, Span, TraceContext, Tracer, new_trace_id

__all__ = [
    "CONTENT_TYPE",
    "LATENCY_BUCKETS_S",
    "PHASES",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimer",
    "PointRecord",
    "PromParseError",
    "RunRecorder",
    "RunReport",
    "Span",
    "TraceContext",
    "Tracer",
    "aggregate",
    "new_trace_id",
    "parse",
    "render",
    "render_report",
]
