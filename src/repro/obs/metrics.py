"""A small, stdlib-only metrics registry (Prometheus data model).

Three instrument kinds, mirroring the Prometheus types the exposition
layer (:mod:`repro.obs.prom`) renders:

* :class:`Counter` — monotonically increasing totals (requests served,
  cache hits); names end in ``_total`` by convention.
* :class:`Gauge` — point-in-time values (queue depth, live jobs).  A
  gauge may be *callback-backed*: the value is sampled at collect time,
  so state the service already tracks (queue sizes, pool liveness)
  never needs double bookkeeping.
* :class:`Histogram` — cumulative fixed-bucket distributions; the
  shared :data:`LATENCY_BUCKETS_S` ladder keeps every latency series
  comparable across the service, the loadtest and CI gates.

All instruments are labelled: an instrument is created once per name on
the registry, and :meth:`~_Instrument.labels` returns (and memoises) the
child for one label-value combination.  Mutations take the registry
lock, so handler threads, the dispatcher and the scrape path can share
one registry safely.  Metric names are part of the public contract —
dashboards and CI scrape them — so instruments must be created through
the registry, which enforces name uniqueness and valid identifiers.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Sample",
]

#: The fixed latency ladder (seconds) shared by every latency histogram:
#: service batches, HTTP requests, and the loadtest report.  Sub-ms
#: resolution at the bottom (warm memo hits land around 100-500us),
#: tens of seconds at the top (cold grid sweeps).
LATENCY_BUCKETS_S = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


@dataclass
class MetricFamily:
    """One metric with its type, help text and current samples."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    samples: list[Sample] = field(default_factory=list)


class _Instrument:
    """Shared labelled-children plumbing for all instrument kinds."""

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ):
        self._registry = registry
        self._lock = registry._lock
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **labelvalues: str):
        """The child instrument for one label-value combination."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._new_child()
                self._children[key] = child
            return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _label_items(self) -> list[tuple[tuple[tuple[str, str], ...], Any]]:
        with self._lock:
            return [
                (tuple(zip(self.labelnames, key)), child)
                for key, child in sorted(self._children.items())
            ]


class _CounterChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        with self._lock:
            self.value += amount


class Counter(_Instrument):
    """A monotonically increasing total, optionally labelled.

    May instead be *callback-backed* (like a callback gauge): the value
    is read from external monotonic state at collect time, so a total
    the owner already tracks (cache hits, request counts) has exactly
    one source of truth — ``/stats`` and ``/metrics`` cannot drift.
    """

    kind = "counter"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        callback: Callable[[], float] | None = None,
    ):
        super().__init__(registry, name, help, labelnames)
        if callback is not None and labelnames:
            raise ValueError(f"{name}: callback counters cannot be labelled")
        self._callback = callback
        self._default = (
            _CounterChild(self._lock)
            if not labelnames and callback is None
            else None
        )

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        if self._default is None:
            raise ValueError(
                f"{self.name} is labelled or callback-backed; cannot inc()"
            )
        self._default.inc(amount)

    @property
    def value(self) -> float:
        """Unlabelled counter's current total (reads are atomic enough)."""
        if self._callback is not None:
            return float(self._callback())
        if self._default is None:
            raise ValueError(f"{self.name} is labelled; read via collect()")
        return self._default.value

    def value_of(self, **labelvalues: str) -> float:
        """Current total of one labelled child (0.0 when never touched)."""
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            return child.value if child is not None else 0.0

    def collect(self) -> MetricFamily:
        fam = MetricFamily(self.name, self.kind, self.help)
        if self._callback is not None:
            fam.samples.append(Sample(self.name, (), float(self._callback())))
        elif self._default is not None:
            fam.samples.append(Sample(self.name, (), self._default.value))
        else:
            for labels, child in self._label_items():
                fam.samples.append(Sample(self.name, labels, child.value))
        return fam


class _GaugeChild:
    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Gauge(_Instrument):
    """A point-in-time value; optionally callback-backed (sampled at scrape)."""

    kind = "gauge"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        callback: Callable[[], float] | None = None,
    ):
        super().__init__(registry, name, help, labelnames)
        if callback is not None and labelnames:
            raise ValueError(f"{name}: callback gauges cannot be labelled")
        self._callback = callback
        self._default = (
            _GaugeChild(self._lock) if not labelnames and callback is None else None
        )

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        if self._default is None:
            raise ValueError(f"{self.name}: not a settable unlabelled gauge")
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        if self._default is None:
            raise ValueError(f"{self.name}: not a settable unlabelled gauge")
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def collect(self) -> MetricFamily:
        fam = MetricFamily(self.name, self.kind, self.help)
        if self._callback is not None:
            fam.samples.append(Sample(self.name, (), float(self._callback())))
        elif self._default is not None:
            fam.samples.append(Sample(self.name, (), self._default.value))
        else:
            for labels, child in self._label_items():
                fam.samples.append(Sample(self.name, labels, child.value))
        return fam


class _HistogramChild:
    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]):
        self._lock = lock
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class Histogram(_Instrument):
    """Fixed-bucket cumulative histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        registry,
        name,
        help,
        labelnames=(),
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
    ):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError(f"{name}: buckets must be sorted and non-empty")
        self.buckets = bounds
        self._default = (
            _HistogramChild(self._lock, bounds) if not labelnames else None
        )

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self.buckets)

    def observe(self, value: float) -> None:
        if self._default is None:
            raise ValueError(
                f"{self.name} is labelled; use .labels(...).observe()"
            )
        self._default.observe(value)

    def _child_samples(
        self, labels: tuple[tuple[str, str], ...], child: _HistogramChild
    ) -> list[Sample]:
        samples = []
        cumulative = 0
        for bound, n in zip(self.buckets, child.counts):
            cumulative += n
            samples.append(
                Sample(
                    f"{self.name}_bucket",
                    labels + (("le", _format_bound(bound)),),
                    cumulative,
                )
            )
        samples.append(
            Sample(f"{self.name}_bucket", labels + (("le", "+Inf"),), child.count)
        )
        samples.append(Sample(f"{self.name}_sum", labels, child.sum))
        samples.append(Sample(f"{self.name}_count", labels, child.count))
        return samples

    def collect(self) -> MetricFamily:
        fam = MetricFamily(self.name, self.kind, self.help)
        if self._default is not None:
            fam.samples.extend(self._child_samples((), self._default))
        else:
            for labels, child in self._label_items():
                fam.samples.extend(self._child_samples(labels, child))
        return fam


def _format_bound(bound: float) -> str:
    """Prometheus-style bucket bound: integral values without the ``.0``."""
    return str(int(bound)) if bound == int(bound) else repr(bound)


class MetricsRegistry:
    """The set of instruments one process (or one service) exports.

    Creation is idempotent per name *and* signature — asking twice for
    the same counter returns the same object, so instrumented modules
    need no global wiring order.  Conflicting re-registration (same name,
    different kind/labels) raises, which is what keeps scraped metric
    names stable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Any] = {}

    # ------------------------------------------------------------------
    def _register(self, factory: Callable[[], Any], name: str, kind: str):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if existing.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = factory()
        with self._lock:
            return self._metrics.setdefault(name, metric)

    def counter(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> Counter:
        _check_labels(labelnames)
        return self._register(
            lambda: Counter(self, name, help, labelnames, callback),
            name,
            "counter",
        )

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        _check_labels(labelnames)
        return self._register(
            lambda: Gauge(self, name, help, labelnames, callback), name, "gauge"
        )

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        _check_labels(labelnames)
        return self._register(
            lambda: Histogram(self, name, help, labelnames, buckets),
            name,
            "histogram",
        )

    # ------------------------------------------------------------------
    def collect(self) -> list[MetricFamily]:
        """Current samples of every instrument, sorted by metric name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        return [metric.collect() for _name, metric in metrics]


def _check_labels(labelnames: tuple[str, ...]) -> None:
    for label in labelnames:
        if not _LABEL_RE.match(label) or label.startswith("__"):
            raise ValueError(f"invalid label name {label!r}")
