"""Prometheus text exposition (format 0.0.4): renderer and strict parser.

:func:`render` turns a registry's collected families into the canonical
``# HELP`` / ``# TYPE`` / sample-line layout Prometheus scrapes.  The
inverse, :func:`parse`, is deliberately *strict* — unknown line shapes,
malformed labels, samples without a preceding ``# TYPE``, or histograms
whose cumulative buckets decrease all raise :class:`PromParseError`.
The test-suite and the CI smoke job round-trip ``GET /metrics`` through
it, so a formatting regression fails the build instead of silently
breaking dashboards.

The module doubles as the CI scrape gate::

    curl -fsS localhost:8123/metrics | \
        python -m repro.obs.prom --require repro_requests_total ...

which exits non-zero when the body does not parse or a required metric
family is missing.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field

from .metrics import MetricFamily, MetricsRegistry, Sample

__all__ = ["CONTENT_TYPE", "PromParseError", "parse", "render"]

#: The scrape Content-Type the service answers ``GET /metrics`` with.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)


class PromParseError(ValueError):
    """The scraped body is not valid Prometheus text exposition."""


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_sample(sample: Sample) -> str:
    if sample.labels:
        labels = ",".join(
            f'{name}="{_escape_label_value(value)}"'
            for name, value in sample.labels
        )
        return f"{sample.name}{{{labels}}} {_format_value(sample.value)}"
    return f"{sample.name} {_format_value(sample.value)}"


def render(families: list[MetricFamily] | MetricsRegistry) -> str:
    """Prometheus text for *families* (or a registry, collected now)."""
    if isinstance(families, MetricsRegistry):
        families = families.collect()
    lines: list[str] = []
    for family in families:
        lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples:
            lines.append(_render_sample(sample))
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Strict parsing
# ---------------------------------------------------------------------------
@dataclass
class ParsedFamily:
    """One metric family reconstructed from exposition text."""

    name: str
    kind: str
    help: str = ""
    samples: list[Sample] = field(default_factory=list)


def _family_for(name: str, families: dict[str, ParsedFamily]) -> ParsedFamily:
    """The declared family a sample line belongs to (histograms have
    ``_bucket``/``_sum``/``_count`` suffixes on their sample names)."""
    if name in families:
        return families[name]
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.kind == "histogram":
                return family
    raise PromParseError(f"sample {name!r} has no preceding # TYPE line")


def _parse_labels(raw: str) -> tuple[tuple[str, str], ...]:
    if not raw:
        return ()
    pairs = []
    for chunk in raw.split(","):
        match = _LABEL_PAIR_RE.match(chunk.strip())
        if not match:
            raise PromParseError(f"malformed label pair {chunk!r}")
        pairs.append((match.group("name"), _unescape(match.group("value"))))
    return tuple(pairs)


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    try:
        return float(raw)
    except ValueError:
        raise PromParseError(f"malformed sample value {raw!r}") from None


def parse(text: str) -> dict[str, ParsedFamily]:
    """Strictly parse exposition *text* into ``{family name: family}``.

    Raises :class:`PromParseError` on anything Prometheus itself would
    reject, plus two extra sanity rules that catch renderer bugs:
    duplicate family declarations, and histogram bucket counts that are
    not cumulative.
    """
    families: dict[str, ParsedFamily] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            if line.startswith("# HELP "):
                parts = line[len("# HELP ") :].split(" ", 1)
                name = parts[0]
                if name in families:
                    raise PromParseError(f"duplicate family {name!r}")
                families[name] = ParsedFamily(
                    name=name,
                    kind="untyped",
                    help=_unescape(parts[1]) if len(parts) > 1 else "",
                )
            elif line.startswith("# TYPE "):
                parts = line[len("# TYPE ") :].split()
                if len(parts) != 2:
                    raise PromParseError(f"malformed TYPE line {line!r}")
                name, kind = parts
                if kind not in ("counter", "gauge", "histogram", "untyped"):
                    raise PromParseError(f"unknown metric type {kind!r}")
                family = families.setdefault(
                    name, ParsedFamily(name=name, kind=kind)
                )
                if family.samples:
                    raise PromParseError(
                        f"TYPE for {name!r} appears after its samples"
                    )
                family.kind = kind
            elif line.startswith("#"):
                continue  # free-form comment
            else:
                match = _SAMPLE_RE.match(line)
                if not match:
                    raise PromParseError(f"malformed sample line {line!r}")
                family = _family_for(match.group("name"), families)
                family.samples.append(
                    Sample(
                        name=match.group("name"),
                        labels=_parse_labels(match.group("labels") or ""),
                        value=_parse_value(match.group("value")),
                    )
                )
        except PromParseError as exc:
            raise PromParseError(f"line {lineno}: {exc}") from None
    _check_histograms(families)
    return families


def _check_histograms(families: dict[str, ParsedFamily]) -> None:
    for family in families.values():
        if family.kind != "histogram":
            continue
        # Group bucket samples by their non-le label set and verify the
        # cumulative invariant within each series.
        series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
        for sample in family.samples:
            if not sample.name.endswith("_bucket"):
                continue
            bound = None
            rest = []
            for label, value in sample.labels:
                if label == "le":
                    bound = _parse_value(value)
                else:
                    rest.append((label, value))
            if bound is None:
                raise PromParseError(
                    f"{sample.name}: histogram bucket without le label"
                )
            series.setdefault(tuple(rest), []).append((bound, sample.value))
        for key, buckets in series.items():
            buckets.sort(key=lambda item: item[0])
            if not buckets or buckets[-1][0] != float("inf"):
                raise PromParseError(
                    f"{family.name}{dict(key)}: missing le=\"+Inf\" bucket"
                )
            counts = [count for _bound, count in buckets]
            if counts != sorted(counts):
                raise PromParseError(
                    f"{family.name}{dict(key)}: bucket counts not cumulative"
                )


# ---------------------------------------------------------------------------
# CI gate: parse stdin, require families
# ---------------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.prom",
        description=(
            "Strictly validate Prometheus exposition text from stdin; "
            "exit non-zero if it fails to parse or required metric "
            "families are absent."
        ),
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="METRIC",
        help="metric family that must be present (repeatable)",
    )
    args = parser.parse_args(argv)

    text = sys.stdin.read()
    try:
        families = parse(text)
    except PromParseError as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    missing = [name for name in args.require if name not in families]
    if missing:
        print(f"missing metric families: {', '.join(missing)}", file=sys.stderr)
        return 1
    print(f"ok: {len(families)} metric families")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
