"""Structured run reports for sweeps: record, aggregate, render.

A sweep that only prints figure series throws away exactly the metadata
the paper's methodology needs to be auditable: which (kernel, config)
points ran, what II/MaxLive each achieved, which came from cache, and
how long the slow ones took.  This module keeps that:

* :class:`RunRecorder` — handed to the runner (via
  ``run_sweep(..., recorder=...)``); collects one :class:`PointRecord`
  per point with its outcome *source* (``executed`` / ``memo`` /
  ``disk``), wall time, and trace id.  Thread-safe; recording is opt-in
  and happens outside the scheduling hot path.
* :class:`RunReport` — the JSON document ``--report-out`` writes: run
  metadata plus all records.  Round-trips through :meth:`to_dict` /
  :meth:`from_dict`.
* :func:`aggregate` / :func:`render_report` — the ``repro-vliw report``
  verb: group records by kernel / config / scheduler / policy and emit
  per-group II, MaxLive, cache hit/miss and wall-time percentile columns
  as text, markdown or JSON.

Records are derived *from* results and never feed back into scheduling,
cache keys, or rendered output — reports observe, they do not perturb.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runner.scenario import PointResult, ScenarioPoint

__all__ = [
    "GROUP_KEYS",
    "PointRecord",
    "RunRecorder",
    "RunReport",
    "aggregate",
    "render_report",
]

#: Version of the report document layout.
REPORT_FORMAT = 1

#: Valid ``--by`` grouping keys and the record field each reads.
GROUP_KEYS = {
    "kernel": "loop",
    "config": "machine",
    "scheduler": "scheduler",
    "policy": "policy",
}


@dataclass(frozen=True)
class PointRecord:
    """The observable outcome of one scenario point in one sweep."""

    loop: str
    machine: str
    scheduler: str
    policy: str
    rule: str
    source: str  # "executed" | "memo" | "disk"
    ii: int
    mii: int
    stage_count: int
    max_live: int
    unroll_factor: int
    fallback: bool
    simulate: bool
    wall_s: float
    trace_id: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PointRecord":
        return cls(**data)


def record_for(
    point: "ScenarioPoint",
    result: "PointResult",
    *,
    source: str,
    wall_s: float = 0.0,
    trace_id: str | None = None,
) -> PointRecord:
    """Build the record for one (point, result) pair.

    MaxLive and the stage count come from the materialised schedule;
    this deserialisation cost is only paid when a recorder is attached.
    """
    from ..core.lifetimes import cluster_pressures

    schedule = result.loop_result().schedule
    pressures = cluster_pressures(schedule)
    return PointRecord(
        loop=point.loop,
        machine=json.loads(point.machine)["name"],
        scheduler=point.scheduler,
        policy=point.policy,
        rule=point.rule,
        source=source,
        ii=schedule.ii,
        mii=schedule.mii,
        stage_count=schedule.stage_count,
        max_live=max(pressures.values(), default=0),
        unroll_factor=result.unroll_factor,
        fallback=result.fallback,
        simulate=point.simulate,
        wall_s=wall_s,
        trace_id=trace_id,
    )


class RunRecorder:
    """Thread-safe collector the runner feeds while a sweep executes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[PointRecord] = []

    def record(
        self,
        point: "ScenarioPoint",
        result: "PointResult",
        *,
        source: str,
        wall_s: float = 0.0,
        trace_id: str | None = None,
    ) -> None:
        record = record_for(
            point, result, source=source, wall_s=wall_s, trace_id=trace_id
        )
        with self._lock:
            self._records.append(record)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def report(self, *, sweep: str, meta: dict[str, Any] | None = None) -> "RunReport":
        """Snapshot the collected records into a :class:`RunReport`."""
        with self._lock:
            records = list(self._records)
        return RunReport(sweep=sweep, records=records, meta=dict(meta or {}))


@dataclass
class RunReport:
    """One sweep's structured run report (the ``--report-out`` document)."""

    sweep: str
    records: list[PointRecord] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "sweep": self.sweep,
            "meta": dict(self.meta),
            "records": [record.to_dict() for record in self.records],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunReport":
        if data.get("format") != REPORT_FORMAT:
            raise ValueError(
                f"unsupported run-report format {data.get('format')!r}"
            )
        return cls(
            sweep=data["sweep"],
            records=[PointRecord.from_dict(r) for r in data["records"]],
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------------------
# Aggregation and rendering
# ---------------------------------------------------------------------------
def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values), rank) - 1)]


def aggregate(
    records: list[PointRecord], *, by: str = "kernel"
) -> list[dict[str, Any]]:
    """Per-group aggregation rows for the report table.

    Groups by *by* (one of :data:`GROUP_KEYS`); each row carries point
    counts per outcome source, mean II / MII, worst-case MaxLive,
    fallback count and wall-time percentiles across the group.
    """
    try:
        attr = GROUP_KEYS[by]
    except KeyError:
        raise ValueError(
            f"unknown grouping {by!r}; expected one of {sorted(GROUP_KEYS)}"
        ) from None
    groups: dict[str, list[PointRecord]] = {}
    for record in records:
        groups.setdefault(getattr(record, attr), []).append(record)

    rows = []
    for key in sorted(groups):
        members = groups[key]
        walls = sorted(r.wall_s for r in members)
        executed = sum(r.source == "executed" for r in members)
        rows.append(
            {
                by: key,
                "points": len(members),
                "executed": executed,
                "memo_hits": sum(r.source == "memo" for r in members),
                "disk_hits": sum(r.source == "disk" for r in members),
                "ii_mean": sum(r.ii for r in members) / len(members),
                "mii_mean": sum(r.mii for r in members) / len(members),
                "max_live": max(r.max_live for r in members),
                "fallbacks": sum(r.fallback for r in members),
                "wall_p50_ms": _percentile(walls, 0.50) * 1e3,
                "wall_p95_ms": _percentile(walls, 0.95) * 1e3,
            }
        )
    return rows


def _render_markdown(rows: list[dict[str, Any]], columns: list[str]) -> str:
    def fmt(value: Any) -> str:
        return format(value, ".2f") if isinstance(value, float) else str(value)

    lines = [
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(fmt(row.get(col, "")) for col in columns) + " |"
        )
    return "\n".join(lines)


def render_report(
    report: RunReport, *, by: str = "kernel", fmt: str = "text"
) -> str:
    """Render *report* as an aggregation table (``repro-vliw report``)."""
    # Imported here, not at module level: repro.obs must stay importable
    # from the scheduler core without dragging in the perf/experiment
    # layers (which themselves import the core).
    from ..perf.report import format_table

    rows = aggregate(report.records, by=by)
    columns = [by] + [c for c in (rows[0] if rows else {}) if c != by]
    total = len(report.records)
    hits = sum(r.source != "executed" for r in report.records)
    summary = (
        f"sweep {report.sweep}: {total} point(s), "
        f"{hits} from cache ({hits / total:.1%} hit rate)"
        if total
        else f"sweep {report.sweep}: no recorded points"
    )
    if fmt == "json":
        return json.dumps(
            {"sweep": report.sweep, "by": by, "meta": report.meta, "rows": rows},
            indent=2,
        )
    if fmt == "markdown":
        header = f"**{summary}**"
        if not rows:
            return header
        return header + "\n\n" + _render_markdown(rows, columns)
    if fmt == "text":
        table = format_table(rows, columns, floatfmt=".2f") if rows else "(empty)"
        return summary + "\n" + table
    raise ValueError(f"unknown report format {fmt!r}")
