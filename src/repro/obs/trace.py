"""Tracing spans and scheduler phase timings.

Two instruments, both **zero-cost when disabled** (a single attribute
check on the hot path, no object allocation):

* :class:`Tracer` — nestable, named spans (``with tracer.span("x"):``)
  with W3C-style trace/span identifiers.  The current span lives in a
  :mod:`contextvars` context variable, so concurrent server threads each
  see their own stack.  Crossing a *process* boundary is explicit:
  :meth:`Tracer.carrier` snapshots the current context into a plain
  dict, and :meth:`Tracer.adopt` re-installs it inside the worker — the
  runner's spawn-pool shards do exactly that, so a span recorded in a
  worker links back to the submitting request's trace.
* :class:`PhaseTimer` — cumulative per-phase wall-clock accounting for
  the scheduler engine (``schedule.ordering`` / ``schedule.probe`` /
  ``schedule.commit`` / ``sim.execute``).  The engine's inner loops
  guard every measurement with ``if PHASES.enabled:`` so the disabled
  cost is one attribute load; the bench harness enables it for one
  untimed profiled pass and embeds the breakdown in ``BENCH_<n>.json``.

Neither instrument ever feeds scheduling decisions, scenario identities
or cache keys — observability must not perturb byte-identical schedules.
"""

from __future__ import annotations

import contextvars
import os
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "PHASES",
    "TRACER",
    "PhaseTimer",
    "Span",
    "TraceContext",
    "Tracer",
    "new_trace_id",
]

#: Environment variable that enables the process-default tracer.
TRACE_ENV_VAR = "REPRO_VLIW_TRACE"

#: Spans retained in a tracer's in-memory ring buffer.
DEFAULT_SPAN_BUFFER = 2048


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace identifier."""
    return uuid.uuid4().hex


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of the active span: where new spans attach."""

    trace_id: str
    span_id: str

    def to_carrier(self) -> dict[str, str]:
        """Plain-dict form for crossing process boundaries (picklable)."""
        return {"trace_id": self.trace_id, "parent_span_id": self.span_id}

    @classmethod
    def from_carrier(cls, carrier: dict[str, str]) -> "TraceContext":
        return cls(
            trace_id=carrier["trace_id"], span_id=carrier["parent_span_id"]
        )


@dataclass
class Span:
    """One finished (or in-flight) named span."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_unix: float
    duration_s: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record (what run reports and workers ship around)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """The shared do-nothing context manager returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Nestable spans with thread-safe context propagation.

    Parameters
    ----------
    enabled:
        When ``False`` (the default for the process-wide :data:`TRACER`
        unless ``$REPRO_VLIW_TRACE`` is set) every :meth:`span` call
        returns a shared no-op context manager.
    buffer:
        Finished spans retained in memory (oldest evicted first);
        :meth:`drain` hands them to whoever aggregates (run reports,
        tests).
    """

    def __init__(self, *, enabled: bool = False, buffer: int = DEFAULT_SPAN_BUFFER):
        self.enabled = enabled
        self._finished: deque[Span] = deque(maxlen=buffer)
        self._current: contextvars.ContextVar[TraceContext | None] = (
            contextvars.ContextVar("repro_trace_ctx", default=None)
        )

    # ------------------------------------------------------------------
    def current_context(self) -> TraceContext | None:
        """The active span's context in this thread, or ``None``."""
        return self._current.get()

    def carrier(self) -> dict[str, str] | None:
        """The current context as a picklable dict (``None`` when idle)."""
        ctx = self._current.get()
        return ctx.to_carrier() if ctx is not None else None

    @contextmanager
    def adopt(self, carrier: dict[str, str] | None) -> Iterator[None]:
        """Install a remote context (e.g. inside a pool worker).

        Spans opened inside the ``with`` block become children of the
        carrier's span; a ``None`` carrier is a no-op, so call sites need
        no conditional.
        """
        if not self.enabled or carrier is None:
            yield
            return
        token = self._current.set(TraceContext.from_carrier(carrier))
        try:
            yield
        finally:
            self._current.reset(token)

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        """Open a nested span (a context manager).

        Disabled tracers return a shared null context manager — no
        allocation, no clock reads.
        """
        if not self.enabled:
            return _NULL_SPAN
        return self._live_span(name, attrs)

    @contextmanager
    def _live_span(self, name: str, attrs: dict[str, Any]) -> Iterator[Span]:
        parent = self._current.get()
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent else new_trace_id(),
            span_id=_new_span_id(),
            parent_id=parent.span_id if parent else None,
            start_unix=time.time(),
            attrs=attrs,
        )
        token = self._current.set(
            TraceContext(trace_id=span.trace_id, span_id=span.span_id)
        )
        t0 = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - t0
            self._current.reset(token)
            self._finished.append(span)

    # ------------------------------------------------------------------
    def record(self, span_dict: dict[str, Any]) -> None:
        """Append a span that finished elsewhere (shipped from a worker)."""
        self._finished.append(
            Span(
                name=span_dict["name"],
                trace_id=span_dict["trace_id"],
                span_id=span_dict["span_id"],
                parent_id=span_dict.get("parent_id"),
                start_unix=span_dict.get("start_unix", 0.0),
                duration_s=span_dict.get("duration_s", 0.0),
                attrs=dict(span_dict.get("attrs", {})),
            )
        )

    def drain(self) -> list[Span]:
        """Remove and return every buffered finished span."""
        out = list(self._finished)
        self._finished.clear()
        return out


class PhaseTimer:
    """Cumulative wall-clock accounting per named engine phase.

    The hot paths measure explicitly (two ``perf_counter`` calls) under
    an ``if PHASES.enabled:`` guard; this class only accumulates.  Not
    thread-safe by design — enable it around single-threaded profiled
    passes (the bench harness), never on a live multi-threaded service.
    """

    __slots__ = ("enabled", "_totals", "_counts")

    def __init__(self) -> None:
        self.enabled = False
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate one measurement (call sites pre-check ``enabled``)."""
        self._totals[phase] = self._totals.get(phase, 0.0) + seconds
        self._counts[phase] = self._counts.get(phase, 0) + 1

    @contextmanager
    def time(self, phase: str) -> Iterator[None]:
        """Measure a block when enabled (cheap no-op otherwise)."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(phase, time.perf_counter() - t0)

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def snapshot(self) -> dict[str, dict[str, float]]:
        """``{phase: {"total_s": ..., "calls": ...}}``, sorted by phase."""
        return {
            phase: {
                "total_s": self._totals[phase],
                "calls": self._counts[phase],
            }
            for phase in sorted(self._totals)
        }


#: Process-wide default tracer (enabled via ``$REPRO_VLIW_TRACE``).
TRACER = Tracer(enabled=bool(os.environ.get(TRACE_ENV_VAR)))

#: Process-wide scheduler phase accounting (disabled unless profiling).
PHASES = PhaseTimer()
