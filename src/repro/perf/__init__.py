"""Performance models: IPC, cycle counts, cycle-time-aware speed-ups."""

from .model import (
    PERFECT_MEMORY,
    LoopPerformance,
    ProgramPerformance,
    StallModel,
    loop_performance,
    pipeline_cycles,
    program_performance,
)
from .stats import ScheduleStats, render_reservation_table, schedule_stats
from .report import format_series, format_table
from .speedup import SpeedupReport, speedup_report

__all__ = [
    "LoopPerformance",
    "PERFECT_MEMORY",
    "ScheduleStats",
    "StallModel",
    "render_reservation_table",
    "schedule_stats",
    "ProgramPerformance",
    "SpeedupReport",
    "format_series",
    "format_table",
    "loop_performance",
    "pipeline_cycles",
    "program_performance",
    "speedup_report",
]
