"""The paper's performance model (Section 4, Section 6.2).

For a modulo-scheduled loop::

    NCYCLES = (NITER + SC - 1) * II + t_stall

with ``t_stall = 0`` (the memory hierarchy is perfect, Section 6.1).  IPC
counts committed *useful* operations — one loop body's operations per
source iteration regardless of unrolling — over those cycles, "taking into
account the prologue, the kernel and the epilogue as well as the number of
iterations and the times each loop is executed".

With an unroll factor U, one kernel iteration retires U source iterations:
``NITER_kernel = ceil(NITER / U)`` (the final partial batch runs as a full
unrolled iteration — the standard peeled-remainder cost, at most one extra
II per loop entry).  This keeps the model honest for short trip counts,
where unrolling loses ground through deeper pipelines and remainder waste.

**Beyond the paper:** the optional :class:`StallModel` fills in the
``t_stall`` term the paper sets to zero ("memory hierarchy ... considered
perfect", Section 6.1) with the standard first-order estimate
``loads_executed * miss_rate * miss_penalty`` — the sensitivity study the
paper defers to its cache-sensitive-scheduling citation [20].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.selective import ScheduledLoopResult
from ..ir.loop import Loop, Program
from ..ir.operation import FuClass


@dataclass(frozen=True)
class StallModel:
    """First-order memory-stall estimate (extension; paper uses zero).

    ``t_stall = loads * miss_rate * miss_penalty`` — every load misses
    with probability *miss_rate* and stalls the lock-step machine for
    *miss_penalty* cycles (a stall in one cluster stalls all, Section 3).
    """

    miss_rate: float = 0.0
    miss_penalty: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ValueError(f"miss_rate {self.miss_rate} not in [0, 1]")
        if self.miss_penalty < 0:
            raise ValueError(f"negative miss_penalty {self.miss_penalty}")

    def stall_cycles(self, loads_executed: int) -> int:
        return round(loads_executed * self.miss_rate * self.miss_penalty)


#: The paper's assumption: no stalls.
PERFECT_MEMORY = StallModel(0.0, 0)


def pipeline_cycles(kernel_iterations: int, stage_count: int, ii: int) -> int:
    """The paper's ``NCYCLES = (NITER + SC - 1) * II`` (perfect memory).

    Shared between the analytic model and the simulator cross-validation
    (:mod:`repro.sim.crosscheck`), so both sides diff against one formula.
    """
    return (kernel_iterations + stage_count - 1) * ii


@dataclass(frozen=True)
class LoopPerformance:
    """Cycles and committed operations of one loop over the whole run."""

    loop_name: str
    ii: int
    stage_count: int
    unroll_factor: int
    trip_count: int
    times_executed: int
    ops_per_iteration: int
    #: loads per source iteration (drives the optional stall model)
    loads_per_iteration: int = 0
    stall_model: StallModel = PERFECT_MEMORY

    @property
    def kernel_iterations(self) -> int:
        return math.ceil(self.trip_count / self.unroll_factor)

    @property
    def stall_cycles_per_entry(self) -> int:
        loads = self.loads_per_iteration * self.trip_count
        return self.stall_model.stall_cycles(loads)

    @property
    def cycles_per_entry(self) -> int:
        """NCYCLES for one entry of the loop (+ t_stall if modelled)."""
        pipeline = pipeline_cycles(self.kernel_iterations, self.stage_count, self.ii)
        return pipeline + self.stall_cycles_per_entry

    @property
    def total_cycles(self) -> int:
        return self.cycles_per_entry * self.times_executed

    @property
    def useful_operations(self) -> int:
        """Committed operations (source-iteration ops; unrolling neutral)."""
        return self.ops_per_iteration * self.trip_count * self.times_executed

    @property
    def ipc(self) -> float:
        return self.useful_operations / self.total_cycles if self.total_cycles else 0.0


def loop_performance(
    loop: Loop,
    result: ScheduledLoopResult,
    stall_model: StallModel = PERFECT_MEMORY,
) -> LoopPerformance:
    """Evaluate one scheduled loop under the paper's cycle model.

    ``result.schedule`` may be of the unrolled graph; operations per
    *source* iteration come from the original loop.
    """
    loads = sum(
        1
        for op in loop.graph.operations()
        if op.fu_class is FuClass.MEM and op.writes_register
    )
    return LoopPerformance(
        loop_name=loop.name,
        ii=result.schedule.ii,
        stage_count=result.schedule.stage_count,
        unroll_factor=result.unroll_factor,
        trip_count=loop.trip_count,
        times_executed=loop.times_executed,
        ops_per_iteration=loop.ops_per_iteration,
        loads_per_iteration=loads,
        stall_model=stall_model,
    )


@dataclass(frozen=True)
class ProgramPerformance:
    """Aggregated IPC of a program's modulo-scheduled loops."""

    program_name: str
    loops: tuple[LoopPerformance, ...]

    @property
    def total_cycles(self) -> int:
        return sum(lp.total_cycles for lp in self.loops)

    @property
    def useful_operations(self) -> int:
        return sum(lp.useful_operations for lp in self.loops)

    @property
    def ipc(self) -> float:
        cycles = self.total_cycles
        return self.useful_operations / cycles if cycles else 0.0


def program_performance(
    program: Program,
    results: dict[str, ScheduledLoopResult],
    stall_model: StallModel = PERFECT_MEMORY,
) -> ProgramPerformance:
    """Aggregate over the program's eligible loops.

    *results* maps loop names to their scheduling outcome; every eligible
    loop must be present (a missing loop is a harness bug worth failing
    loudly on).
    """
    perfs = []
    for loop in program.eligible_loops():
        result = results[loop.name]
        perfs.append(loop_performance(loop, result, stall_model))
    return ProgramPerformance(program_name=program.name, loops=tuple(perfs))
