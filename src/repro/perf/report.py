"""Plain-text table rendering for experiment outputs.

Keeps the benchmark harnesses free of formatting noise: they produce rows
(lists of dicts), and these helpers align them the way the paper's tables
and figure captions read.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def format_table(
    rows: Sequence[dict[str, Any]],
    columns: Sequence[str] | None = None,
    *,
    floatfmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    if columns is None:
        columns = list(rows[0])

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    table = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    out = []
    if title:
        out.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.append(header)
    out.append("  ".join("-" * w for w in widths))
    for line in table:
        out.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(out)


def format_series(
    label: str, points: Iterable[tuple[Any, float]], floatfmt: str = ".3f"
) -> str:
    """Render an (x, y) series as a one-line summary (figure data)."""
    body = ", ".join(f"{x}:{format(y, floatfmt)}" for x, y in points)
    return f"{label}: {body}"
