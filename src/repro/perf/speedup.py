"""Cycle-time-aware speed-up (Section 6.3 / Figure 9).

IPC compares work per cycle; real performance multiplies by clock
frequency.  With the Palacharla-style cycle times of
:mod:`repro.arch.timing`::

    speedup = (IPC_clustered / IPC_unified) * (cycle_unified / cycle_clustered)

The paper's headline: the 4-cluster, 1-bus machine with selective
unrolling reaches ~3.6x over the unified machine on SPECfp95.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.cluster import MachineConfig
from ..arch.timing import cycle_time_ps


@dataclass(frozen=True)
class SpeedupReport:
    """One clustered-vs-unified comparison point."""

    clustered_name: str
    ipc_clustered: float
    ipc_unified: float
    cycle_clustered_ps: float
    cycle_unified_ps: float

    @property
    def ipc_ratio(self) -> float:
        return self.ipc_clustered / self.ipc_unified if self.ipc_unified else 0.0

    @property
    def clock_ratio(self) -> float:
        return self.cycle_unified_ps / self.cycle_clustered_ps

    @property
    def speedup(self) -> float:
        return self.ipc_ratio * self.clock_ratio


def speedup_report(
    clustered: MachineConfig,
    unified: MachineConfig,
    ipc_clustered: float,
    ipc_unified: float,
) -> SpeedupReport:
    """Combine measured IPCs with modelled cycle times."""
    return SpeedupReport(
        clustered_name=clustered.name,
        ipc_clustered=ipc_clustered,
        ipc_unified=ipc_unified,
        cycle_clustered_ps=cycle_time_ps(clustered),
        cycle_unified_ps=cycle_time_ps(unified),
    )
