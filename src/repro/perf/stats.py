"""Schedule statistics: lifetimes, utilisation, communication profile.

SMS is a *lifetime-sensitive* scheduler; these statistics expose the
quantities it optimises so schedules can be compared beyond their II:
value lifetimes (mean/max), per-cluster register pressure, functional-unit
and bus utilisation, and the communication profile (transfers, broadcast
fan-out, reuse).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lifetimes import _intervals, cluster_pressures
from ..core.mrt import ReservationTable
from ..core.schedule import ModuloSchedule
from ..ir.operation import FuClass


@dataclass(frozen=True)
class ScheduleStats:
    """Summary statistics of one modulo schedule."""

    ii: int
    stage_count: int
    n_operations: int
    n_communications: int
    total_bus_readers: int
    mean_lifetime: float
    max_lifetime: int
    pressure_per_cluster: dict[int, int]
    fu_utilisation: float
    bus_utilisation: float

    @property
    def max_pressure(self) -> int:
        return max(self.pressure_per_cluster.values(), default=0)

    @property
    def broadcast_fanout(self) -> float:
        """Mean reading clusters per transfer (1.0 = pure unicast)."""
        if self.n_communications == 0:
            return 0.0
        return self.total_bus_readers / self.n_communications

    def describe(self) -> str:
        lines = [
            f"II={self.ii} SC={self.stage_count} ops={self.n_operations}",
            f"lifetimes: mean={self.mean_lifetime:.1f} max={self.max_lifetime}",
            f"pressure: {self.pressure_per_cluster} (max {self.max_pressure})",
            f"utilisation: FU {self.fu_utilisation:.0%}, bus {self.bus_utilisation:.0%}",
            f"communications: {self.n_communications} "
            f"(fan-out {self.broadcast_fanout:.2f})",
        ]
        return "\n".join(lines)


def _rebuild_mrt(schedule: ModuloSchedule) -> ReservationTable:
    """Reservation tables reconstructed from a finished schedule."""
    mrt = ReservationTable(schedule.config, schedule.ii)
    for node, placed in schedule.ops.items():
        op = schedule.graph.operation(node)
        grid = mrt._fu[(placed.cluster, op.fu_class)]
        grid.occupy(placed.cycle % schedule.ii, placed.fu_index, node)
    for comm in schedule.comms:
        mrt.occupy_bus(comm.start_cycle, comm.bus, (comm.producer, comm.start_cycle))
    return mrt


def schedule_stats(schedule: ModuloSchedule) -> ScheduleStats:
    """Compute all statistics for *schedule*."""
    intervals = _intervals(schedule, None)
    lengths = [end - start for _, start, end in intervals]
    mrt = _rebuild_mrt(schedule)
    return ScheduleStats(
        ii=schedule.ii,
        stage_count=schedule.stage_count,
        n_operations=len(schedule.ops),
        n_communications=len(schedule.comms),
        total_bus_readers=sum(len(c.readers) for c in schedule.comms),
        mean_lifetime=(sum(lengths) / len(lengths)) if lengths else 0.0,
        max_lifetime=max(lengths, default=0),
        pressure_per_cluster=cluster_pressures(schedule),
        fu_utilisation=mrt.fu_utilisation(),
        bus_utilisation=mrt.bus_utilisation(),
    )


def render_reservation_table(schedule: ModuloSchedule) -> str:
    """ASCII view of the modulo reservation tables (rows = II)."""
    mrt = _rebuild_mrt(schedule)
    config = schedule.config
    header = ["row"]
    for cluster in config.clusters():
        for fu_class in (FuClass.INT, FuClass.FP, FuClass.MEM):
            for unit in range(config.fu_count(cluster, fu_class)):
                header.append(f"c{cluster}.{fu_class.value}{unit}")
    for bus in range(config.buses.count):
        header.append(f"bus{bus}")

    rows = []
    for row in range(schedule.ii):
        cells = [f"{row:3d}"]
        for cluster in config.clusters():
            for fu_class in (FuClass.INT, FuClass.FP, FuClass.MEM):
                for unit in range(config.fu_count(cluster, fu_class)):
                    owner = mrt.fu_owner(cluster, fu_class, row, unit)
                    cells.append("." if owner is None else f"n{owner}")
        for bus in range(config.buses.count):
            owner = mrt._bus.cells[row][bus]
            cells.append("." if owner is None else f"n{owner[0]}")
        rows.append(cells)

    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))
    ]
    out = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(header))]
    for cells in rows:
        out.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(out)
