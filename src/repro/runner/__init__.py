"""Parallel, cache-backed experiment engine.

Every figure in the paper is a grid sweep: thousands of
(loop x machine x scheduler x unrolling-policy) points, each of which
schedules — and for cross-validation also simulates — one loop.  This
package decomposes such sweeps into hashable, self-describing
:class:`~repro.runner.scenario.ScenarioPoint` work units and provides:

* :mod:`repro.runner.scenario` — the work-unit and result records, and
  the canonical hashing that makes them content-addressable;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  (key = scenario hash + code version) so interrupted sweeps resume for
  free and repeated figures skip scheduling entirely;
* :mod:`repro.runner.engine` — point execution, the scheduler registry,
  and :func:`~repro.runner.engine.run_sweep`: deterministic sharding of
  cache misses across a ``ProcessPoolExecutor``;
* :mod:`repro.runner.grids` — the named-grid registry behind the
  ``repro-vliw sweep`` command.

The experiment harnesses in :mod:`repro.experiments` are thin layers on
top: their nested loops are grid declarations, and
:class:`~repro.experiments.common.ExperimentContext` memoises runner
results in-process while delegating persistence to the shared cache.
See ``docs/ARCHITECTURE.md`` for the full data-flow.
"""

from .cache import CacheStats, ResultCache, default_cache_root, default_code_version
from .engine import (
    SCHEDULERS,
    SweepStats,
    execute_point,
    execute_points,
    make_scheduler,
    make_worker_pool,
    run_sweep,
    scheduler_table,
    sequential_fallback,
)
from .grids import GRIDS, GridSpec
from .scenario import (
    GridItem,
    PointResult,
    ScenarioPoint,
    graph_content_hash,
    machine_to_json,
    program_payload,
    scenario_for,
)

__all__ = [
    "GRIDS",
    "GridItem",
    "GridSpec",
    "CacheStats",
    "PointResult",
    "ResultCache",
    "SCHEDULERS",
    "ScenarioPoint",
    "SweepStats",
    "default_cache_root",
    "default_code_version",
    "execute_point",
    "execute_points",
    "graph_content_hash",
    "machine_to_json",
    "make_scheduler",
    "make_worker_pool",
    "program_payload",
    "run_sweep",
    "scenario_for",
    "scheduler_table",
]
