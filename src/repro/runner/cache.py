"""Content-addressed on-disk result cache.

Each executed :class:`~repro.runner.scenario.ScenarioPoint` is stored as
one small JSON file whose name is
``sha256(point.canonical() + code_version)``.  Consequences:

* **resume for free** — an interrupted sweep re-hits every finished
  point on the next run and recomputes only the remainder;
* **cross-figure reuse** — figures that share scenario points (Figure 9
  reuses Figure 8's schedules) share cache entries, across processes
  and across sessions;
* **invalidation by construction** — the code version participates in
  the key, so bumping it (new release, changed result schema) orphans
  every stale entry instead of silently serving it.

Writes are atomic (``os.replace`` from a per-*writer* unique temp file
via :func:`tempfile.mkstemp`), so concurrent writers — worker processes,
service handler threads in one process, or a sweep killed mid-write —
can never publish a torn entry or trample each other's temp files; a
corrupt or unreadable file is treated as a miss and overwritten.  The cache root defaults to ``~/.cache/repro-vliw`` and is
overridable via ``$REPRO_VLIW_CACHE`` or per instance.

User-supplied workloads (frontend ``.loop`` programs, inline service
programs) cache exactly like catalogue loops: their full loop payload
rides in ``ScenarioPoint.program`` and therefore participates in
``canonical()`` — two textually different programs can never collide,
while catalogue points (empty ``program``, key omitted) keep their
historical hashes byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from .scenario import RESULT_FORMAT, PointResult, ScenarioPoint

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "REPRO_VLIW_CACHE"


def default_cache_root() -> Path:
    """The cache directory used when none is given.

    ``$REPRO_VLIW_CACHE`` when set, else ``$XDG_CACHE_HOME/repro-vliw``,
    else ``~/.cache/repro-vliw``.
    """
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-vliw"


#: Process-wide memo of the package source hash (the tree never changes
#: under a running process; workers each compute it once).
_SOURCE_HASH: str | None = None


def package_source_hash(root: Path | None = None) -> str:
    """A short content hash over every ``repro`` source file.

    Any scheduler edit — with or without a release bump — must orphan
    cached results, otherwise a stale cache silently replays old numbers.
    Hashes (relative path, file bytes) of ``src/repro/**/*.py`` in sorted
    order; the default tree is hashed once per process and memoised
    (tests pass explicit roots).
    """
    global _SOURCE_HASH
    if root is not None:
        return _hash_tree(root)
    if _SOURCE_HASH is None:
        _SOURCE_HASH = _hash_tree(Path(__file__).resolve().parent.parent)  # src/repro
    return _SOURCE_HASH


def _hash_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        try:
            digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - racing editor/installer
            continue
        digest.update(b"\0")
    return digest.hexdigest()[:12]


def default_code_version() -> str:
    """The code version mixed into every cache key.

    Combines the package release, the result-payload format and a content
    hash of the package sources, so a new release, a payload change *or
    any code edit* invalidates old entries.
    """
    from .. import __version__

    return f"{__version__}+fmt{RESULT_FORMAT}+src{package_source_hash()}"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of cache contents plus this instance's hit counters."""

    root: str
    code_version: str
    entries: int
    total_bytes: int
    hits: int
    misses: int
    writes: int

    @property
    def hit_rate(self) -> float:
        """Hits over probes for this instance (0.0 before any probe)."""
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def to_dict(self) -> dict[str, object]:
        """JSON-ready snapshot (the service's ``/stats`` cache block)."""
        return {
            "root": self.root,
            "code_version": self.code_version,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
        }

    def render(self) -> str:
        """Human-readable stats block (the ``repro-vliw cache`` output)."""
        return "\n".join(
            [
                f"cache root:    {self.root}",
                f"code version:  {self.code_version}",
                f"entries:       {self.entries}",
                f"size:          {self.total_bytes / 1024:.1f} KiB",
                f"this session:  {self.hits} hit(s), {self.misses} miss(es), "
                f"{self.writes} write(s)",
            ]
        )


class ResultCache:
    """Content-addressed store of :class:`PointResult` payloads.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write); defaults to
        :func:`default_cache_root`.
    code_version:
        Version string mixed into every key; defaults to
        :func:`default_code_version`.  Tests pass explicit versions to
        exercise invalidation.
    """

    def __init__(
        self,
        root: str | os.PathLike[str] | None = None,
        *,
        code_version: str | None = None,
    ):
        self.root = Path(root) if root is not None else default_cache_root()
        self.code_version = code_version or default_code_version()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def key(self, point: ScenarioPoint) -> str:
        """The content address of *point* under this code version."""
        payload = point.canonical() + "\0" + self.code_version
        return hashlib.sha256(payload.encode()).hexdigest()

    def path_for(self, point: ScenarioPoint) -> Path:
        """Where *point*'s result lives (whether or not it exists yet)."""
        key = self.key(point)
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, point: ScenarioPoint) -> PointResult | None:
        """The cached result for *point*, or ``None`` on a miss.

        Corrupt, truncated or version-mismatched entries count as misses
        (and will be overwritten by the next :meth:`put`).
        """
        path = self.path_for(point)
        try:
            data = json.loads(path.read_text())
            result = PointResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, point: ScenarioPoint, result: PointResult) -> Path:
        """Persist *result* for *point* atomically; returns the path.

        The temp name must be unique per *writer*, not per process: the
        service executes batches on handler threads, so a pid-suffixed
        temp file would let two threads interleave writes and publish a
        torn entry.  ``mkstemp`` gives every writer its own file; the
        ``os.replace`` into place is atomic on POSIX and Windows.
        """
        path = self.path_for(point)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(result.to_dict(), sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem[:8], suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            raise
        self.writes += 1
        return path

    def __contains__(self, point: ScenarioPoint) -> bool:
        return self.path_for(point).is_file()

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Walk the cache directory and snapshot entry count and size."""
        entries = 0
        total = 0
        if self.root.is_dir():
            for path in self.root.glob("*/*.json"):
                try:
                    total += path.stat().st_size
                except OSError:  # pragma: no cover - racing deletion
                    continue
                entries += 1
        return CacheStats(
            root=str(self.root),
            code_version=self.code_version,
            entries=entries,
            total_bytes=total,
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
        )

    def clear(self) -> int:
        """Delete every entry (all versions); returns how many."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing deletion
                continue
        for sub in self.root.iterdir():
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    continue
        return removed
