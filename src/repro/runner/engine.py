"""Scenario execution and the parallel sweep engine.

:func:`execute_point` runs one :class:`ScenarioPoint` to a
:class:`PointResult` — schedule under the point's unrolling policy
(falling back to a one-iteration list schedule when modulo scheduling is
impossible), then optionally execute it on the cycle-accurate simulator
and diff against the analytic model.

:func:`run_sweep` executes a whole grid: it serves every point it can
from the on-disk cache, shards the misses **deterministically** (by
content hash, so the work distribution is a pure function of the grid,
not of timing) across a ``ProcessPoolExecutor``, and persists each
result as it completes.  Because scheduling is deterministic per point
and results are keyed by content, a sweep's output is byte-identical at
``--jobs 1`` and ``--jobs N``, and a killed sweep resumes from whatever
the cache already holds.

:func:`execute_points` is the execution core underneath
:func:`run_sweep`: it takes an already-deduplicated list of cache
misses and runs them — in-process, on an ephemeral pool, or on an
**injected long-lived executor**.  Long-lived front ends
(:mod:`repro.service`) call it directly with a shared
``ProcessPoolExecutor`` so concurrent clients amortise worker start-up
across requests instead of paying pool creation per sweep.

The scheduler registry (:data:`SCHEDULERS`, :func:`make_scheduler`) and
the list-schedule fallback live here so both the engine's workers and
the experiment harnesses dispatch through one table;
:mod:`repro.experiments.common` re-exports them.
"""

from __future__ import annotations

import json
from concurrent.futures import Executor, ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass
from multiprocessing import get_context
from time import perf_counter
from typing import Any, Callable

from ..arch.cluster import MachineConfig
from ..core.base import SchedulerBase
from ..core.bsa import BsaScheduler
from ..core.exact import ExactScheduler
from ..core.list_schedule import list_schedule
from ..core.selective import (
    ScheduledLoopResult,
    UnrollPolicy,
    schedule_with_policy,
)
from ..core.twophase import TwoPhaseScheduler
from ..core.unified import UnifiedScheduler
from ..errors import SchedulingError
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop
from ..ir.serialize import loop_from_dict, loop_to_dict
from ..obs.report import RunRecorder
from ..obs.trace import PHASES, TRACER
from ..sim.crosscheck import crosscheck_loop
from ..sim.memory import MemoryModel, RandomMissMemory
from .cache import ResultCache
from .scenario import GridItem, PointResult, ScenarioPoint, SimOutcome

#: Scheduler factory signature: config -> scheduler.
SchedulerFactory = Callable[[MachineConfig], SchedulerBase]

#: Registered schedulers, by the names used in scenario points,
#: experiment grids and ablation studies.  ``exact`` resolves its backend
#: (pure-python branch and bound vs z3) when instantiated — i.e. here, at
#: registry time.
SCHEDULERS: dict[str, SchedulerFactory] = {
    "bsa": lambda cfg: BsaScheduler(cfg),
    "two-phase": lambda cfg: TwoPhaseScheduler(cfg),
    "bsa-topo": lambda cfg: BsaScheduler(cfg, order="topo"),
    "bsa-least-loaded": lambda cfg: BsaScheduler(
        cfg, default_cluster_policy="least-loaded"
    ),
    "exact": lambda cfg: ExactScheduler(cfg),
}


def make_scheduler(name: str, config: MachineConfig) -> SchedulerBase:
    """Instantiate a registered scheduler.

    Unified machines dispatch every *heuristic* name to the SMS scheduler
    (the paper's baseline has exactly one modulo scheduler); ``exact`` is
    honoured on any machine — its whole point is to be an oracle for the
    others, the unified baseline included.

    Raises
    ------
    KeyError
        If *name* is not in :data:`SCHEDULERS` (and the machine is
        clustered; the unified machine ignores heuristic names).
    """
    if config.n_clusters == 1 and name != "exact":
        return UnifiedScheduler(config)
    return SCHEDULERS[name](config)


def scheduler_table() -> list[dict]:
    """The scheduler registry as table rows (feeds ``schedule --list``)."""
    from ..arch.configs import two_cluster_config

    probe = two_cluster_config()
    rows = []
    for name in sorted(SCHEDULERS):
        cls = type(SCHEDULERS[name](probe))
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append(
            {
                "scheduler": name,
                "class": cls.__name__,
                "description": doc[0] if doc else "",
            }
        )
    return rows


def sequential_fallback(
    graph: DependenceGraph, config: MachineConfig
) -> ScheduledLoopResult:
    """A non-pipelined stand-in schedule for loops that defeat the
    modulo schedulers: classic list scheduling of one iteration, II =
    schedule length, SC = 1 — what a compiler emits when it skips
    software pipelining."""
    sched = list_schedule(graph, config)
    return ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)


# ---------------------------------------------------------------------------
# Point execution
# ---------------------------------------------------------------------------
def execute_point(
    point: ScenarioPoint,
    loop: Loop,
    *,
    prior: ScheduledLoopResult | None = None,
    prior_fallback: bool = False,
) -> PointResult:
    """Run one scenario point to completion.

    Parameters
    ----------
    point:
        The work unit; its machine JSON is reconstructed here.
    loop:
        The live loop whose graph matches ``point.graph_hash``.
    prior:
        An already-computed schedule for the schedule-only twin of this
        point (cache cross-pollination); skips rescheduling when given.
    prior_fallback:
        Whether *prior* was a list-schedule fallback.

    Returns
    -------
    PointResult
        The serialisable outcome, including the simulator comparison
        when ``point.simulate`` is set.
    """
    config = point.config()
    if prior is not None:
        result, fallback = prior, prior_fallback
    else:
        scheduler = make_scheduler(point.scheduler, config)
        try:
            result = schedule_with_policy(
                loop.graph,
                scheduler,
                point.unroll_policy,
                rule=point.selective_rule,
            )
            fallback = False
        except SchedulingError:
            result = sequential_fallback(loop.graph, config)
            fallback = True

    sim = None
    if point.simulate:
        memory: MemoryModel | None = None
        if point.miss_rate > 0.0:
            memory = RandomMissMemory(
                point.miss_rate, point.miss_penalty, point.seed
            )
        sim_loop = Loop(
            graph=loop.graph, trip_count=point.niter, times_executed=1
        )
        with PHASES.time("sim.execute"):
            check = crosscheck_loop(sim_loop, result, memory=memory)
        sim = SimOutcome(
            analytic_cycles=check.analytic_cycles,
            simulated_cycles=check.simulated_cycles,
            analytic_ipc=check.analytic_ipc,
            simulated_ipc=check.simulated_ipc,
        )
    return PointResult.from_loop_result(result, fallback=fallback, sim=sim)


def store_result(
    cache: ResultCache, point: ScenarioPoint, result: PointResult
) -> None:
    """Persist a point result, cross-pollinating simulated points.

    A simulated point's result embeds the full schedule, so its
    schedule-only twin is written too (unless already present): a
    crossval sweep warms the cache for Figure 8 and vice versa.
    """
    cache.put(point, result)
    if result.sim is not None:
        twin = point.without_simulation()
        if twin not in cache:
            cache.put(
                twin,
                PointResult(
                    schedule=result.schedule,
                    unroll_factor=result.unroll_factor,
                    policy=result.policy,
                    fallback=result.fallback,
                ),
            )


# ---------------------------------------------------------------------------
# Worker plumbing (must stay module-level: pickled across processes)
# ---------------------------------------------------------------------------
def _run_batch(
    batch: list[dict[str, Any]],
    cache_root: str | None,
    code_version: str | None,
    trace_carrier: dict[str, str] | None = None,
) -> list[tuple[str, dict[str, Any], dict[str, Any]]]:
    """Execute one shard of work items in a worker process.

    Each item is ``{"point": <asdict>, "loop": <loop_to_dict>,
    "prior": <PointResult.to_dict() | None>}``.  Results are written to
    the shared cache *as each point completes* (atomic, content-keyed),
    so a sweep killed mid-shard still resumes from every finished point.
    Returns ``(canonical_key, result_payload, meta)`` triples; *meta*
    always carries the point's wall time, plus its finished spans when
    tracing is enabled (spawn workers inherit ``$REPRO_VLIW_TRACE``) —
    *trace_carrier* links those spans to the submitting trace.
    """
    cache = (
        ResultCache(cache_root, code_version=code_version)
        if cache_root is not None
        else None
    )
    out: list[tuple[str, dict[str, Any], dict[str, Any]]] = []
    with TRACER.adopt(trace_carrier):
        for item in batch:
            point = ScenarioPoint(**item["point"])
            loop = loop_from_dict(item["loop"])
            prior_payload = item.get("prior")
            prior = prior_fallback = None
            if prior_payload is not None:
                prior_result = PointResult.from_dict(prior_payload)
                prior = prior_result.loop_result()
                prior_fallback = prior_result.fallback
            t0 = perf_counter()
            with TRACER.span("runner.execute_point", point=point.describe()):
                result = execute_point(
                    point, loop, prior=prior, prior_fallback=bool(prior_fallback)
                )
            wall = perf_counter() - t0
            if cache is not None:
                store_result(cache, point, result)
            meta: dict[str, Any] = {"wall_s": wall}
            if TRACER.enabled:
                meta["spans"] = [span.to_dict() for span in TRACER.drain()]
            out.append((point.canonical(), result.to_dict(), meta))
    return out


def _shard(
    misses: list[tuple[str, GridItem]], jobs: int
) -> list[list[tuple[str, GridItem]]]:
    """Split cache misses into *jobs* deterministic shards.

    Points are ordered by canonical key and dealt round-robin, so the
    partition depends only on the grid contents — never on timing or
    dict order — and shard loads stay balanced.
    """
    ordered = sorted(misses, key=lambda kv: kv[0])
    shards: list[list[tuple[str, GridItem]]] = [[] for _ in range(jobs)]
    for i, item in enumerate(ordered):
        shards[i % jobs].append(item)
    return [s for s in shards if s]


# ---------------------------------------------------------------------------
# The execution core (shared by one-shot sweeps and the service)
# ---------------------------------------------------------------------------
def make_worker_pool(workers: int) -> ProcessPoolExecutor:
    """A spawn-context process pool suitable for :func:`execute_points`.

    Spawn (not fork) keeps workers identical across platforms and free
    of inherited locks; long-lived callers (:mod:`repro.service`) create
    one of these once and inject it into every batch.
    """
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=get_context("spawn")
    )


def execute_points(
    misses: list[tuple[str, GridItem]],
    *,
    jobs: int = 1,
    pool: Executor | None = None,
    cache: ResultCache | None = None,
    prior_for: Callable[
        [ScenarioPoint], tuple[ScheduledLoopResult | None, bool]
    ]
    | None = None,
    meta_out: dict[str, dict[str, Any]] | None = None,
) -> dict[str, PointResult]:
    """Execute already-deduplicated cache misses and return their results.

    This is the execution core shared by :func:`run_sweep` (which owns
    cache probing and stats) and the batch scheduling service (which
    owns its own dedupe/queueing).  Three execution strategies:

    * ``pool`` given — shard across the **injected** executor; the pool
      is *not* shut down, so a long-lived caller reuses warm workers;
    * ``pool is None`` and ``jobs > 1`` — shard across an ephemeral
      spawn-context :class:`ProcessPoolExecutor` (the one-shot CLI path);
    * otherwise — execute serially in-process.

    Parameters
    ----------
    misses:
        ``(canonical_key, (point, loop))`` pairs; callers pass distinct
        keys (duplicates would just be executed twice).
    jobs:
        Shard count.  With an injected *pool* this is the batch's
        parallel width (shards beyond the pool's workers simply queue).
    cache:
        When given, every result is persisted as it completes — in the
        worker for pooled execution, inline for serial execution — so an
        interrupted batch still resumes from every finished point.
    prior_for:
        Optional hook returning ``(schedule, was_fallback)`` for a
        simulated point's schedule-only twin (see :func:`run_sweep`).
    meta_out:
        When given, filled with ``canonical_key -> {"wall_s": ...}``
        execution metadata (observability only — never part of the
        result payload or the cache).

    Returns
    -------
    dict
        ``canonical_key -> PointResult`` for every miss, in completion
        order.  Deterministic in content (scheduling is deterministic
        per point) regardless of strategy.
    """
    results: dict[str, PointResult] = {}
    if not misses:
        return results

    def _prior(point: ScenarioPoint) -> tuple[ScheduledLoopResult | None, bool]:
        if prior_for is None:
            return None, False
        return prior_for(point)

    if pool is None and jobs <= 1:
        for key, (point, loop) in misses:
            prior, prior_fb = _prior(point)
            t0 = perf_counter()
            with TRACER.span("runner.execute_point", point=point.describe()):
                result = execute_point(
                    point, loop, prior=prior, prior_fallback=prior_fb
                )
            if meta_out is not None:
                meta_out[key] = {"wall_s": perf_counter() - t0}
            if cache is not None:
                store_result(cache, point, result)
            results[key] = result
        return results

    shards = _shard(misses, max(1, jobs))
    payloads = []
    for shard in shards:
        batch = []
        for _key, (point, loop) in shard:
            prior, prior_fb = _prior(point)
            batch.append(
                {
                    "point": _point_dict(point),
                    "loop": loop_to_dict(loop),
                    "prior": (
                        PointResult.from_loop_result(
                            prior, fallback=prior_fb
                        ).to_dict()
                        if prior is not None
                        else None
                    ),
                }
            )
        payloads.append(batch)
    cache_root = str(cache.root) if cache is not None else None
    code_version = cache.code_version if cache is not None else None
    owned = (
        make_worker_pool(len(shards)) if pool is None else nullcontext(pool)
    )
    carrier = TRACER.carrier()
    with owned as executor:
        futures = [
            executor.submit(_run_batch, batch, cache_root, code_version, carrier)
            for batch in payloads
        ]
        for future in futures:
            for key, payload, meta in future.result():
                results[key] = PointResult.from_dict(payload)
                for span in meta.pop("spans", []):
                    TRACER.record(span)
                if meta_out is not None:
                    meta_out[key] = meta
    return results


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------
@dataclass
class SweepStats:
    """Accounting for one :func:`run_sweep` call."""

    #: Distinct scenario points in the grid (duplicates collapse).
    total: int = 0
    #: Points served from the on-disk cache.
    cached: int = 0
    #: Points actually scheduled/simulated this run.
    executed: int = 0
    #: Executed points that required the list-schedule fallback.
    fallbacks: int = 0
    #: Worker processes used (1 = in-process serial execution).
    jobs: int = 1

    def merge(self, other: "SweepStats") -> None:
        """Accumulate another run's counters into this one."""
        self.total += other.total
        self.cached += other.cached
        self.executed += other.executed
        self.fallbacks += other.fallbacks
        self.jobs = max(self.jobs, other.jobs)

    def render(self) -> str:
        """One-line summary for CLI output."""
        return (
            f"{self.total} point(s): {self.cached} from cache, "
            f"{self.executed} executed ({self.fallbacks} fallback(s)), "
            f"jobs={self.jobs}"
        )


def run_sweep(
    items: list[GridItem],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    fresh: bool = False,
    pool: Executor | None = None,
    prior_lookup: Callable[
        [ScenarioPoint], tuple[ScheduledLoopResult, bool] | None
    ]
    | None = None,
    recorder: RunRecorder | None = None,
    execute: Callable[..., dict[str, PointResult]] | None = None,
) -> tuple[dict[str, PointResult], SweepStats]:
    """Execute a grid of scenario points, in parallel, through the cache.

    Parameters
    ----------
    items:
        The declared grid; duplicate points (same canonical identity)
        are executed once.
    jobs:
        Worker processes.  ``1`` executes in-process (no pool, easier
        debugging, identical results).
    cache:
        Shared on-disk cache; ``None`` disables persistence.
    fresh:
        Ignore cached entries (results are still written back).
    pool:
        Optional long-lived executor for the misses (see
        :func:`execute_points`); when given, ``jobs`` only sets the
        shard width and no pool is created or shut down here.
    prior_lookup:
        Optional hook returning ``(schedule, was_fallback)`` for a
        point's schedule-only twin (see
        :meth:`ScenarioPoint.without_simulation`), or ``None`` when
        unknown; lets simulated sweeps reuse schedules the caller
        already holds in memory without losing fallback accounting.
    recorder:
        Optional :class:`~repro.obs.report.RunRecorder`; when given, one
        :class:`~repro.obs.report.PointRecord` is recorded per distinct
        point (source ``disk`` or ``executed``, with executed wall
        times).  Recording is out-of-band: results, stats and cache
        contents are identical with or without it.
    execute:
        Optional replacement for :func:`execute_points` with the same
        signature — this is how the distributed fabric plugs in (its
        coordinator's ``execute`` farms the misses out to pull-based
        workers instead of local processes).  Cache probing, dedupe,
        stats and recording stay here, so swapping the executor cannot
        change what a sweep returns — only where the work ran.

    Returns
    -------
    (results, stats):
        *results* maps ``point.canonical()`` to :class:`PointResult`;
        *stats* says how much work was actually done — ``stats.executed
        == 0`` means the whole grid was served from cache.
    """
    unique: dict[str, GridItem] = {}
    for point, loop in items:
        unique.setdefault(point.canonical(), (point, loop))

    results: dict[str, PointResult] = {}
    stats = SweepStats(total=len(unique), jobs=max(1, jobs))

    ctx = TRACER.current_context()
    trace_id = ctx.trace_id if ctx is not None else None

    misses: list[tuple[str, GridItem]] = []
    for key, (point, loop) in unique.items():
        cached = cache.get(point) if (cache is not None and not fresh) else None
        if cached is not None:
            results[key] = cached
            stats.cached += 1
            if recorder is not None:
                recorder.record(point, cached, source="disk", trace_id=trace_id)
        else:
            misses.append((key, (point, loop)))

    if not misses:
        return results, stats

    def _prior_for(point: ScenarioPoint) -> tuple[ScheduledLoopResult | None, bool]:
        """Schedule reuse for simulated points: memory first, then disk."""
        if not point.simulate:
            return None, False
        twin = point.without_simulation()
        if prior_lookup is not None:
            known = prior_lookup(twin)
            if known is not None:
                return known
        if cache is not None and not fresh:
            cached_twin = cache.get(twin)
            if cached_twin is not None:
                return cached_twin.loop_result(), cached_twin.fallback
        return None, False

    meta_out: dict[str, dict[str, Any]] | None = (
        {} if recorder is not None else None
    )
    grid_for_key = dict(misses)
    runner = execute if execute is not None else execute_points
    executed = runner(
        misses,
        jobs=jobs,
        pool=pool,
        cache=cache,
        prior_for=_prior_for,
        meta_out=meta_out,
    )
    for key, result in executed.items():
        results[key] = result
        stats.executed += 1
        stats.fallbacks += int(result.fallback)
        if recorder is not None:
            meta = (meta_out or {}).get(key, {})
            recorder.record(
                grid_for_key[key][0],
                result,
                source="executed",
                wall_s=meta.get("wall_s", 0.0),
                trace_id=trace_id,
            )
    return results, stats


def _point_dict(point: ScenarioPoint) -> dict[str, Any]:
    """Plain-dict form of a point (stable across pickling protocols)."""
    return json.loads(point.canonical())
