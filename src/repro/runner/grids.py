"""Named grid registry for ``repro-vliw sweep``.

Each :class:`GridSpec` names one declared experiment grid and knows how
to run it through an :class:`~repro.experiments.common.ExperimentContext`
and render the resulting tables.  ``repro-vliw sweep <name> --jobs N``
is then the single entry point for any sweep: points are served from
the shared cache, misses execute across worker processes, and
interrupted runs resume from whatever finished.

New grids are one registry entry: declare the points (usually by
composing :func:`~repro.experiments.common.suite_grid` calls), reduce,
render.  The experiment modules are imported lazily inside each entry —
this module is imported by the runner package, which the experiment
harnesses themselves build on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.common import ExperimentContext


@dataclass(frozen=True)
class GridSpec:
    """One named, sweepable experiment grid.

    Attributes
    ----------
    name:
        Registry key (the ``repro-vliw sweep <name>`` argument).
    description:
        One-line summary shown by ``repro-vliw sweep --list``.
    run:
        ``(ctx, quick) -> str``: execute the grid through *ctx* (which
        carries the cache and job count) and return the rendered tables.
    """

    name: str
    description: str
    run: Callable[["ExperimentContext", bool], str]


def _run_fig4(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import fig4_rows, run_fig4
    from ..perf.report import format_table

    kwargs = {"bus_sweep": (1, 2, 4)} if quick else {}
    points = run_fig4(ctx, **kwargs)
    return format_table(fig4_rows(points), title="Figure 4: relative IPC vs buses")


def _run_fig8(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import average_ipc, fig8_rows, run_fig8
    from ..perf.report import format_table

    kwargs = {"bus_counts": (1,), "latencies": (1, 4)} if quick else {}
    points = run_fig8(ctx, **kwargs)
    return (
        format_table(fig8_rows(points), title="Figure 8: IPC per program")
        + "\n\n"
        + format_table(average_ipc(points), title="Figure 8: averages")
    )


def _run_fig9(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import best_speedup, fig9_rows, run_fig9
    from ..perf.report import format_table

    kwargs = {"cluster_counts": (4,), "bus_counts": (1,)} if quick else {}
    points = run_fig9(ctx, **kwargs)
    best = best_speedup(points)
    return (
        format_table(fig9_rows(points), title="Figure 9: speed-up vs unified")
        + f"\n\nbest: {best.n_clusters}-cluster / {best.n_buses} bus / "
        f"{best.scenario} -> {best.report.speedup:.2f}x"
    )


def _run_fig10(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import fig10_rows, run_fig10
    from ..perf.report import format_table

    kwargs = {"bus_counts": (1,), "latencies": (1, 4)} if quick else {}
    points = run_fig10(ctx, **kwargs)
    return format_table(
        fig10_rows(points), title="Figure 10: code size (normalised)"
    )


def _run_crossval(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import (
        crossval_rows,
        max_cycle_divergence,
        max_ipc_divergence,
        run_crossval,
    )
    from ..perf.report import format_table

    kwargs = (
        {"cluster_counts": (4,), "bus_counts": (1,), "latencies": (1, 4)}
        if quick
        else {}
    )
    points = run_crossval(ctx, **kwargs)
    return (
        format_table(
            crossval_rows(points),
            title="Cross-validation: analytic model vs simulation (Figure 8 grid)",
            floatfmt=".3e",
        )
        + f"\n\n{len(points)} loop executions simulated; max IPC divergence "
        f"{max_ipc_divergence(points):.3e}, max cycle divergence "
        f"{max_cycle_divergence(points)}"
    )


def _run_gap(ctx: "ExperimentContext", quick: bool) -> str:
    from ..experiments import render_gap, run_gap

    points = run_gap(ctx, quick=quick)
    return render_gap(points, "text")


def _run_ablation(ctx: "ExperimentContext", quick: bool) -> str:
    from dataclasses import asdict

    from ..experiments import (
        run_selective_rule_ablation,
        run_singlepass_ablation,
    )
    from ..perf.report import format_table

    latencies = (1, 2) if quick else (1, 2, 4)
    scenarios = ((1, 1), (2, 1)) if quick else ((1, 1), (1, 4), (2, 1))
    singlepass = run_singlepass_ablation(ctx, latencies=latencies)
    rules = run_selective_rule_ablation(ctx, scenarios=scenarios)
    return (
        format_table(
            [asdict(p) for p in singlepass],
            title="Ablation EXP-A1: single-pass vs two-phase",
        )
        + "\n\n"
        + format_table(
            [asdict(p) for p in rules],
            title="Ablation EXP-A2: Figure 6 decision rule",
        )
    )


def _run_smoke(ctx: "ExperimentContext", quick: bool) -> str:
    from ..arch.configs import clustered_config
    from ..core.selective import UnrollPolicy
    from ..experiments.common import config_label
    from ..perf.report import format_table
    from ..runner.scenario import scenario_for
    from ..workloads.kernels import kernel_loop

    kernels = ("daxpy", "dot") if quick else ("daxpy", "dot", "fir4", "vadd")
    configs = [clustered_config(2, 1, 1), clustered_config(4, 1, 1)]
    items = []
    for name in kernels:
        loop = kernel_loop(name, trip_count=100)
        for config in configs:
            point = scenario_for(loop, config, "bsa", UnrollPolicy.NONE)
            items.append((point, loop))
    ctx.run_grid(items)
    rows = []
    for point, _loop in items:
        result = ctx.memo[point.canonical()]
        rows.append(
            {
                "kernel": point.loop,
                "config": config_label(point.config()),
                "ii": result.ii,
                "stages": result.stage_count,
            }
        )
    return format_table(
        rows, title="Smoke grid: II / stage count per kernel and machine"
    )


#: All sweepable grids, by name (the ``repro-vliw sweep`` registry).
GRIDS: dict[str, GridSpec] = {
    spec.name: spec
    for spec in (
        GridSpec("fig4", "bus-sensitivity sweep (relative IPC)", _run_fig4),
        GridSpec("fig8", "per-program IPC under the three policies", _run_fig8),
        GridSpec("fig9", "cycle-time-aware speed-up over unified", _run_fig9),
        GridSpec("fig10", "code-size impact of the policies", _run_fig10),
        GridSpec(
            "crossval",
            "Figure 8 grid re-run on the cycle-accurate simulator",
            _run_crossval,
        ),
        GridSpec(
            "gap",
            "heuristic-vs-optimal II and MaxLive (exact backend oracle)",
            _run_gap,
        ),
        GridSpec(
            "ablation",
            "single-pass vs two-phase and Figure 6 rule ablations",
            _run_ablation,
        ),
        GridSpec(
            "smoke",
            "tiny fixed grid for fabric/CI plumbing checks (milliseconds)",
            _run_smoke,
        ),
    )
}
