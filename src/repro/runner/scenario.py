"""Scenario work units and their results.

A :class:`ScenarioPoint` is one self-describing unit of experiment work:
*schedule this loop on this machine with this scheduler under this
unrolling policy* — and optionally *then execute it on the
cycle-accurate simulator*.  Points carry only primitive fields (names,
canonical JSON, numbers), so they are hashable, picklable, and stable
across processes; :meth:`ScenarioPoint.canonical` is the content-address
used by both the in-process memo and the on-disk cache.

A :class:`PointResult` is the JSON-serialisable outcome: the full
schedule (via :mod:`repro.ir.serialize`), the transformation that
produced it, and — for simulated points — the analytic-vs-simulated
cycle and IPC comparison.  Everything any figure reducer needs can be
recovered from it, which is what lets repeated sweeps skip scheduling
entirely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any

from ..core.selective import ScheduledLoopResult, SelectiveRule, UnrollPolicy
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop
from ..ir.serialize import (
    config_from_dict,
    config_to_dict,
    graph_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..arch.cluster import MachineConfig

#: Version of the :class:`PointResult` payload layout.  Bumping it
#: invalidates every cache entry (it feeds the default code version).
RESULT_FORMAT = 1


def _canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace (hash input)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def graph_content_hash(graph: DependenceGraph) -> str:
    """Content hash of a dependence graph (name, operations, dependences).

    The same loop hashes identically regardless of the suite or program
    that owns it (ownership is not part of the graph), so shared loops
    dedupe to one cache entry per scenario.  The graph *name* is part of
    the content: two identically-shaped loops with different names are
    distinct points.
    """
    return hashlib.sha256(
        _canonical_json(graph_to_dict(graph)).encode()
    ).hexdigest()[:24]


def machine_to_json(config: "MachineConfig") -> str:
    """Canonical JSON description of a machine configuration.

    The full configuration (clusters, FU mix, registers, bus fabric) is
    embedded in the scenario point, so arbitrary machines — not just the
    paper's named ones — are cacheable and reconstructible in workers.
    """
    return _canonical_json(config_to_dict(config))


def machine_from_json(text: str) -> "MachineConfig":
    """Rebuild a machine configuration from :func:`machine_to_json`."""
    return config_from_dict(json.loads(text))


@dataclass(frozen=True)
class ScenarioPoint:
    """One hashable, self-describing unit of experiment work.

    Attributes
    ----------
    loop:
        Loop name (also embedded in the graph hash via the graph name).
    graph_hash:
        :func:`graph_content_hash` of the loop body.
    machine:
        Canonical machine JSON from :func:`machine_to_json`.
    scheduler:
        Registered scheduler name (see
        :data:`repro.runner.engine.SCHEDULERS`); unified machines always
        dispatch to the SMS scheduler regardless.
    policy:
        :class:`~repro.core.selective.UnrollPolicy` value string.
    rule:
        :class:`~repro.core.selective.SelectiveRule` value string.
    simulate:
        When true, the scheduled loop is also executed on the
        cycle-accurate simulator and diffed against the analytic model.
    niter:
        Source iterations to simulate (the loop's trip count); only
        meaningful when *simulate* is set.
    miss_rate / miss_penalty / seed:
        Optional memory-model parameters for simulated points
        (``miss_rate == 0`` is the paper's perfect memory).
    program:
        Canonical loop payload (:func:`program_payload`) for user-supplied
        workloads that exist in no catalogue — frontend-parsed ``.loop``
        programs, inline service programs.  Empty for catalogue loops, and
        *omitted from the canonical identity when empty*, so every
        pre-existing point hashes exactly as before.
    """

    loop: str
    graph_hash: str
    machine: str
    scheduler: str
    policy: str
    rule: str
    simulate: bool = False
    niter: int = 0
    miss_rate: float = 0.0
    miss_penalty: int = 0
    seed: int = 0
    program: str = ""

    def canonical(self) -> str:
        """Canonical JSON identity of this point (the memo/cache key).

        The ``program`` payload participates only when present: catalogue
        points keep their historical identity byte-for-byte, while a
        user program's full content (already summarised by ``graph_hash``)
        still travels with the point so any worker can rebuild it.
        """
        data = asdict(self)
        if not data["program"]:
            del data["program"]
        return _canonical_json(data)

    def program_loop(self) -> Loop:
        """Rebuild the embedded user program as a live :class:`Loop`.

        Only valid for points carrying a ``program`` payload.
        """
        from ..ir.serialize import loop_from_dict

        if not self.program:
            raise ValueError(f"point {self.loop!r} carries no program payload")
        return loop_from_dict(json.loads(self.program))

    def config(self) -> "MachineConfig":
        """The machine configuration this point targets."""
        return machine_from_json(self.machine)

    @property
    def unroll_policy(self) -> UnrollPolicy:
        """The parsed :class:`UnrollPolicy`."""
        return UnrollPolicy(self.policy)

    @property
    def selective_rule(self) -> SelectiveRule:
        """The parsed :class:`SelectiveRule`."""
        return SelectiveRule(self.rule)

    def without_simulation(self) -> "ScenarioPoint":
        """The schedule-only twin of a simulated point.

        Used for cache cross-pollination: a simulated point can reuse a
        schedule cached by a figure sweep, and vice versa.
        """
        return ScenarioPoint(
            loop=self.loop,
            graph_hash=self.graph_hash,
            machine=self.machine,
            scheduler=self.scheduler,
            policy=self.policy,
            rule=self.rule,
            program=self.program,
        )

    def describe(self) -> str:
        """Short human-readable label (progress lines, error messages)."""
        sim = f" sim(niter={self.niter})" if self.simulate else ""
        return (
            f"{self.loop} @ {json.loads(self.machine)['name']} "
            f"[{self.scheduler}/{self.policy}]{sim}"
        )


def program_payload(loop: Loop) -> str:
    """Canonical JSON payload of a user-supplied loop.

    Embedded in :class:`ScenarioPoint.program` so that non-catalogue
    workloads are self-describing: a fabric worker (or a cold cache miss
    on another machine) rebuilds the exact loop from the point alone via
    :meth:`ScenarioPoint.program_loop`.
    """
    from ..ir.serialize import loop_to_dict

    return _canonical_json(loop_to_dict(loop))


def scenario_for(
    loop: Loop,
    config: "MachineConfig",
    scheduler: str,
    policy: UnrollPolicy,
    rule: SelectiveRule = SelectiveRule.MII_UNROLLED,
    *,
    simulate: bool = False,
    niter: int | None = None,
    miss_rate: float = 0.0,
    miss_penalty: int = 0,
    seed: int = 0,
    program: str = "",
) -> ScenarioPoint:
    """Build the :class:`ScenarioPoint` for one (loop, machine, algorithm)
    data point.

    *niter* defaults to the loop's trip count when *simulate* is set.
    Pass ``program=program_payload(loop)`` for user-supplied loops that
    exist in no catalogue, making the point self-describing.
    """
    return ScenarioPoint(
        loop=loop.name,
        graph_hash=graph_content_hash(loop.graph),
        machine=machine_to_json(config),
        scheduler=scheduler,
        policy=policy.value,
        rule=rule.value,
        simulate=simulate,
        niter=(loop.trip_count if niter is None else niter) if simulate else 0,
        miss_rate=miss_rate if simulate else 0.0,
        miss_penalty=miss_penalty if simulate else 0,
        seed=seed if simulate else 0,
        program=program,
    )


@dataclass(frozen=True)
class SimOutcome:
    """Analytic-vs-simulated numbers for one executed scenario point."""

    analytic_cycles: int
    simulated_cycles: int
    analytic_ipc: float
    simulated_ipc: float

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimOutcome":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            analytic_cycles=data["analytic_cycles"],
            simulated_cycles=data["simulated_cycles"],
            analytic_ipc=data["analytic_ipc"],
            simulated_ipc=data["simulated_ipc"],
        )


@dataclass(frozen=True)
class PointResult:
    """The serialisable outcome of executing one :class:`ScenarioPoint`.

    Attributes
    ----------
    schedule:
        ``schedule_to_dict`` payload of the emitted modulo schedule
        (of the unrolled graph when the policy unrolled).
    unroll_factor:
        How many source iterations one kernel iteration retires.
    policy:
        The :class:`UnrollPolicy` value the point was scheduled under.
    fallback:
        True when modulo scheduling failed and the point was charged the
        non-pipelined list-schedule fallback.
    sim:
        :class:`SimOutcome` for simulated points, else ``None``.
    """

    schedule: dict[str, Any]
    unroll_factor: int
    policy: str
    fallback: bool = False
    sim: SimOutcome | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready payload (the on-disk cache value)."""
        return {
            "format": RESULT_FORMAT,
            "schedule": self.schedule,
            "unroll_factor": self.unroll_factor,
            "policy": self.policy,
            "fallback": self.fallback,
            "sim": self.sim.to_dict() if self.sim else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PointResult":
        """Rebuild from :meth:`to_dict` output.

        Raises
        ------
        KeyError / ValueError
            On malformed payloads (the cache treats those as misses).
        """
        if data.get("format") != RESULT_FORMAT:
            raise ValueError(
                f"unsupported point-result format {data.get('format')!r}"
            )
        sim = data.get("sim")
        return cls(
            schedule=data["schedule"],
            unroll_factor=data["unroll_factor"],
            policy=data["policy"],
            fallback=data["fallback"],
            sim=SimOutcome.from_dict(sim) if sim else None,
        )

    def loop_result(self) -> ScheduledLoopResult:
        """Materialise the :class:`ScheduledLoopResult` (deserialising the
        schedule on first use)."""
        sched = schedule_from_dict(self.schedule)
        return ScheduledLoopResult(
            sched, self.unroll_factor, UnrollPolicy(self.policy)
        )

    @classmethod
    def from_loop_result(
        cls,
        result: ScheduledLoopResult,
        *,
        fallback: bool = False,
        sim: SimOutcome | None = None,
    ) -> "PointResult":
        """Wrap a live :class:`ScheduledLoopResult` for caching."""
        return cls(
            schedule=schedule_to_dict(result.schedule),
            unroll_factor=result.unroll_factor,
            policy=result.policy.value,
            fallback=fallback,
            sim=sim,
        )


#: One entry of a declared grid: the work unit plus the live loop whose
#: graph the worker will schedule.  Grids are lists of these.
GridItem = tuple[ScenarioPoint, Loop]
