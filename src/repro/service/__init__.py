"""Batch scheduling service: a persistent front end over the runner.

The one-shot CLI pays pool start-up, cold caches and full process
start per invocation.  This package keeps all three warm behind a
JSON-over-HTTP API:

* :mod:`repro.service.core` — validated :class:`ScheduleRequest` work
  units, :class:`Job` lifecycle, and :class:`SchedulingService`: a
  dispatcher thread that coalesces queued jobs into batches, dedupes
  them against the in-process memo and the content-addressed
  :class:`~repro.runner.cache.ResultCache`, and fans misses out to one
  shared spawn-context worker pool
  (:func:`repro.runner.engine.execute_points`);
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  adapter (``POST /schedule``, ``POST /sweep``, ``GET /jobs/<id>``,
  ``GET /healthz``, ``GET /stats``);
* :mod:`repro.service.client` — the ``urllib`` client and the
  ``repro-vliw loadtest`` driver (p50/p95 latency, cache-hit rate,
  byte-identity verification against the direct execution path).

CLI: ``repro-vliw serve`` / ``submit`` / ``loadtest``.  See
``docs/API.md`` for the wire format and ``docs/ARCHITECTURE.md`` for
how the service layers over the runner.
"""

from .client import (
    ClientError,
    LoadtestReport,
    ServiceClient,
    default_mix,
    run_loadtest,
)
from .core import (
    Job,
    RequestError,
    ScheduleRequest,
    SchedulingService,
    ServiceClosed,
    reference_payload,
)
from .server import DEFAULT_HOST, DEFAULT_PORT, ServiceServer

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ClientError",
    "Job",
    "LoadtestReport",
    "RequestError",
    "ScheduleRequest",
    "SchedulingService",
    "ServiceClient",
    "ServiceClosed",
    "ServiceServer",
    "default_mix",
    "reference_payload",
    "run_loadtest",
]
