"""Thin HTTP client for the scheduling service, plus the loadtest driver.

:class:`ServiceClient` wraps the JSON API with stdlib ``urllib`` (no new
dependencies) and raises :class:`ClientError` carrying the HTTP status
and the server's ``error`` message.

:func:`run_loadtest` is the synthetic-traffic harness behind
``repro-vliw loadtest``: N concurrent clients replay a deterministic mix
of scheduling scenarios against a running server and the report carries
p50/p95 latency, success rate and cache-hit rate.  With ``verify`` on
(the default) every distinct scenario's response is additionally diffed
byte-for-byte against the direct in-process execution path
(:func:`repro.service.core.reference_payload`) — the service must be a
cache, never a different compiler.
"""

from __future__ import annotations

import http.client
import json
import math
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServiceError
from ..obs.metrics import LATENCY_BUCKETS_S, _format_bound
from ..obs.trace import new_trace_id
from .core import ScheduleRequest, reference_payload
from .server import DEFAULT_HOST, DEFAULT_PORT

__all__ = [
    "ClientError",
    "LoadtestReport",
    "ServiceClient",
    "default_mix",
    "run_loadtest",
]


class ClientError(ServiceError):
    """An HTTP request to the service failed (transport or server side)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        #: HTTP status code; ``0`` for transport-level failures.
        self.status = status


class ServiceClient:
    """JSON-over-HTTP client for one ``repro-vliw serve`` instance."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 120.0,
    ):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        payload: dict[str, Any] | None = None,
        *,
        headers: dict[str, str] | None = None,
    ) -> dict[str, Any]:
        data = json.dumps(payload).encode() if payload is not None else None
        request_headers = {"Content-Type": "application/json"}
        if headers:
            request_headers.update(headers)
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=request_headers,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read() or b"{}")
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body)["error"]
            except (ValueError, KeyError, TypeError):
                message = body.decode(errors="replace") or exc.reason
            raise ClientError(exc.code, f"HTTP {exc.code}: {message}") from None
        except urllib.error.URLError as exc:
            raise ClientError(0, f"{self.base_url}: {exc.reason}") from None
        except (OSError, http.client.HTTPException) as exc:
            # urllib only wraps errors raised while *sending*; a server
            # closing the connection mid-response (e.g. coordinator
            # shutdown under a polling fabric worker) surfaces raw as
            # ConnectionResetError / RemoteDisconnected.  Same contract:
            # status 0 means the transport failed, not the request.
            raise ClientError(
                0, f"{self.base_url}: {type(exc).__name__}: {exc}"
            ) from None

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._call("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._call("GET", "/stats")

    def lease(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``POST /leases`` — fabric worker claim/renew (raw protocol body)."""
        return self._call("POST", "/leases", payload)

    def results(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``POST /results`` — fabric worker result post (raw protocol body)."""
        return self._call("POST", "/results", payload)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._call("GET", f"/jobs/{job_id}")

    def _server_wait_budget(self) -> float:
        """Server-side wait that keeps the 202+poll fallback reachable.

        The server must give up waiting *before* this client's HTTP
        timeout fires, otherwise a slow job kills the transport and the
        caller loses the job id it would need to poll.
        """
        return max(1.0, self.timeout - 5.0)

    def schedule(
        self, request: dict[str, Any] | ScheduleRequest, *, wait: bool = True,
        timeout_s: float | None = None, trace_id: str | None = None,
    ) -> dict[str, Any]:
        """``POST /schedule``; returns the server's JSON response.

        *trace_id* (when given) is sent as ``X-Trace-Id`` and adopted by
        the server, so the caller can later find the job it spawned.
        """
        payload = (
            request.to_dict()
            if isinstance(request, ScheduleRequest)
            else dict(request)
        )
        payload["wait"] = wait
        payload["timeout_s"] = (
            timeout_s if timeout_s is not None else self._server_wait_budget()
        )
        headers = {"X-Trace-Id": trace_id} if trace_id else None
        return self._call("POST", "/schedule", payload, headers=headers)

    def sweep(
        self,
        requests: list[dict[str, Any] | ScheduleRequest] | None = None,
        *,
        grid: str | None = None,
        quick: bool = False,
        jobs: int | None = None,
        distributed: bool = False,
        wait: bool = True,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """``POST /sweep`` — a batch of requests or a named grid.

        *distributed* (grids only) runs the grid's misses on the
        server's fabric workers instead of its local pool.
        """
        payload: dict[str, Any] = {
            "wait": wait,
            "timeout_s": (
                timeout_s if timeout_s is not None else self._server_wait_budget()
            ),
        }
        if grid is not None:
            payload["grid"] = grid
            payload["quick"] = quick
            if jobs is not None:
                payload["jobs"] = jobs
            if distributed:
                payload["distributed"] = True
        else:
            payload["requests"] = [
                r.to_dict() if isinstance(r, ScheduleRequest) else dict(r)
                for r in (requests or [])
            ]
        return self._call("POST", "/sweep", payload)

    def poll_job(
        self, job_id: str, *, timeout: float = 300.0, interval: float = 0.05
    ) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until the job finishes (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc["status"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise ClientError(0, f"job {job_id} still {doc['status']!r}")
            time.sleep(interval)

    def wait_until_healthy(
        self, *, timeout: float = 15.0, interval: float = 0.1
    ) -> bool:
        """True once ``/healthz`` answers; False if *timeout* elapses."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                self.healthz()
                return True
            except ClientError:
                time.sleep(interval)
        return False


# ---------------------------------------------------------------------------
# Loadtest
# ---------------------------------------------------------------------------
def default_mix() -> list[dict[str, Any]]:
    """The deterministic scenario mix loadtests replay.

    Eight hand-written kernels on two clustered machine shapes — 16
    distinct scenarios, so a 64-request loadtest exercises dedupe (4
    requests per scenario) without collapsing to a single cache line.
    """
    kernels = (
        "daxpy", "dot", "fir4", "hydro",
        "stencil3", "stencil5", "tridiag", "vadd",
    )
    machines = ((4, 1, 1), (2, 1, 1))
    return [
        {
            "kernel": kernel,
            "clusters": clusters,
            "buses": buses,
            "latency": latency,
        }
        for kernel in kernels
        for (clusters, buses, latency) in machines
    ]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = math.ceil(q * len(sorted_values))
    return sorted_values[max(0, min(len(sorted_values), rank) - 1)]


@dataclass
class LoadtestReport:
    """Outcome of one :func:`run_loadtest` run."""

    clients: int
    requests: int
    successes: int
    duration_s: float
    latencies_s: list[float] = field(default_factory=list)
    cache_hits: int = 0
    errors: list[str] = field(default_factory=list)
    verified: int = 0
    mismatches: list[str] = field(default_factory=list)
    #: One entry per failed request or mismatched scenario, carrying the
    #: trace id the request was sent with (matches the server-side job).
    failures: list[dict[str, Any]] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.requests if self.requests else 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.successes if self.successes else 0.0

    @property
    def p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def p95_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.95)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    @property
    def ok(self) -> bool:
        """100% success and no byte-identity mismatches."""
        return self.successes == self.requests and not self.mismatches

    def latency_histogram(self) -> dict[str, Any]:
        """Cumulative latency histogram over the standard bucket ladder.

        Same bucket bounds as the server's
        ``repro_http_request_duration_seconds`` histogram, so client-side
        and server-side latency distributions line up bucket for bucket.
        """
        ordered = sorted(self.latencies_s)
        buckets = []
        cumulative = 0
        i = 0
        for bound in LATENCY_BUCKETS_S:
            while i < len(ordered) and ordered[i] <= bound:
                i += 1
            cumulative = i
            buckets.append({"le": _format_bound(bound), "count": cumulative})
        buckets.append({"le": "+Inf", "count": len(ordered)})
        return {
            "buckets": buckets,
            "count": len(ordered),
            "sum_s": sum(ordered),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "clients": self.clients,
            "requests": self.requests,
            "successes": self.successes,
            "success_rate": self.success_rate,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "p50_ms": self.p50_s * 1e3,
            "p95_ms": self.p95_s * 1e3,
            "throughput_rps": self.throughput_rps,
            "duration_s": self.duration_s,
            "verified": self.verified,
            "mismatches": self.mismatches,
            "errors": self.errors[:10],
            "failures": self.failures,
            "latency_histogram": self.latency_histogram(),
        }

    def render(self) -> str:
        """Human-readable summary (the ``repro-vliw loadtest`` output)."""
        lines = [
            f"loadtest: {self.requests} request(s) over "
            f"{self.clients} client(s) in {self.duration_s:.2f}s "
            f"({self.throughput_rps:.1f} req/s)",
            f"  success:    {self.successes}/{self.requests} "
            f"({self.success_rate:.1%})",
            f"  latency:    p50 {self.p50_s * 1e3:.1f}ms, "
            f"p95 {self.p95_s * 1e3:.1f}ms",
            f"  cache hits: {self.cache_hits}/{self.successes} "
            f"({self.hit_rate:.1%})",
        ]
        if self.verified or self.mismatches:
            lines.append(
                f"  verified:   {self.verified} scenario(s) byte-identical "
                f"to the direct path, {len(self.mismatches)} mismatch(es)"
            )
        for err in self.errors[:5]:
            lines.append(f"  error: {err}")
        return "\n".join(lines)


def run_loadtest(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    clients: int = 8,
    requests: int = 64,
    mix: list[dict[str, Any]] | None = None,
    verify: bool = True,
    timeout: float = 120.0,
) -> LoadtestReport:
    """Drive *requests* scheduling requests from *clients* threads.

    Request *i* replays ``mix[i % len(mix)]``; requests are dealt
    round-robin across client threads, so the traffic — and therefore
    the server-side dedupe opportunity — is a pure function of
    ``(clients, requests, mix)``.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    mix = mix if mix is not None else default_mix()
    assignments: list[list[tuple[int, dict[str, Any]]]] = [
        [] for _ in range(min(clients, requests))
    ]
    for i in range(requests):
        assignments[i % len(assignments)].append((i, mix[i % len(mix)]))

    lock = threading.Lock()
    latencies: list[float] = []
    errors: list[str] = []
    failures: list[dict[str, Any]] = []
    hits = 0
    successes = 0
    # One (result, trace_id) per distinct scenario, for verification.
    responses: dict[str, tuple[dict[str, Any], str]] = {}

    def worker(batch: list[tuple[int, dict[str, Any]]]) -> None:
        nonlocal hits, successes
        client = ServiceClient(host, port, timeout=timeout)
        for index, payload in batch:
            trace_id = new_trace_id()
            t0 = time.perf_counter()
            try:
                doc = client.schedule(payload, trace_id=trace_id)
                elapsed = time.perf_counter() - t0
                result = doc["result"]
            except (ServiceError, KeyError) as exc:
                with lock:
                    errors.append(f"request {index}: {exc}")
                    failures.append(
                        {
                            "kind": "error",
                            "request": index,
                            "trace_id": trace_id,
                            "detail": str(exc),
                        }
                    )
                continue
            with lock:
                latencies.append(elapsed)
                successes += 1
                hits += bool(result.get("cached"))
                responses.setdefault(
                    json.dumps(payload, sort_keys=True), (result, trace_id)
                )

    threads = [
        threading.Thread(target=worker, args=(batch,), daemon=True)
        for batch in assignments
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - t0

    verified = 0
    mismatches: list[str] = []
    if verify:
        for key, (result, trace_id) in sorted(responses.items()):
            request = ScheduleRequest.from_payload(json.loads(key))
            expected = reference_payload(request)
            if result.get("rendered") == expected["rendered"]:
                verified += 1
            else:
                scenario = (
                    f"{request.kernel} on {request.clusters}c/"
                    f"{request.buses}b/l{request.latency}"
                )
                mismatches.append(
                    f"{scenario}: rendered schedule "
                    "differs from the direct execution path"
                )
                failures.append(
                    {
                        "kind": "mismatch",
                        "scenario": scenario,
                        "trace_id": trace_id,
                        "detail": "rendered schedule differs from the "
                        "direct execution path",
                    }
                )

    return LoadtestReport(
        clients=clients,
        requests=requests,
        successes=successes,
        duration_s=duration,
        latencies_s=latencies,
        cache_hits=hits,
        errors=errors,
        verified=verified,
        mismatches=mismatches,
        failures=failures,
    )
