"""The batch scheduling service: validated requests, jobs, and the queue.

This module is the process-local heart of ``repro-vliw serve`` — the
HTTP layer (:mod:`repro.service.server`) is a thin JSON adapter over it,
and it is equally usable embedded (tests, benchmarks, notebooks):

* :class:`ScheduleRequest` — one validated scheduling request: a named
  kernel on a machine shape under a scheduler/policy/rule, optionally
  simulated.  :meth:`ScheduleRequest.from_payload` is the single place
  untrusted input is checked; everything past it works with
  :class:`~repro.runner.scenario.ScenarioPoint` work units.
* :class:`Job` — one queued unit of client work (a single request, a
  batch of requests, or a named experiment grid) with a lifecycle of
  ``queued -> running -> done | failed | cancelled``.
* :class:`SchedulingService` — the long-lived engine.  A single
  dispatcher thread drains the job queue, **coalesces every queued job
  into one batch**, dedupes the batch's scenario points against an
  in-process memo and the content-addressed on-disk
  :class:`~repro.runner.cache.ResultCache`, and fans the misses out to
  one shared spawn-context ``ProcessPoolExecutor`` via
  :func:`repro.runner.engine.execute_points`.  Concurrent clients thus
  reuse warm workers and warm caches instead of paying pool start-up
  and re-scheduling per request.

Dedupe layers, fastest first: in-batch (identical points across queued
jobs execute once), in-process memo (bounded; serves repeat requests
without touching disk), on-disk cache (shared with the CLI sweeps — a
``repro-vliw fig8`` run pre-warms the service and vice versa).
"""

from __future__ import annotations

import itertools
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..arch.configs import clustered_config, unified_config
from ..codegen.vliw import render_schedule
from ..core.selective import SelectiveRule, UnrollPolicy
from ..errors import ParseError, ServiceError, WorkloadError
from ..fabric.coordinator import FabricCoordinator
from ..obs.metrics import MetricsRegistry
from ..runner.cache import ResultCache
from ..runner.engine import SCHEDULERS, execute_point, execute_points, make_worker_pool
from ..runner.grids import GRIDS
from ..ir.frontend import parse_program
from ..ir.loop import Loop
from ..runner.scenario import (
    GridItem,
    PointResult,
    ScenarioPoint,
    program_payload,
    scenario_for,
)
from ..workloads.kernels import kernel_loop, resolve_kernel

__all__ = [
    "Job",
    "RequestError",
    "ScheduleRequest",
    "SchedulingService",
    "ServiceClosed",
    "reference_payload",
]


class RequestError(ServiceError):
    """A request payload is malformed (the HTTP layer maps this to 400)."""


class ServiceClosed(ServiceError):
    """The service is shutting down and no longer accepts submissions."""


#: Friendly spellings accepted for :class:`UnrollPolicy` values.
POLICY_ALIASES = {
    "none": UnrollPolicy.NONE.value,
    "all": UnrollPolicy.ALL.value,
    "selective": UnrollPolicy.SELECTIVE.value,
}

#: Friendly spellings accepted for :class:`SelectiveRule` values.
RULE_ALIASES = {
    "mii": SelectiveRule.MII_UNROLLED.value,
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RequestError(message)


def _as_int(data: dict[str, Any], key: str, default: int) -> int:
    value = data.get(key, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{key!r} must be an integer, got {value!r}",
    )
    return value


@dataclass(frozen=True)
class ScheduleRequest:
    """One validated scheduling request (the unit clients submit).

    Attributes mirror the ``repro-vliw schedule`` / ``simulate`` CLI
    flags; :meth:`from_payload` maps the JSON body of ``POST /schedule``
    onto them with full validation, so a constructed instance is always
    executable.
    """

    kernel: str | None = None
    clusters: int = 4
    buses: int = 1
    latency: int = 1
    scheduler: str = "bsa"
    policy: str = UnrollPolicy.NONE.value
    rule: str = SelectiveRule.MII_UNROLLED.value
    simulate: bool = False
    niter: int = 100
    miss_rate: float = 0.0
    miss_penalty: int = 10
    seed: int = 0
    #: Inline textual loop-IR source (the workload front door): exactly
    #: one of ``kernel`` / ``program`` must be set.
    program: str | None = None

    #: Payload keys accepted by :meth:`from_payload` (anything else is a
    #: typo worth rejecting loudly rather than silently ignoring).
    FIELDS = (
        "kernel",
        "program",
        "clusters",
        "buses",
        "latency",
        "scheduler",
        "policy",
        "rule",
        "simulate",
        "niter",
        "miss_rate",
        "miss_penalty",
        "seed",
    )

    @classmethod
    def from_payload(cls, data: dict[str, Any]) -> "ScheduleRequest":
        """Validate one JSON request body into a :class:`ScheduleRequest`.

        Raises
        ------
        RequestError
            On any unknown key, missing kernel, unknown scheduler /
            policy / rule, or out-of-range numeric field.
        """
        _require(isinstance(data, dict), "request must be a JSON object")
        unknown = sorted(set(data) - set(cls.FIELDS))
        _require(not unknown, f"unknown request field(s): {unknown}")
        kernel = data.get("kernel")
        program = data.get("program")
        _require(
            (kernel is None) != (program is None),
            "exactly one of 'kernel' (a registered name) or 'program' "
            "(inline .loop source) is required",
        )
        canonical_kernel = None
        if kernel is not None:
            _require(
                isinstance(kernel, str) and bool(kernel),
                "'kernel' (a kernel name or alias) is required",
            )
            try:
                canonical_kernel, _ = resolve_kernel(kernel)
            except WorkloadError as exc:
                raise RequestError(str(exc)) from None
            except KeyError as exc:
                raise RequestError(str(exc.args[0])) from None
        else:
            _require(
                isinstance(program, str) and bool(program.strip()),
                "'program' must be non-empty .loop source text",
            )
            try:
                parse_program(program, name="program", source="<request>")
            except ParseError as exc:
                raise RequestError(str(exc)) from None

        clusters = _as_int(data, "clusters", cls.clusters)
        buses = _as_int(data, "buses", cls.buses)
        latency = _as_int(data, "latency", cls.latency)
        _require(clusters >= 1, f"'clusters' must be >= 1, got {clusters}")
        _require(buses >= 1, f"'buses' must be >= 1, got {buses}")
        _require(latency >= 1, f"'latency' must be >= 1, got {latency}")

        scheduler = data.get("scheduler", cls.scheduler)
        _require(
            scheduler in SCHEDULERS,
            f"unknown scheduler {scheduler!r}; known: {sorted(SCHEDULERS)}",
        )
        policy = data.get("policy", cls.policy)
        policy = POLICY_ALIASES.get(policy, policy)
        try:
            policy = UnrollPolicy(policy).value
        except ValueError:
            known = sorted(
                [p.value for p in UnrollPolicy] + list(POLICY_ALIASES)
            )
            raise RequestError(
                f"unknown policy {data.get('policy')!r}; known: {known}"
            ) from None
        rule = data.get("rule", cls.rule)
        rule = RULE_ALIASES.get(rule, rule)
        try:
            rule = SelectiveRule(rule).value
        except ValueError:
            known = sorted([r.value for r in SelectiveRule] + list(RULE_ALIASES))
            raise RequestError(
                f"unknown rule {data.get('rule')!r}; known: {known}"
            ) from None

        simulate = data.get("simulate", False)
        _require(
            isinstance(simulate, bool), "'simulate' must be true or false"
        )
        niter = _as_int(data, "niter", cls.niter)
        _require(niter >= 1, f"'niter' must be >= 1, got {niter}")
        miss_rate = data.get("miss_rate", cls.miss_rate)
        _require(
            isinstance(miss_rate, (int, float))
            and not isinstance(miss_rate, bool)
            and 0.0 <= float(miss_rate) < 1.0,
            f"'miss_rate' must be in [0, 1), got {miss_rate!r}",
        )
        miss_penalty = _as_int(data, "miss_penalty", cls.miss_penalty)
        _require(
            miss_penalty >= 0, f"'miss_penalty' must be >= 0, got {miss_penalty}"
        )
        seed = _as_int(data, "seed", cls.seed)
        return cls(
            kernel=canonical_kernel,
            program=program,
            clusters=clusters,
            buses=buses,
            latency=latency,
            scheduler=scheduler,
            policy=policy,
            rule=rule,
            simulate=simulate,
            niter=niter,
            miss_rate=float(miss_rate),
            miss_penalty=miss_penalty,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def config(self):
        """The machine configuration this request targets."""
        if self.clusters == 1:
            return unified_config()
        return clustered_config(self.clusters, self.buses, self.latency)

    def grid_item(self) -> GridItem:
        """The ``(ScenarioPoint, Loop)`` work unit for this request.

        Inline programs parse here (already validated by
        :meth:`from_payload`) and embed their full loop payload in the
        point, so they cache, dedupe and distribute like any catalogue
        kernel without ever entering a registry.
        """
        if self.program is not None:
            parsed = parse_program(
                self.program, name="program", source="<request>"
            )
            loop = Loop(graph=parsed.graph, trip_count=self.niter)
            payload = program_payload(loop)
        else:
            loop = kernel_loop(self.kernel, trip_count=self.niter)
            payload = ""
        point = scenario_for(
            loop,
            self.config(),
            self.scheduler,
            UnrollPolicy(self.policy),
            SelectiveRule(self.rule),
            simulate=self.simulate,
            niter=self.niter,
            miss_rate=self.miss_rate,
            miss_penalty=self.miss_penalty,
            seed=self.seed,
            program=payload,
        )
        return point, loop

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (what the client sends over the wire)."""
        return {name: getattr(self, name) for name in self.FIELDS}


# ---------------------------------------------------------------------------
# Result payloads
# ---------------------------------------------------------------------------
def result_payload(point: ScenarioPoint, result: PointResult) -> dict[str, Any]:
    """The JSON body describing one executed scenario point.

    ``rendered`` is byte-identical to the stdout of the direct
    ``repro-vliw schedule`` CLI path (``describe`` + blank line + VLIW
    listing) — the loadtest's byte-identity check and the ``submit``
    verb both rely on that.
    """
    loop_result = result.loop_result()
    sched = loop_result.schedule
    payload: dict[str, Any] = {
        "point": json.loads(point.canonical()),
        "kernel": point.loop,
        "ii": sched.ii,
        "stage_count": sched.stage_count,
        "unroll_factor": result.unroll_factor,
        "policy": result.policy,
        "fallback": result.fallback,
        "rendered": f"{sched.describe()}\n\n{render_schedule(sched)}",
        "schedule": result.schedule,
        "sim": result.sim.to_dict() if result.sim is not None else None,
    }
    return payload


def reference_payload(request: ScheduleRequest) -> dict[str, Any]:
    """Execute *request* directly (no service, no cache) for comparison.

    The loadtest's ``--verify`` mode uses this as the ground truth the
    service's responses must match byte-for-byte.
    """
    point, loop = request.grid_item()
    return result_payload(point, execute_point(point, loop))


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------
@dataclass
class Job:
    """One queued unit of client work and its lifecycle.

    ``kind`` is ``"schedule"`` (one request), ``"sweep"`` (a batch of
    requests) or ``"grid"`` (a named experiment grid).  Results appear
    on the job when it reaches ``done``: per-request payloads for point
    jobs, rendered tables for grid jobs.
    """

    id: str
    kind: str
    requests: list[ScheduleRequest] = field(default_factory=list)
    grid: str | None = None
    quick: bool = False
    jobs: int | None = None
    #: Grid jobs only: execute misses on the fabric's pull-based
    #: workers instead of the local pool (``sweep --distributed``).
    distributed: bool = False
    trace_id: str | None = None
    status: str = "queued"
    created_unix: float = field(default_factory=time.time)
    started_unix: float | None = None
    finished_unix: float | None = None
    results: list[dict[str, Any]] | None = None
    output: str | None = None
    error: str | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job leaves the queue/running states."""
        return self._done.wait(timeout)

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    def snapshot(self, *, include_results: bool = True) -> dict[str, Any]:
        """JSON-ready view of the job (the ``GET /jobs/<id>`` body)."""
        doc: dict[str, Any] = {
            "job": self.id,
            "kind": self.kind,
            "status": self.status,
            "created_unix": self.created_unix,
            "started_unix": self.started_unix,
            "finished_unix": self.finished_unix,
            "requests": len(self.requests) if self.kind != "grid" else None,
            "grid": self.grid,
            "trace_id": self.trace_id,
            "error": self.error,
        }
        if self.kind == "grid":
            doc["distributed"] = self.distributed
        if include_results and self.status == "done":
            if self.kind == "grid":
                doc["output"] = self.output
            else:
                doc["results"] = self.results
        return doc

    # ------------------------------------------------------------------
    def _finish(self, status: str, *, error: str | None = None) -> None:
        self.status = status
        self.error = error
        self.finished_unix = time.time()
        self._done.set()


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------
class SchedulingService:
    """Long-lived batch scheduler over the cache-backed runner.

    Parameters
    ----------
    cache:
        Shared on-disk result cache (``None`` disables persistence; the
        in-process memo still dedupes repeat requests).
    workers:
        Worker processes in the shared pool.  ``0`` executes every miss
        in-process (no pool — the low-latency single-tenant setting and
        the test default); the pool is created lazily on the first batch
        that can use it and reused for every batch after.
    memo_limit:
        Bound on the in-process payload memo; when full, the memo is
        reset (the on-disk cache still serves those points).
    job_limit:
        Bound on retained jobs: when the registry exceeds it, the
        oldest *finished* jobs (and their result payloads) are evicted,
        so a long-lived service under sustained traffic does not grow
        without bound.  Evicted job ids answer 404 on ``GET /jobs/<id>``;
        in-flight jobs are never evicted.
    fabric_opts:
        Keyword arguments forwarded to the embedded
        :class:`~repro.fabric.coordinator.FabricCoordinator` (lease TTL,
        shard size, straggler policy...).  The coordinator shares this
        service's cache and metrics registry, so distributed grid jobs
        cross-pollinate the same cache local batches use and the
        ``fabric_*`` families appear on ``GET /metrics``.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        workers: int = 2,
        memo_limit: int = 4096,
        job_limit: int = 1024,
        fabric_opts: dict[str, Any] | None = None,
    ):
        self.cache = cache
        self.workers = max(0, workers)
        self.memo_limit = memo_limit
        self.job_limit = max(1, job_limit)
        self.started_unix = time.time()

        self._queue: queue.Queue[Job] = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._memo: dict[str, dict[str, Any]] = {}
        self._pool = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._stopping = False
        self._closed = threading.Event()

        # Counters (under _lock).  These plain ints are the single source
        # of truth; the metrics registry below exposes them through
        # callback-backed instruments, so ``/stats`` and ``/metrics``
        # read the same state and cannot drift.
        self._requests_total = 0
        self._points_executed = 0
        self._points_memo = 0
        self._points_disk = 0
        self._points_failed = 0
        self._points_deduped = 0
        self._batches = 0

        #: Per-service metrics registry (instance-owned, not process
        #: global, so embedded services and tests never share state).
        #: The HTTP layer adds its request counters/histograms here and
        #: renders it as ``GET /metrics``.
        self.metrics = MetricsRegistry()
        self._register_metrics()

        #: The distributed-sweep coordinator (``POST /leases`` and
        #: ``POST /results`` land here via :meth:`fabric_claim` /
        #: :meth:`fabric_results`).
        self.fabric = FabricCoordinator(
            cache=cache, metrics=self.metrics, **(fabric_opts or {})
        )

        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()

    def _register_metrics(self) -> None:
        """Declare the service's exported instruments.

        Counters and gauges are callback-backed views over the very
        fields :meth:`stats` reports; only the latency histograms (which
        have no ``/stats`` twin) hold registry-owned state.
        """
        self.metrics.counter(
            "repro_requests_total",
            "Client requests accepted (one per point request, one per grid)",
            callback=lambda: self._requests_total,
        )
        self.metrics.counter(
            "repro_batches_total",
            "Coalesced dispatcher batches executed",
            callback=lambda: self._batches,
        )
        self.metrics.counter(
            "repro_points_executed_total",
            "Scenario points actually scheduled/simulated",
            callback=lambda: self._points_executed,
        )
        self.metrics.counter(
            "repro_points_memo_hits_total",
            "Scenario points served from the in-process memo",
            callback=lambda: self._points_memo,
        )
        self.metrics.counter(
            "repro_points_disk_hits_total",
            "Scenario points served from the on-disk result cache",
            callback=lambda: self._points_disk,
        )
        self.metrics.counter(
            "repro_points_failed_total",
            "Scenario points that raised during execution",
            callback=lambda: self._points_failed,
        )
        self.metrics.counter(
            "repro_points_deduped_total",
            "Requested points collapsed by in-batch dedupe",
            callback=lambda: self._points_deduped,
        )
        self.metrics.gauge(
            "repro_queue_depth",
            "Jobs waiting for the dispatcher",
            callback=lambda: self._queue.qsize(),
        )
        self.metrics.gauge(
            "repro_jobs_inflight",
            "Jobs queued or running",
            callback=lambda: sum(
                not job.finished for job in list(self._jobs.values())
            ),
        )
        self.metrics.gauge(
            "repro_memo_entries",
            "Entries in the in-process payload memo",
            callback=lambda: len(self._memo),
        )
        self.metrics.gauge(
            "repro_pool_live",
            "Whether the shared worker pool has been created (0/1)",
            callback=lambda: float(self._pool is not None),
        )
        self._batch_seconds = self.metrics.histogram(
            "repro_batch_duration_seconds",
            "Wall time of one coalesced point batch",
        )
        if self.cache is not None:
            cache = self.cache
            self.metrics.counter(
                "repro_cache_hits_total",
                "On-disk cache hits (this process)",
                callback=lambda: cache.hits,
            )
            self.metrics.counter(
                "repro_cache_misses_total",
                "On-disk cache misses (this process)",
                callback=lambda: cache.misses,
            )
            self.metrics.counter(
                "repro_cache_writes_total",
                "On-disk cache writes (this process)",
                callback=lambda: cache.writes,
            )

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------
    def submit_schedule(
        self, request: ScheduleRequest, *, trace_id: str | None = None
    ) -> Job:
        """Queue one scheduling request; returns the (pending) job."""
        return self._enqueue(
            Job(self._next_id(), "schedule", [request], trace_id=trace_id)
        )

    def submit_sweep(
        self,
        requests: list[ScheduleRequest],
        *,
        trace_id: str | None = None,
    ) -> Job:
        """Queue a batch of scheduling requests as one job."""
        if not requests:
            raise RequestError("'requests' must be a non-empty list")
        return self._enqueue(
            Job(self._next_id(), "sweep", list(requests), trace_id=trace_id)
        )

    def submit_grid(
        self,
        grid: str,
        *,
        quick: bool = False,
        jobs: int | None = None,
        distributed: bool = False,
        trace_id: str | None = None,
    ) -> Job:
        """Queue a named experiment grid (``repro-vliw sweep`` as a job).

        ``distributed`` executes the grid's cache misses on the fabric's
        pull-based workers instead of the local pool; everything else
        (cache probing, reducers, rendering) is identical, so the output
        is byte-identical to a local run.
        """
        if grid not in GRIDS:
            raise RequestError(
                f"unknown grid {grid!r}; known: {sorted(GRIDS)}"
            )
        return self._enqueue(
            Job(
                self._next_id(),
                "grid",
                grid=grid,
                quick=quick,
                jobs=jobs,
                distributed=distributed,
                trace_id=trace_id,
            )
        )

    def job(self, job_id: str) -> Job | None:
        """Look up a job by id (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # Fabric API (``POST /leases`` and ``POST /results``)
    # ------------------------------------------------------------------
    def fabric_claim(self, data: dict[str, Any]) -> dict[str, Any]:
        """Delegate a worker's lease claim/renewal to the coordinator."""
        if self._stopping:
            raise ServiceClosed("service is shutting down")
        return self.fabric.claim(data)

    def fabric_results(self, data: dict[str, Any]) -> dict[str, Any]:
        """Delegate a worker's result post to the coordinator."""
        if self._stopping:
            raise ServiceClosed("service is shutting down")
        return self.fabric.submit_results(data)

    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"j{next(self._ids):05d}"

    def _enqueue(self, job: Job) -> Job:
        with self._lock:
            if self._stopping:
                raise ServiceClosed("service is shutting down")
            self._jobs[job.id] = job
            self._requests_total += len(job.requests) if job.kind != "grid" else 1
            self._evict_finished_jobs()
        self._queue.put(job)
        return job

    def _evict_finished_jobs(self) -> None:
        """Drop the oldest finished jobs once past ``job_limit`` (locked).

        Dicts iterate in insertion order, so the oldest submissions are
        examined first; queued/running jobs are always retained.
        """
        excess = len(self._jobs) - self.job_limit
        if excess <= 0:
            return
        stale = [
            job_id
            for job_id, job in self._jobs.items()
            if job.finished
        ][:excess]
        for job_id in stale:
            del self._jobs[job_id]

    # ------------------------------------------------------------------
    # Stats / health
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """The ``GET /stats`` body: queue, dedupe and cache accounting.

        ``hit_rate`` is the ratio ``cached / (cached + executed)`` over
        distinct points; the ``counters`` block breaks the cached side
        into its explicit sources (memo vs disk) plus the failed and
        in-batch-deduped totals — the same fields ``/metrics`` exports.
        """
        with self._lock:
            by_status: dict[str, int] = {}
            for job in self._jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
            points_cached = self._points_memo + self._points_disk
            points_total = self._points_executed + points_cached
            doc = {
                "uptime_s": time.time() - self.started_unix,
                "workers": self.workers,
                "pool_live": self._pool is not None,
                "queue_depth": self._queue.qsize(),
                "jobs": by_status,
                "requests_total": self._requests_total,
                "batches": self._batches,
                "points_executed": self._points_executed,
                "points_cached": points_cached,
                "hit_rate": (
                    points_cached / points_total if points_total else 0.0
                ),
                "counters": {
                    "executed": self._points_executed,
                    "memo_hits": self._points_memo,
                    "disk_hits": self._points_disk,
                    "failed": self._points_failed,
                    "deduped": self._points_deduped,
                },
                "memo_entries": len(self._memo),
            }
        if self.cache is not None:
            cache_probes = self.cache.hits + self.cache.misses
            doc["cache"] = {
                "root": str(self.cache.root),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "writes": self.cache.writes,
                "hit_rate": (
                    self.cache.hits / cache_probes if cache_probes else 0.0
                ),
            }
        else:
            doc["cache"] = None
        doc["fabric"] = self.fabric.stats()
        return doc

    def healthz(self) -> dict[str, Any]:
        """The ``GET /healthz`` body."""
        status = "stopping" if self._stopping else "ok"
        return {
            "status": status,
            "uptime_s": time.time() - self.started_unix,
            "queue_depth": self._queue.qsize(),
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, *, timeout: float = 30.0) -> None:
        """Stop accepting work, cancel queued jobs, drain, shut the pool.

        The batch in flight (if any) is allowed to finish — its results
        land in the cache and its jobs complete normally; jobs still
        queued are marked ``cancelled`` and their waiters released.
        Idempotent and safe to call from any thread.
        """
        with self._lock:
            first_closer = not self._stopping
            if first_closer:
                self._stopping = True
                for job in self._jobs.values():
                    if job.status == "queued":
                        job._finish("cancelled", error="service shut down")
        # Never wait while holding the lock: the dispatcher needs it to
        # finish the batch in flight that this join is waiting on.
        if not first_closer:
            self._closed.wait(timeout)
            return
        # Abort any distributed sweep still waiting on workers — the
        # dispatcher is blocked inside fabric.execute and must unblock
        # (with a FabricError, failing that job) before it can drain.
        self.fabric.close()
        self._dispatcher.join(timeout)
        self._closed.set()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopping:
                    return
                continue
            batch = [job]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            live = [j for j in batch if j.status == "queued"]
            if not live:
                continue
            point_jobs = [j for j in live if j.kind in ("schedule", "sweep")]
            grid_jobs = [j for j in live if j.kind == "grid"]
            if point_jobs:
                try:
                    self._run_point_jobs(point_jobs)
                except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                    for j in point_jobs:
                        if not j.finished:
                            j._finish("failed", error=f"{type(exc).__name__}: {exc}")
            for j in grid_jobs:
                try:
                    self._run_grid_job(j)
                except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                    self._discard_pool_if_broken(exc)
                    if not j.finished:
                        j._finish("failed", error=f"{type(exc).__name__}: {exc}")

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self.workers <= 0:
            return None
        if self._pool is None:
            self._pool = make_worker_pool(self.workers)
        return self._pool

    def _discard_pool_if_broken(self, exc: Exception) -> None:
        """Replace a crashed executor on the next batch.

        A worker dying (OOM kill, segfault) leaves the executor
        permanently broken; keeping it would fail every future batch
        while ``/healthz`` still reports ok.  Discarding it makes the
        next batch lazily create a fresh pool.
        """
        from concurrent.futures import BrokenExecutor

        if isinstance(exc, BrokenExecutor) and self._pool is not None:
            pool, self._pool = self._pool, None
            pool.shutdown(wait=False)

    def _memo_put(self, key: str, payload: dict[str, Any]) -> None:
        if len(self._memo) >= self.memo_limit:
            self._memo.clear()
        self._memo[key] = payload

    def _run_point_jobs(self, jobs: list[Job]) -> None:
        """Execute one coalesced batch of schedule/sweep jobs."""
        batch_t0 = time.perf_counter()
        now = time.time()
        for job in jobs:
            job.status = "running"
            job.started_unix = now

        # Dedupe the whole batch down to distinct scenario points.
        unique: dict[str, GridItem] = {}
        order: list[tuple[Job, list[str]]] = []
        requested = 0
        for job in jobs:
            keys = []
            for request in job.requests:
                point, loop = request.grid_item()
                key = point.canonical()
                unique.setdefault(key, (point, loop))
                keys.append(key)
                requested += 1
            order.append((job, keys))

        # Serve what we can from the memo and the on-disk cache.
        payloads: dict[str, dict[str, Any]] = {}
        cached_keys: set[str] = set()
        memo_hits = 0
        disk_hits = 0
        misses: list[tuple[str, GridItem]] = []
        for key, (point, loop) in unique.items():
            hit = self._memo.get(key)
            if hit is not None:
                memo_hits += 1
            elif self.cache is not None:
                result = self.cache.get(point)
                if result is not None:
                    hit = result_payload(point, result)
                    self._memo_put(key, hit)
                    disk_hits += 1
            if hit is not None:
                payloads[key] = hit
                cached_keys.add(key)
            else:
                misses.append((key, (point, loop)))

        # Fan the misses out to the shared worker pool.  A failure is
        # isolated per point: one bad scenario must not fail unrelated
        # concurrent clients coalesced into the same batch.
        failed: dict[str, str] = {}
        if misses:
            pool = self._ensure_pool() if len(misses) > 1 else None
            width = min(self.workers, len(misses)) if pool is not None else 1
            try:
                executed = execute_points(
                    misses, jobs=width, pool=pool, cache=self.cache
                )
            except Exception as exc:  # noqa: BLE001 - degrade per point
                self._discard_pool_if_broken(exc)
                executed = {}
                for item in misses:
                    try:
                        executed.update(
                            execute_points([item], jobs=1, cache=self.cache)
                        )
                    except Exception as point_exc:  # noqa: BLE001
                        failed[item[0]] = (
                            f"{type(point_exc).__name__}: {point_exc}"
                        )
            for key, result in executed.items():
                point, _loop = unique[key]
                payload = result_payload(point, result)
                payloads[key] = payload
                self._memo_put(key, payload)

        with self._lock:
            self._batches += 1
            self._points_executed += len(misses) - len(failed)
            self._points_memo += memo_hits
            self._points_disk += disk_hits
            self._points_failed += len(failed)
            self._points_deduped += requested - len(unique)
        self._batch_seconds.observe(time.perf_counter() - batch_t0)

        # Hand every job its per-request results, in request order.
        seen: set[str] = set()
        for job, keys in order:
            broken = [key for key in keys if key in failed]
            if broken:
                job._finish("failed", error=failed[broken[0]])
                continue
            results = []
            for key in keys:
                cached = key in cached_keys or key in seen
                seen.add(key)
                results.append(dict(payloads[key], cached=cached))
            job.results = results
            job._finish("done")

    def _run_grid_job(self, job: Job) -> None:
        """Execute one named experiment grid through the shared pool."""
        from ..experiments.common import ExperimentContext

        job.status = "running"
        job.started_unix = time.time()
        if job.distributed:
            # Misses go to the fabric's pull-based workers; jobs/pool
            # are irrelevant (parallelism = however many workers pull).
            ctx = ExperimentContext(
                cache=self.cache, jobs=1, executor=self.fabric.execute
            )
            spec = GRIDS[job.grid]
            job.output = spec.run(ctx, job.quick)
            with self._lock:
                self._batches += 1
                self._points_executed += ctx.stats.executed
                self._points_disk += ctx.stats.cached
            job._finish("done")
            return
        # A workers=0 service executes in-process by contract: a client
        # asking for jobs>1 must not force an ephemeral pool into being.
        if self.workers <= 0:
            width = 1
        else:
            width = job.jobs if job.jobs is not None else self.workers
        ctx = ExperimentContext(
            cache=self.cache,
            jobs=width,
            pool=self._ensure_pool() if width > 1 else None,
        )
        spec = GRIDS[job.grid]
        job.output = spec.run(ctx, job.quick)
        with self._lock:
            self._batches += 1
            self._points_executed += ctx.stats.executed
            # Grid cache hits come from run_sweep's disk probe.
            self._points_disk += ctx.stats.cached
        job._finish("done")


