"""JSON-over-HTTP front end for the scheduling service.

A deliberately dependency-free layer: stdlib
:class:`~http.server.ThreadingHTTPServer` (one handler thread per
connection) over one shared :class:`~repro.service.core.SchedulingService`.
Handler threads only validate, enqueue and wait — all scheduling work
happens on the service's dispatcher/pool, so slow requests never block
health checks.

Routes::

    POST /schedule   one scheduling request        -> result (or job id)
    POST /sweep      {"requests": [...]} batch, or {"grid": name, ...}
    POST /leases     fabric worker claim/renew (see repro.fabric.protocol)
    POST /results    fabric worker result post
    GET  /jobs/<id>  job status + results when done
    GET  /healthz    liveness probe
    GET  /stats      queue / dedupe / cache counters
    GET  /metrics    Prometheus text exposition of the service registry

``POST /schedule`` takes either a ``"kernel"`` (registered workload
name or alias) or an inline ``"program"`` — textual loop-IR source as
accepted by :mod:`repro.ir.frontend` — never both; malformed programs
come back as 400s whose error text carries the parser's
``source:line:col`` location.  ``POST`` bodies accept ``"wait"``
(default ``true``: block until the job completes and inline its
results) and ``"timeout_s"`` (default 300; on expiry the response is
``202`` with the job id, and the client polls ``/jobs/<id>``).  Errors are JSON too: ``{"error": ...}`` with 400 for
malformed requests, 404 for unknown routes/jobs, 503 while shutting
down; the fabric routes add 409 (version mismatch, duplicate post) and
410 (expired or unknown lease) per the protocol's error taxonomy.

Every request is measured into the service's metrics registry
(``repro_http_requests_total{route,code}`` and the
``repro_http_request_duration_seconds{route}`` histogram).  ``POST``
requests carry a trace id: the ``X-Trace-Id`` request header is adopted
when present (32 hex chars) or generated otherwise, attached to the job
(visible in ``/jobs/<id>``), and echoed on the response — so a failed
loadtest request can name the exact server-side job it spawned.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .. import __version__
from ..fabric.protocol import FabricError
from ..obs.prom import CONTENT_TYPE as PROM_CONTENT_TYPE
from ..obs.prom import render as render_metrics
from ..obs.trace import new_trace_id
from .core import Job, RequestError, ScheduleRequest, SchedulingService, ServiceClosed

#: Default bind address of ``repro-vliw serve``.
DEFAULT_HOST = "127.0.0.1"

#: Default port of ``repro-vliw serve`` (and the client's default).
DEFAULT_PORT = 8537

#: Ceiling on accepted request bodies (a sweep of a few thousand
#: requests fits comfortably; anything bigger is a client bug).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Default seconds a waiting POST blocks before falling back to 202+poll.
DEFAULT_WAIT_TIMEOUT_S = 300.0


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one scheduling service."""

    daemon_threads = True

    def __init__(
        self,
        service: SchedulingService,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        quiet: bool = True,
    ):
        self.service = service
        self.quiet = quiet
        self.http_requests = service.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and status code",
            ("route", "code"),
        )
        self.http_seconds = service.metrics.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling latency, by route",
            ("route",),
        )
        super().__init__((host, port), _Handler)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` ephemeral binds)."""
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-vliw-service/{__version__}"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)

    @property
    def service(self) -> SchedulingService:
        return self.server.service  # type: ignore[attr-defined]

    def _route_label(self) -> str:
        """The bounded route label for metrics (no per-id cardinality)."""
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path.startswith("/jobs/"):
            return "/jobs"
        if path in (
            "/schedule",
            "/sweep",
            "/leases",
            "/results",
            "/healthz",
            "/stats",
            "/metrics",
        ):
            return path
        return "other"

    def _send_json(self, code: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        trace_id = getattr(self, "_trace_id", None)
        if trace_id:
            self.send_header("X-Trace-Id", trace_id)
        self.end_headers()
        self.wfile.write(body)
        self._status_code = code

    def _send_text(self, code: int, body: str, content_type: str) -> None:
        data = body.encode()
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        self._status_code = code

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise RequestError("a JSON request body is required")
        if length > MAX_BODY_BYTES:
            # The unread body would corrupt keep-alive framing for the
            # next request on this connection; drop the connection.
            self.close_connection = True
            raise RequestError(
                f"request body too large ({length} > {MAX_BODY_BYTES} bytes)"
            )
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except ValueError:
            raise RequestError("request body is not valid JSON") from None
        if not isinstance(data, dict):
            raise RequestError("request body must be a JSON object")
        return data

    # ------------------------------------------------------------------
    def _measured(self, handler) -> None:
        """Run one request handler, recording latency and status code."""
        route = self._route_label()
        self._status_code = 0
        self._trace_id = None  # reset per request (keep-alive reuses handlers)
        t0 = time.perf_counter()
        try:
            handler()
        finally:
            elapsed = time.perf_counter() - t0
            server = self.server
            server.http_seconds.labels(route=route).observe(elapsed)
            server.http_requests.labels(
                route=route, code=str(self._status_code or 500)
            ).inc()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._measured(self._handle_get)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._measured(self._handle_post)

    def _handle_get(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, self.service.healthz())
        elif path == "/stats":
            self._send_json(200, self.service.stats())
        elif path == "/metrics":
            self._send_text(
                200, render_metrics(self.service.metrics), PROM_CONTENT_TYPE
            )
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            job = self.service.job(job_id)
            if job is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
            else:
                self._send_json(200, job.snapshot())
        else:
            self._send_json(404, {"error": f"unknown path {self.path!r}"})

    def _handle_post(self) -> None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/schedule", "/sweep", "/leases", "/results"):
            # Unknown routes are 404 regardless of body validity (and
            # the body must still be drained for HTTP/1.1 keep-alive).
            self.rfile.read(int(self.headers.get("Content-Length") or 0))
            self._send_json(404, {"error": f"unknown path {self.path!r}"})
            return
        self._trace_id = self._request_trace_id()
        try:
            data = self._read_body()
            if path == "/schedule":
                self._post_schedule(data)
            elif path == "/sweep":
                self._post_sweep(data)
            elif path == "/leases":
                self._send_json(200, self.service.fabric_claim(data))
            else:
                self._send_json(200, self.service.fabric_results(data))
        except FabricError as exc:
            self._send_json(exc.http_status, {"error": str(exc)})
        except RequestError as exc:
            self._send_json(400, {"error": str(exc)})
        except ServiceClosed as exc:
            self._send_json(503, {"error": str(exc)})

    def _request_trace_id(self) -> str:
        """The client's ``X-Trace-Id`` when plausible, else a fresh one."""
        supplied = (self.headers.get("X-Trace-Id") or "").strip().lower()
        if supplied and len(supplied) <= 64 and supplied.isalnum():
            return supplied
        return new_trace_id()

    # ------------------------------------------------------------------
    @staticmethod
    def _wait_params(data: dict[str, Any]) -> tuple[bool, float]:
        wait = data.pop("wait", True)
        if not isinstance(wait, bool):
            raise RequestError("'wait' must be true or false")
        timeout = data.pop("timeout_s", DEFAULT_WAIT_TIMEOUT_S)
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise RequestError("'timeout_s' must be a positive number")
        return wait, float(timeout)

    def _respond_job(self, job: Job, wait: bool, timeout: float) -> None:
        if not wait:
            self._send_json(202, job.snapshot(include_results=False))
            return
        job.wait(timeout)
        doc = job.snapshot()
        if job.status == "done":
            self._send_json(200, doc)
        elif job.status in ("queued", "running"):
            self._send_json(202, doc)  # poll /jobs/<id>
        else:  # failed / cancelled
            self._send_json(500, doc)

    def _post_schedule(self, data: dict[str, Any]) -> None:
        wait, timeout = self._wait_params(data)
        request = ScheduleRequest.from_payload(data)
        job = self.service.submit_schedule(request, trace_id=self._trace_id)
        if not wait:
            self._send_json(202, job.snapshot(include_results=False))
            return
        job.wait(timeout)
        doc = job.snapshot(include_results=False)
        if job.status == "done":
            doc["result"] = job.results[0]
            self._send_json(200, doc)
        elif job.status in ("queued", "running"):
            self._send_json(202, doc)
        else:
            self._send_json(500, doc)

    def _post_sweep(self, data: dict[str, Any]) -> None:
        wait, timeout = self._wait_params(data)
        distributed = data.pop("distributed", False)
        if not isinstance(distributed, bool):
            raise RequestError("'distributed' must be true or false")
        grid = data.pop("grid", None)
        if grid is not None:
            if data.get("requests") is not None:
                raise RequestError("'grid' and 'requests' are mutually exclusive")
            quick = data.pop("quick", False)
            if not isinstance(quick, bool):
                raise RequestError("'quick' must be true or false")
            jobs = data.pop("jobs", None)
            if jobs is not None and (
                not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 1
            ):
                raise RequestError("'jobs' must be a positive integer")
            unknown = sorted(set(data))
            if unknown:
                raise RequestError(f"unknown request field(s): {unknown}")
            job = self.service.submit_grid(
                grid,
                quick=quick,
                jobs=jobs,
                distributed=distributed,
                trace_id=self._trace_id,
            )
            self._respond_job(job, wait, timeout)
            return
        if distributed:
            raise RequestError("'distributed' requires 'grid'")
        requests = data.pop("requests", None)
        if not isinstance(requests, list) or not requests:
            raise RequestError(
                "'requests' (a non-empty list) or 'grid' is required"
            )
        unknown = sorted(set(data))
        if unknown:
            raise RequestError(f"unknown request field(s): {unknown}")
        parsed = [ScheduleRequest.from_payload(item) for item in requests]
        job = self.service.submit_sweep(parsed, trace_id=self._trace_id)
        self._respond_job(job, wait, timeout)
