"""Cycle-accurate clustered-VLIW simulation.

Executes the emitted software-pipelined code of a modulo schedule —
prologue, kernel, epilogue — against per-cluster register files with
dataflow token checking, contended broadcast buses and lock-step stall
propagation, and cross-validates the result against the paper's analytic
cycle model.  See :mod:`repro.sim.engine` for the execution semantics.
"""

from .crosscheck import CrossCheck, crosscheck_loop, crosscheck_schedule
from .engine import simulate_result, simulate_schedule
from .memory import (
    MemoryModel,
    PerfectMemory,
    RandomMissMemory,
    memory_from_stall_model,
)
from .report import SimReport

__all__ = [
    "CrossCheck",
    "MemoryModel",
    "PerfectMemory",
    "RandomMissMemory",
    "SimReport",
    "crosscheck_loop",
    "crosscheck_schedule",
    "memory_from_stall_model",
    "simulate_result",
    "simulate_schedule",
]
