"""Cross-validation of the analytic cycle model against simulation.

The paper's results rest on ``NCYCLES = (NITER + SC - 1) * II`` with a
perfect memory; the simulator executes the same schedules for real.  This
module diffs the two: under a perfect memory every discrepancy is a bug
in one of the models, so :func:`crosscheck_schedule` is used as a hard
oracle by the test suite, the ``repro-vliw crossval`` experiment mode and
the cross-check benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.schedule import ModuloSchedule
from ..core.selective import ScheduledLoopResult
from ..ir.loop import Loop
from ..perf.model import PERFECT_MEMORY, StallModel, loop_performance, pipeline_cycles
from .engine import simulate_result, simulate_schedule
from .memory import MemoryModel
from .report import SimReport


@dataclass(frozen=True)
class CrossCheck:
    """Analytic vs simulated cycles and IPC for one loop execution."""

    loop_name: str
    config_name: str
    analytic_cycles: int
    simulated_cycles: int
    analytic_ipc: float
    simulated_ipc: float
    #: The full simulator report, when the check ran in this process
    #: (``None`` when the numbers were replayed from the result cache).
    report: SimReport | None = None

    @property
    def cycle_divergence(self) -> int:
        return self.simulated_cycles - self.analytic_cycles

    @property
    def ipc_divergence(self) -> float:
        """Absolute analytic-vs-simulated IPC gap."""
        return abs(self.simulated_ipc - self.analytic_ipc)

    @property
    def exact(self) -> bool:
        """Do model and simulation agree to floating-point rounding?"""
        return self.cycle_divergence == 0 and math.isclose(
            self.simulated_ipc, self.analytic_ipc, rel_tol=1e-12, abs_tol=0.0
        )

    def render(self) -> str:
        return (
            f"crosscheck {self.loop_name!r} on {self.config_name!r}: "
            f"analytic {self.analytic_cycles} cycles / IPC "
            f"{self.analytic_ipc:.3f}, simulated {self.simulated_cycles} "
            f"cycles / IPC {self.simulated_ipc:.3f}"
            + ("" if self.cycle_divergence == 0 else
               f"  (divergence {self.cycle_divergence:+d} cycles)")
        )


def crosscheck_schedule(
    schedule: ModuloSchedule,
    niter: int,
    *,
    unroll_factor: int = 1,
    ops_per_source_iteration: int | None = None,
    memory: MemoryModel | None = None,
) -> CrossCheck:
    """Simulate *schedule* and diff it against the closed-form model.

    The analytic side always uses the perfect-memory formula; passing a
    *memory* model therefore measures how far dynamic stalls pull the
    machine away from the paper's idealisation.
    """
    report = simulate_schedule(
        schedule,
        niter,
        unroll_factor=unroll_factor,
        ops_per_source_iteration=ops_per_source_iteration,
        memory=memory,
    )
    analytic_cycles = pipeline_cycles(
        report.kernel_iterations, schedule.stage_count, schedule.ii
    )
    analytic_ipc = report.useful_ops / analytic_cycles
    return CrossCheck(
        loop_name=report.loop_name,
        config_name=report.config_name,
        analytic_cycles=analytic_cycles,
        simulated_cycles=report.cycles,
        analytic_ipc=analytic_ipc,
        simulated_ipc=report.ipc,
        report=report,
    )


def crosscheck_loop(
    loop: Loop,
    result: ScheduledLoopResult,
    *,
    stall_model: StallModel = PERFECT_MEMORY,
    memory: MemoryModel | None = None,
) -> CrossCheck:
    """Diff one scheduled :class:`Loop` (one loop entry) against the model.

    The analytic side comes from :func:`repro.perf.model.loop_performance`
    under *stall_model*; the simulated side executes ``loop.trip_count``
    source iterations under *memory*.
    """
    perf = loop_performance(loop, result, stall_model)
    report = simulate_result(
        result,
        loop.trip_count,
        ops_per_source_iteration=loop.ops_per_iteration,
        memory=memory,
    )
    return CrossCheck(
        loop_name=loop.name,
        config_name=result.schedule.config.name,
        analytic_cycles=perf.cycles_per_entry,
        simulated_cycles=report.cycles,
        analytic_ipc=perf.ipc,
        simulated_ipc=report.ipc,
        report=report,
    )
