"""Cycle-accurate execution of emitted software-pipelined VLIW code.

The simulator runs the complete static code of a modulo schedule —
prologue, kernel repetitions, epilogue — one VLIW instruction per cycle,
against a machine state it maintains itself:

* **Per-cluster register files with dataflow tokens.**  Every produced
  value is a token ``(node, kernel_iteration)`` that becomes readable in
  its cluster ``latency`` cycles after issue.  An operation (or a bus
  transfer) reading a token that does not exist yet — or exists only in
  another cluster — is a hard :class:`~repro.errors.SimulationError`, not
  a warning: it means the schedule the code was generated from is wrong.
* **Buses as contended broadcast resources.**  A transfer occupies its
  bus for the bus latency; a second transfer starting while the bus is
  busy is a simulation error.  Delivered tokens appear in every reader
  cluster's file at the arrival cycle.
* **Lock-step stall propagation.**  The clusters share one fetch stream;
  a load miss (see :mod:`repro.sim.memory`) freezes instruction issue
  machine-wide for the miss penalty while in-flight FU/bus pipelines
  drain.

Dynamic schedule: kernel iteration *i* of an operation at schedule cycle
``c`` issues in II-group ``g = i + c // II`` at row ``c % II`` (see
:mod:`repro.codegen.linear`).  A run of K kernel iterations therefore
executes ``K + SC - 1`` groups — with a perfect memory this is exactly
the analytic model's ``(K + SC - 1) * II`` cycles, which the
cross-validation layer asserts rather than assumes.
"""

from __future__ import annotations

import math

from ..codegen.linear import linearize
from ..core.schedule import ModuloSchedule
from ..core.selective import ScheduledLoopResult
from ..errors import SimulationError
from .memory import MemoryModel, PerfectMemory
from .report import SimReport


class _LiveTracker:
    """Streaming MaxLive sweep over one cluster's token lifetimes.

    A token is live from the cycle it is written until its last read
    (inclusive); a token never read occupies its register for one cycle.
    Intervals arrive as tokens retire; events before the caller's
    watermark (no still-active token can start earlier) are folded into
    a running count immediately, so memory stays proportional to the
    pipeline window instead of the whole run.
    """

    __slots__ = ("events", "live", "peak")

    def __init__(self) -> None:
        self.events: list[tuple[int, int]] = []
        self.live = 0
        self.peak = 0

    def add(self, written: int, end: int) -> None:
        self.events.append((written, 1))
        self.events.append((end, -1))

    def drain(self, watermark: float) -> None:
        done = [e for e in self.events if e[0] < watermark]
        if not done:
            return
        self.events = [e for e in self.events if e[0] >= watermark]
        done.sort()
        live, peak = self.live, self.peak
        for _, delta in done:
            live += delta
            if live > peak:
                peak = live
        self.live, self.peak = live, peak

    def finish(self) -> int:
        self.drain(float("inf"))
        return self.peak


def simulate_schedule(
    schedule: ModuloSchedule,
    niter: int,
    *,
    unroll_factor: int = 1,
    ops_per_source_iteration: int | None = None,
    memory: MemoryModel | None = None,
) -> SimReport:
    """Execute *schedule* for *niter* source iterations, cycle by cycle.

    *niter* counts **source** iterations; with an unrolled schedule the
    kernel runs ``ceil(niter / unroll_factor)`` times (the final partial
    batch runs as a full unrolled iteration, as in the analytic model).
    ``ops_per_source_iteration`` overrides the useful-work accounting for
    graphs whose size is not simply ``len(graph) / unroll_factor``.
    """
    if niter < 1:
        raise SimulationError(f"niter must be >= 1, got {niter}")
    if unroll_factor < 1:
        raise SimulationError(f"unroll factor must be >= 1, got {unroll_factor}")
    graph = schedule.graph
    config = schedule.config
    if ops_per_source_iteration is None:
        if len(graph) % unroll_factor:
            raise SimulationError(
                f"graph has {len(graph)} ops, not a multiple of unroll factor "
                f"{unroll_factor}; pass ops_per_source_iteration explicitly"
            )
        ops_per_source_iteration = len(graph) // unroll_factor

    code = linearize(schedule)
    ii = code.ii
    sc = code.stage_count
    latbus = config.buses.latency
    mem = memory if memory is not None else PerfectMemory()
    mem.reset()

    kernel_iters = math.ceil(niter / unroll_factor)
    n_groups = kernel_iters + sc - 1

    # (node, kernel_iteration) -> cycle the token is readable, per cluster.
    avail: list[dict[tuple[int, int], int]] = [{} for _ in config.clusters()]
    last_read: list[dict[tuple[int, int], int]] = [{} for _ in config.clusters()]
    trackers = [_LiveTracker() for _ in config.clusters()]
    # A token of iteration i is dead once every consumer that may read it
    # (distance <= max_distance, issuing up to SC-1 groups later) has
    # issued — retiring it then keeps state O(pipeline window), not O(run).
    max_distance = max(
        (read.distance for row in code.rows for rec in row for read in rec.reads),
        default=0,
    )
    retire_lag = max_distance + sc
    bus_free_at = [0] * config.buses.count
    bus_busy = [0] * config.buses.count
    loads = misses = issued = stall_total = 0
    clock = 0

    def retire(cluster: int, dead_before_iter: int | None) -> None:
        cl_avail = avail[cluster]
        cl_reads = last_read[cluster]
        tracker = trackers[cluster]
        if dead_before_iter is None:
            dead = cl_avail
        else:
            dead = [k for k in cl_avail if k[1] < dead_before_iter]
        for key in dead:
            written = cl_avail[key]
            end = max(cl_reads.pop(key, written), written) + 1
            tracker.add(written, end)
        if dead_before_iter is None:
            cl_avail.clear()
        else:
            for key in dead:
                del cl_avail[key]
        # Safe to fold events before both the earliest still-active write
        # and the clock (future tokens are written at >= clock).
        tracker.drain(min(min(cl_avail.values(), default=float("inf")), clock))

    for g in range(n_groups):
        for r in range(ii):
            stall = 0
            for rec in code.rows[r]:
                i = g - rec.stage
                if not 0 <= i < kernel_iters:
                    continue  # predicated off: ramp-up/-down of the pipeline
                cl = rec.cluster
                cl_avail = avail[cl]
                cl_reads = last_read[cl]
                for read in rec.reads:
                    j = i - read.distance
                    if j < 0:
                        continue  # pre-loop value (live-in of the pipeline)
                    key = (read.producer, j)
                    ready = cl_avail.get(key)
                    if ready is None:
                        raise SimulationError(
                            f"cycle {clock}: node {rec.node} ({rec.opcode}, "
                            f"iteration {i}) reads value of node "
                            f"{read.producer} iteration {j}, which never "
                            f"reached cluster {cl}"
                        )
                    if ready > clock:
                        raise SimulationError(
                            f"cycle {clock}: node {rec.node} ({rec.opcode}, "
                            f"iteration {i}) reads value of node "
                            f"{read.producer} iteration {j} before it is "
                            f"ready at cycle {ready} (dataflow token "
                            f"violation in cluster {cl})"
                        )
                    if cl_reads.get(key, -1) < clock:
                        cl_reads[key] = clock
                if rec.writes_register:
                    cl_avail[(rec.node, i)] = clock + rec.latency
                if rec.is_load:
                    loads += 1
                    penalty = mem.load_penalty()
                    if penalty:
                        misses += 1
                        stall += penalty
                issued += 1

            for brec in code.bus_rows[r]:
                i = g - brec.stage
                if not 0 <= i < kernel_iters:
                    continue
                key = (brec.producer, i)
                src = brec.src_cluster
                ready = avail[src].get(key)
                if ready is None or ready > clock:
                    raise SimulationError(
                        f"cycle {clock}: bus {brec.bus} transfer of node "
                        f"{brec.producer} iteration {i} starts before the "
                        f"value exists in cluster {src}"
                        + (f" (ready at {ready})" if ready is not None else "")
                    )
                if last_read[src].get(key, -1) < clock:
                    last_read[src][key] = clock
                if clock < bus_free_at[brec.bus]:
                    raise SimulationError(
                        f"cycle {clock}: bus {brec.bus} contention — busy "
                        f"until {bus_free_at[brec.bus]} when the transfer of "
                        f"node {brec.producer} iteration {i} starts"
                    )
                bus_free_at[brec.bus] = clock + latbus
                bus_busy[brec.bus] += latbus
                arrival = clock + latbus
                for reader in brec.readers:
                    existing = avail[reader].get(key)
                    if existing is None or arrival < existing:
                        avail[reader][key] = arrival

            clock += 1 + stall
            stall_total += stall

        for cluster in config.clusters():
            retire(cluster, g - retire_lag + 1)

    for cluster in config.clusters():
        retire(cluster, None)

    return SimReport(
        loop_name=graph.name,
        config_name=config.name,
        ii=ii,
        stage_count=sc,
        unroll_factor=unroll_factor,
        niter=niter,
        kernel_iterations=kernel_iters,
        cycles=clock,
        stall_cycles=stall_total,
        issued_ops=issued,
        useful_ops=ops_per_source_iteration * niter,
        loads_executed=loads,
        load_misses=misses,
        bus_busy_cycles=tuple(bus_busy),
        peak_live=tuple(trackers[c].finish() for c in config.clusters()),
    )


def simulate_result(
    result: ScheduledLoopResult,
    niter: int,
    *,
    ops_per_source_iteration: int | None = None,
    memory: MemoryModel | None = None,
) -> SimReport:
    """Simulate a policy-transformed loop (carries its own unroll factor)."""
    return simulate_schedule(
        result.schedule,
        niter,
        unroll_factor=result.unroll_factor,
        ops_per_source_iteration=ops_per_source_iteration,
        memory=memory,
    )
