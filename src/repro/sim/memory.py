"""Memory models for the cycle-accurate simulator.

The paper's evaluation assumes a perfect memory hierarchy (Section 6.1);
:class:`PerfectMemory` reproduces that.  :class:`RandomMissMemory` makes
the :class:`~repro.perf.model.StallModel` extension *dynamic*: instead of
the closed-form ``loads * miss_rate * miss_penalty`` estimate, every
executed load samples a miss from a seeded RNG and a miss freezes
instruction issue machine-wide for ``miss_penalty`` cycles (a stall in one
cluster stalls all clusters, Section 3 — the clusters run in lock-step).
In-flight functional-unit and bus pipelines drain during the freeze, so a
stall can only make values ready *earlier* relative to their consumers,
never later.
"""

from __future__ import annotations

import random

from ..perf.model import StallModel


class MemoryModel:
    """Interface: per-load stall sampling plus access accounting."""

    def reset(self) -> None:
        """Forget all state so the next simulation starts fresh."""

    def load_penalty(self) -> int:
        """Stall cycles charged for one executed load (0 = hit)."""
        raise NotImplementedError


class PerfectMemory(MemoryModel):
    """Every load hits — the paper's assumption."""

    def load_penalty(self) -> int:
        return 0


class RandomMissMemory(MemoryModel):
    """Per-load miss sampling with a seeded RNG (reproducible runs)."""

    def __init__(self, miss_rate: float, miss_penalty: int, seed: int = 0):
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError(f"miss_rate {miss_rate} not in [0, 1]")
        if miss_penalty < 0:
            raise ValueError(f"negative miss_penalty {miss_penalty}")
        self.miss_rate = miss_rate
        self.miss_penalty = miss_penalty
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def load_penalty(self) -> int:
        if self.miss_rate > 0.0 and self._rng.random() < self.miss_rate:
            return self.miss_penalty
        return 0


def memory_from_stall_model(model: StallModel, seed: int = 0) -> MemoryModel:
    """The dynamic counterpart of a closed-form :class:`StallModel`."""
    if model.miss_rate == 0.0 or model.miss_penalty == 0:
        return PerfectMemory()
    return RandomMissMemory(model.miss_rate, model.miss_penalty, seed)
