"""Result record of one simulated loop execution."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SimReport:
    """What one cycle-accurate run of a software-pipelined loop measured.

    ``ipc`` counts *useful* operations — operations of one source loop
    body per source iteration, unrolling-neutral — exactly like the
    analytic model, so the two are directly comparable.  ``issued_ops``
    is what the machine actually issued (a partially-filled last unrolled
    batch issues more than it usefully retires).
    """

    loop_name: str
    config_name: str
    ii: int
    stage_count: int
    unroll_factor: int
    niter: int
    kernel_iterations: int
    cycles: int
    stall_cycles: int
    issued_ops: int
    useful_ops: int
    loads_executed: int
    load_misses: int
    #: Busy cycles of each bus over the whole run.
    bus_busy_cycles: tuple[int, ...]
    #: Peak simultaneously-live register values observed per cluster.
    peak_live: tuple[int, ...]

    @property
    def ipc(self) -> float:
        """Useful operations per cycle (the analytic model's measure)."""
        return self.useful_ops / self.cycles if self.cycles else 0.0

    @property
    def issue_ipc(self) -> float:
        """Operations actually issued per cycle (includes remainder waste)."""
        return self.issued_ops / self.cycles if self.cycles else 0.0

    @property
    def bus_occupancy(self) -> tuple[float, ...]:
        """Fraction of cycles each bus spent transferring."""
        if not self.cycles:
            return tuple(0.0 for _ in self.bus_busy_cycles)
        return tuple(busy / self.cycles for busy in self.bus_busy_cycles)

    def render(self) -> str:
        """Human-readable summary (what the CLI prints)."""
        lines = [
            f"SimReport: {self.loop_name!r} on {self.config_name!r}",
            f"  II={self.ii}  SC={self.stage_count}  unroll={self.unroll_factor}"
            f"  niter={self.niter} ({self.kernel_iterations} kernel iterations)",
            f"  cycles            {self.cycles}"
            + (f"  (of which {self.stall_cycles} stalled)" if self.stall_cycles else ""),
            f"  useful ops        {self.useful_ops}  (issued {self.issued_ops})",
            f"  IPC               {self.ipc:.3f}",
        ]
        if self.loads_executed:
            lines.append(
                f"  loads             {self.loads_executed}"
                f"  ({self.load_misses} missed)"
            )
        for b, occ in enumerate(self.bus_occupancy):
            lines.append(
                f"  bus {b} occupancy   {occ:.3f}"
                f"  ({self.bus_busy_cycles[b]} busy cycles)"
            )
        live = "  ".join(
            f"c{c}={p}" for c, p in enumerate(self.peak_live)
        )
        lines.append(f"  peak live values  {live}")
        return "\n".join(lines)
