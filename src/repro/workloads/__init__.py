"""Workloads: the plugin registry, classic kernels, the synthetic
generator, the SPECfp95 suite.

All shipped workloads register through :mod:`repro.workloads.registry`;
importing this package registers the full built-in catalogue."""

from .generator import LoopShape, RecurrenceSpec, generate_loop
from .kernels import (
    ALL_KERNELS,
    KERNEL_ALIASES,
    figure7_graph,
    kernel_loop,
    kernel_table,
    resolve_kernel,
)
from .livermore import LIVERMORE_KERNELS, RECURRENCE_BOUND, livermore_program
from .registry import (
    WORKLOAD_PATH_ENV,
    WorkloadSpec,
    load_plugins,
    register_workload,
    resolve_workload,
    unregister_workload,
    workload,
    workload_table,
    workloads,
)
from .specfp import PROGRAM_NAMES, build_program, specfp95_suite

__all__ = [
    "ALL_KERNELS",
    "KERNEL_ALIASES",
    "LIVERMORE_KERNELS",
    "RECURRENCE_BOUND",
    "WORKLOAD_PATH_ENV",
    "WorkloadSpec",
    "livermore_program",
    "load_plugins",
    "LoopShape",
    "PROGRAM_NAMES",
    "RecurrenceSpec",
    "build_program",
    "figure7_graph",
    "generate_loop",
    "kernel_loop",
    "kernel_table",
    "register_workload",
    "resolve_kernel",
    "resolve_workload",
    "specfp95_suite",
    "unregister_workload",
    "workload",
    "workload_table",
    "workloads",
]
