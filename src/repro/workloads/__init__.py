"""Workloads: classic kernels, the synthetic generator, the SPECfp95 suite."""

from .generator import LoopShape, RecurrenceSpec, generate_loop
from .kernels import (
    ALL_KERNELS,
    KERNEL_ALIASES,
    figure7_graph,
    kernel_loop,
    resolve_kernel,
)
from .livermore import LIVERMORE_KERNELS, RECURRENCE_BOUND, livermore_program
from .specfp import PROGRAM_NAMES, build_program, specfp95_suite

__all__ = [
    "ALL_KERNELS",
    "KERNEL_ALIASES",
    "LIVERMORE_KERNELS",
    "RECURRENCE_BOUND",
    "livermore_program",
    "LoopShape",
    "PROGRAM_NAMES",
    "RecurrenceSpec",
    "build_program",
    "figure7_graph",
    "generate_loop",
    "kernel_loop",
    "resolve_kernel",
    "specfp95_suite",
]
