"""Seeded synthetic loop-body generator.

Stands in for the SPECfp95 innermost loops the paper extracts with the
ICTINEO compiler (see DESIGN.md, substitutions).  Generated bodies have the
structure of numerical inner loops:

* a layer of loads (optionally behind integer address arithmetic),
* a DAG of compute operations, each consuming one or two previously
  produced values (loads or earlier computes),
* explicit recurrence chains ``r1 -> r2 -> ... -> rL ->(distance d) r1``,
* optional extra loop-carried flow edges between unrelated nodes,
* a layer of stores consuming compute results.

All randomness flows from the ``seed``; the same :class:`LoopShape` always
yields the identical graph, keeping every experiment reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import GraphError
from ..ir.ddg import DependenceGraph
from ..ir.operation import DEFAULT_CATALOG, OpCatalog

#: Compute opcodes drawn for FP work (weights approximate numeric codes:
#: adds/subs dominate, then multiplies, rare divides/roots).
_FP_OPS = ["fadd", "fsub", "fmul", "fmac"]
_FP_WEIGHTS = [4, 2, 4, 1]
_FP_LONG_OPS = ["fdiv", "fsqrt"]
_INT_OPS = ["iadd", "isub", "imul", "ilogic", "ishift"]
_INT_WEIGHTS = [4, 2, 1, 1, 1]


@dataclass(frozen=True)
class RecurrenceSpec:
    """One recurrence chain: *length* ops closed at iteration *distance*."""

    length: int
    distance: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise GraphError(f"recurrence length must be >= 1, got {self.length}")
        if self.distance < 1:
            raise GraphError(f"recurrence distance must be >= 1, got {self.distance}")


@dataclass(frozen=True)
class LoopShape:
    """All knobs of one synthetic loop body.

    Attributes
    ----------
    name, seed:
        Identity; the seed fully determines the graph.
    n_ops:
        Total operations (approximate: recurrences and the load/store
        layers are carved out of this budget).
    mem_fraction:
        Share of operations that are loads/stores.
    store_fraction:
        Share of the memory operations that are stores.
    fp_fraction:
        Share of the *compute* operations that are floating point (the
        rest are integer).
    long_latency_fraction:
        Share of FP computes drawn from {fdiv, fsqrt}.
    addr_fraction:
        Share of loads fed by an explicit integer address computation.
    recurrences:
        Explicit recurrence chains to embed.
    carried_edge_prob:
        Probability (per compute op) of an extra loop-carried flow edge
        from it to a random earlier op, at distance 1 or 2.
    fanin:
        Operand count for compute ops (1 or 2, biased towards 2).
    locality_window:
        Operands are drawn mostly from the last *locality_window* produced
        values (real loop bodies consume recent temporaries; this keeps
        live sets realistic).  ``long_range_prob`` is the chance of an
        operand reaching anywhere in the body instead.
    """

    name: str
    seed: int
    n_ops: int
    mem_fraction: float = 0.35
    store_fraction: float = 0.3
    fp_fraction: float = 0.8
    long_latency_fraction: float = 0.0
    addr_fraction: float = 0.15
    recurrences: tuple[RecurrenceSpec, ...] = field(default_factory=tuple)
    carried_edge_prob: float = 0.0
    fanin: float = 1.7
    locality_window: int = 6
    long_range_prob: float = 0.03

    def __post_init__(self) -> None:
        if self.n_ops < 3:
            raise GraphError(f"loop {self.name!r}: need at least 3 ops")
        for frac_name in (
            "mem_fraction",
            "store_fraction",
            "fp_fraction",
            "long_latency_fraction",
            "addr_fraction",
            "carried_edge_prob",
        ):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise GraphError(f"loop {self.name!r}: {frac_name}={value} not in [0,1]")


def generate_loop(
    shape: LoopShape, catalog: OpCatalog = DEFAULT_CATALOG
) -> DependenceGraph:
    """Build the dependence graph described by *shape* (deterministic)."""
    rng = random.Random(shape.seed)
    g = DependenceGraph(shape.name, catalog)

    n_mem = max(1, round(shape.n_ops * shape.mem_fraction))
    n_stores = max(1, round(n_mem * shape.store_fraction))
    n_loads = max(1, n_mem - n_stores)
    rec_budget = sum(spec.length for spec in shape.recurrences)
    n_compute = max(1, shape.n_ops - n_loads - n_stores - rec_budget)

    values: list[int] = []  # node ids usable as operands

    def pick_operand() -> int:
        # With probability ``long_range_prob`` the operand may reach
        # anywhere in the body, otherwise it stays in the locality
        # window.  Written so the comparison *positively* gates the
        # long-range draw — a knob like this is one inverted comparison
        # away from meaning its opposite, so the monotonicity is also
        # locked by a statistical test (test_long_range_prob_monotonic).
        if len(values) > shape.locality_window and not rng.random() < shape.long_range_prob:
            return rng.choice(values[-shape.locality_window:])
        return rng.choice(values)

    def pick_compute_opcode() -> str:
        if rng.random() < shape.fp_fraction:
            if shape.long_latency_fraction and rng.random() < shape.long_latency_fraction:
                return rng.choice(_FP_LONG_OPS)
            return rng.choices(_FP_OPS, weights=_FP_WEIGHTS)[0]
        return rng.choices(_INT_OPS, weights=_INT_WEIGHTS)[0]

    # 1. loads (some behind an address computation)
    for i in range(n_loads):
        if rng.random() < shape.addr_fraction:
            addr = g.add_operation("iaddr", f"&a{i}")
            load = g.add_operation("load", f"ld{i}")
            g.add_dependence(addr, load)
        else:
            load = g.add_operation("load", f"ld{i}")
        values.append(load)

    # 2. recurrence chains (ops consume the previous chain element, first
    # element additionally consumes the last at the given distance)
    for r_idx, spec in enumerate(shape.recurrences):
        chain: list[int] = []
        for j in range(spec.length):
            node = g.add_operation(pick_compute_opcode(), f"r{r_idx}.{j}")
            if chain:
                g.add_dependence(chain[-1], node)
            elif values and rng.random() < 0.5:
                g.add_dependence(rng.choice(values), node)
            chain.append(node)
        g.add_dependence(chain[-1], chain[0], distance=spec.distance)
        values.extend(chain)

    # 3. compute DAG (operands mostly local, see LoopShape.locality_window)
    compute_nodes: list[int] = []
    for i in range(n_compute):
        node = g.add_operation(pick_compute_opcode(), f"c{i}")
        operands = 2 if rng.random() < (shape.fanin - 1.0) else 1
        for _ in range(min(operands, len(values))):
            g.add_dependence(pick_operand(), node)
        values.append(node)
        compute_nodes.append(node)

    # 4. extra loop-carried edges (cross-iteration value reuse)
    if shape.carried_edge_prob and compute_nodes:
        for node in compute_nodes:
            if rng.random() < shape.carried_edge_prob:
                target_pool = [v for v in values if v != node]
                if not target_pool:
                    continue
                target = rng.choice(target_pool)
                if not g.operation(node).writes_register:
                    continue
                g.add_dependence(node, target, distance=rng.choice((1, 1, 2)))

    # 5. stores (consume recent results, like writing back a computed row)
    producers = [v for v in values if g.operation(v).writes_register]
    recent = producers[-max(shape.locality_window, n_stores):]
    for i in range(n_stores):
        store = g.add_operation("store", f"st{i}")
        g.add_dependence(rng.choice(recent), store)

    g.validate()
    return g
