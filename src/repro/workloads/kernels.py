"""Hand-written classic loop kernels.

Small, exactly-understood dependence graphs used by the examples, the unit
tests (known MII values) and as building blocks of the synthetic suite.
Each function returns a fresh :class:`~repro.ir.ddg.DependenceGraph`.

All kernels register through :mod:`repro.workloads.registry` under the
``"kernel"`` tag; ``ALL_KERNELS`` / ``KERNEL_ALIASES`` / ``kernel_table``
/ ``resolve_kernel`` are thin views over that registry kept for
compatibility (and because "the classic catalogue" is still a useful
subset to iterate).
"""

from __future__ import annotations

from typing import Callable

from ..errors import WorkloadError
from ..ir.builder import LoopBuilder
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop
from .registry import register_workload, resolve_workload, workloads


@register_workload("daxpy", tags=("kernel",))
def daxpy() -> DependenceGraph:
    """``y[i] = a * x[i] + y[i]`` — fully parallel iterations."""
    b = LoopBuilder("daxpy")
    x = b.load("x[i]")
    y = b.load("y[i]")
    ax = b.fmul(x, b.live_in("a"), tag="a*x")
    s = b.fadd(ax, y, tag="a*x+y")
    b.store(s, tag="y[i]")
    return b.build()


@register_workload("vadd", aliases=("vector_add",), tags=("kernel",))
def vector_add() -> DependenceGraph:
    """``c[i] = a[i] + b[i]``."""
    b = LoopBuilder("vadd")
    a = b.load("a[i]")
    c = b.load("b[i]")
    s = b.fadd(a, c)
    b.store(s, tag="c[i]")
    return b.build()


@register_workload("dot", aliases=("dot_product",), tags=("kernel",))
def dot_product() -> DependenceGraph:
    """``s += x[i] * y[i]`` — a serial reduction (RecMII = fadd latency)."""
    b = LoopBuilder("dot")
    x = b.load("x[i]")
    y = b.load("y[i]")
    m = b.fmul(x, y)
    acc = b.fadd(m, b.live_in("s"), tag="s+=")
    b.carried_use(acc, acc, distance=1)
    return b.build()


@register_workload("rec1", aliases=("first_order_recurrence",), tags=("kernel",))
def first_order_recurrence() -> DependenceGraph:
    """``x[i] = a * x[i-1] + b[i]`` — the classic linear recurrence."""
    b = LoopBuilder("rec1")
    bi = b.load("b[i]")
    ax = b.fmul(b.live_in("a"), b.live_in("x_prev"), tag="a*x")
    xi = b.fadd(ax, bi, tag="x[i]")
    b.carried_use(xi, ax, distance=1)
    b.store(xi, tag="x[i]")
    return b.build()


@register_workload("stencil3", tags=("kernel",))
def stencil3() -> DependenceGraph:
    """``b[i] = w0*a[i-1] + w1*a[i] + w2*a[i+1]`` — parallel 3-point stencil."""
    b = LoopBuilder("stencil3")
    am = b.load("a[i-1]")
    a0 = b.load("a[i]")
    ap = b.load("a[i+1]")
    t0 = b.fmul(am, b.live_in("w0"))
    t1 = b.fmul(a0, b.live_in("w1"))
    t2 = b.fmul(ap, b.live_in("w2"))
    s = b.fadd(b.fadd(t0, t1), t2)
    b.store(s, tag="b[i]")
    return b.build()


@register_workload("stencil5", tags=("kernel",))
def stencil5() -> DependenceGraph:
    """Five-point stencil with address arithmetic (int/mem/fp mix)."""
    b = LoopBuilder("stencil5")
    idx = b.iaddr(b.live_in("i"), tag="base")
    vals = [b.load(f"a[i{o:+d}]", addr=idx) for o in (-2, -1, 0, 1, 2)]
    acc = b.fmul(vals[0], b.live_in("w0"))
    for k, v in enumerate(vals[1:], start=1):
        acc = b.fadd(acc, b.fmul(v, b.live_in(f"w{k}")))
    b.store(acc, tag="b[i]")
    return b.build()


@register_workload("fir4", aliases=("fir_filter",), tags=("kernel",))
def fir_filter(taps: int = 4) -> DependenceGraph:
    """``y[i] = sum_k c[k] * x[i+k]`` with unrolled taps; serial accumulate."""
    b = LoopBuilder(f"fir{taps}")
    acc = None
    for k in range(taps):
        x = b.load(f"x[i+{k}]")
        t = b.fmul(x, b.live_in(f"c{k}"))
        acc = t if acc is None else b.fadd(acc, t)
    b.store(acc, tag="y[i]")
    return b.build()


# The same builder again as a *parametric family*: ``fir(taps=8)`` etc.
# Not tagged "kernel" so the classic catalogue (and every output derived
# from it) is unchanged; the graph is named after the tap count, so each
# parametrisation content-hashes distinctly in the result cache.
register_workload(
    "fir",
    tags=("parametric",),
    params={"taps": 4},
    description="Parametric FIR filter family; instance names like fir(taps=8).",
)(fir_filter)


@register_workload("cmul", aliases=("complex_multiply",), tags=("kernel",))
def complex_multiply() -> DependenceGraph:
    """``c[i] = a[i] * b[i]`` on complex values (4 muls, 2 adds)."""
    b = LoopBuilder("cmul")
    ar = b.load("ar[i]")
    ai = b.load("ai[i]")
    br = b.load("br[i]")
    bi = b.load("bi[i]")
    rr = b.fsub(b.fmul(ar, br), b.fmul(ai, bi), tag="re")
    ri = b.fadd(b.fmul(ar, bi), b.fmul(ai, br), tag="im")
    b.store(rr, tag="cr[i]")
    b.store(ri, tag="ci[i]")
    return b.build()


@register_workload("hydro", aliases=("hydro_fragment",), tags=("kernel",))
def hydro_fragment() -> DependenceGraph:
    """Livermore loop 1 (hydro fragment): ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``."""
    b = LoopBuilder("hydro")
    z10 = b.load("z[k+10]")
    z11 = b.load("z[k+11]")
    yk = b.load("y[k]")
    rz = b.fmul(z10, b.live_in("r"))
    tz = b.fmul(z11, b.live_in("t"))
    inner = b.fadd(rz, tz)
    prod = b.fmul(yk, inner)
    xk = b.fadd(prod, b.live_in("q"))
    b.store(xk, tag="x[k]")
    return b.build()


@register_workload("tridiag", aliases=("tridiag_solver_step",), tags=("kernel",))
def tridiag_solver_step() -> DependenceGraph:
    """Livermore loop 5 (tri-diagonal elimination): carried through x[i-1]."""
    b = LoopBuilder("tridiag")
    yi = b.load("y[i]")
    zi = b.load("z[i]")
    xm = b.fmul(yi, b.live_in("x_prev"), tag="y*x[i-1]")
    xi = b.fsub(zi, xm, tag="x[i]")
    b.carried_use(xi, xm, distance=1)
    b.store(xi, tag="x[i]")
    return b.build()


@register_workload("sqrtnorm", aliases=("sqrt_norm",), tags=("kernel",))
def sqrt_norm() -> DependenceGraph:
    """``n[i] = sqrt(x[i]^2 + y[i]^2)`` — long-latency FP path."""
    b = LoopBuilder("sqrtnorm")
    x = b.load("x[i]")
    y = b.load("y[i]")
    s = b.fadd(b.fmul(x, x), b.fmul(y, y))
    n = b.fsqrt(s)
    b.store(n, tag="n[i]")
    return b.build()


@register_workload("gather", aliases=("indirect_gather",), tags=("kernel",))
def indirect_gather() -> DependenceGraph:
    """``y[i] = a[idx[i]] * s`` — int address chain feeding memory."""
    b = LoopBuilder("gather")
    idx = b.load("idx[i]")
    addr = b.iaddr(idx, tag="&a[idx]")
    val = b.load("a[idx[i]]", addr=addr)
    r = b.fmul(val, b.live_in("s"))
    b.store(r, tag="y[i]")
    return b.build()


@register_workload("fib", aliases=("second_order_recurrence",), tags=("kernel",))
def second_order_recurrence() -> DependenceGraph:
    """``f[i] = f[i-1] + f[i-2]`` style — distance-2 recurrence (RecMII sensitive)."""
    b = LoopBuilder("fib")
    f = b.fadd(b.live_in("f1"), b.live_in("f2"), tag="f[i]")
    g = b.fmul(f, b.live_in("damp"), tag="g[i]")
    b.carried_use(f, f, distance=2)
    b.carried_use(g, f, distance=1)
    b.store(g, tag="out[i]")
    return b.build()


@register_workload("figure7", aliases=("figure7_graph",), tags=("kernel",))
def figure7_graph() -> DependenceGraph:
    """The 6-node example of the paper's Figure 7.

    Six 1-cycle general-purpose operations A..F; a 3-node recurrence
    A->B->D->A at distance 2 (RecMII = ceil(3/2) = 2) and a loop-carried
    edge A ->(d=1) E that, after unrolling by 2, becomes exactly the two
    cross-copy dependences the paper shows (A' -> E and A -> E').
    On a 2-cluster machine with 2 general-purpose units per cluster,
    ResMII = ceil(6/4) = 2.
    """
    g = DependenceGraph("figure7")
    a = g.add_operation("gen", "A")
    bb = g.add_operation("gen", "B")
    c = g.add_operation("gen", "C")
    d = g.add_operation("gen", "D")
    e = g.add_operation("gen", "E")
    f = g.add_operation("gen", "F")
    g.add_dependence(a, bb)
    g.add_dependence(bb, d)
    g.add_dependence(d, a, distance=2)
    g.add_dependence(a, e, distance=1)
    g.add_dependence(c, e)
    g.add_dependence(d, f)
    g.add_dependence(a, f)
    g.validate()
    return g


@register_workload("ladder", aliases=("ladder_graph",), tags=("kernel",))
def ladder_graph() -> DependenceGraph:
    """A 12-operation "ladder" that is provably bus limited when clustered.

    Two 6-deep chains of 1-cycle ops joined by two rungs, each chain closed
    by a distance-2 recurrence: ResMII = RecMII = 3 on the 2-cluster
    machine.  Any balanced 6/6 split crosses at least two value producers,
    so with one bus of latency 2 the non-unrolled loop cannot hold II = 3;
    unrolling by 2 splits the graph into two *disconnected* copies (the
    recurrences have even distance), one per cluster, with zero
    communications — the paper's Figure 7 phenomenon in a form no cluster
    assignment can dodge.
    """
    g = DependenceGraph("ladder")
    a = [g.add_operation("gen", f"a{i}") for i in range(6)]
    b = [g.add_operation("gen", f"b{i}") for i in range(6)]
    for i in range(5):
        g.add_dependence(a[i], a[i + 1])
        g.add_dependence(b[i], b[i + 1])
    g.add_dependence(a[1], b[1])  # rungs tie the chains together
    g.add_dependence(a[3], b[3])
    g.add_dependence(a[5], a[0], distance=2)
    g.add_dependence(b[5], b[0], distance=2)
    g.validate()
    return g


#: The classic catalogue: every workload registered above with the
#: ``"kernel"`` tag, in registration order.  Kept as a plain dict because
#: a lot of tests and experiments iterate it directly.
ALL_KERNELS = {
    spec.name: spec.factory for spec in workloads(tag="kernel", discover=False)
}

#: Accept the builder functions' own names too (``dot_product`` for ``dot``
#: and so on) — the CLI and docs use both interchangeably.  The full
#: canonical-name -> alias table is printed by ``repro-vliw schedule
#: --list`` (see :func:`kernel_table`) and documented in README.md.
KERNEL_ALIASES = {
    alias: spec.name
    for spec in workloads(tag="kernel", discover=False)
    for alias in spec.aliases
}


def kernel_table() -> list[dict]:
    """The canonical-name -> alias catalogue as table rows.

    One row per registered kernel: canonical name, the accepted alias
    (the builder function's own name, when it differs), and the kernel's
    one-line description from its docstring.  This single source feeds
    ``repro-vliw schedule --list`` and the README table.
    """
    rows = []
    for spec in workloads(tag="kernel", discover=False):
        rows.append(
            {
                "kernel": spec.name,
                "alias": spec.aliases[0] if spec.aliases else "",
                "description": spec.description,
            }
        )
    return rows


def resolve_kernel(name: str) -> tuple[str, Callable[[], DependenceGraph]]:
    """Map a kernel name or alias to ``(canonical_name, graph_factory)``.

    A thin shim over :func:`~repro.workloads.registry.resolve_workload`:
    resolves anything graph-like in the registry (classic kernels,
    Livermore loops, parametric instances like ``fir(taps=8)``, plugin
    workloads) and raises :class:`~repro.errors.WorkloadError` — which is
    also a ``KeyError`` — with a did-you-mean suggestion on failure.
    """
    try:
        return resolve_workload(name, kind="graph")
    except WorkloadError as exc:
        if "unknown workload" not in str(exc):
            raise
        graph_specs = [
            spec for spec in workloads(discover=False) if spec.kind == "graph"
        ]
        known = [spec.name for spec in graph_specs]
        known += [alias for spec in graph_specs for alias in spec.aliases]
        raise WorkloadError(
            f"unknown kernel {name!r}; known: {sorted(known)}",
            suggestion=exc.suggestion,
        ) from None


def kernel_loop(name: str, trip_count: int = 100, times_executed: int = 1) -> Loop:
    """A named kernel wrapped as a :class:`Loop` with trip statistics.

    The simulator and its cross-checks work on loops (they need a trip
    count); this is the one-liner that turns any hand-written kernel into
    one.
    """
    _, factory = resolve_kernel(name)
    return Loop(
        graph=factory(), trip_count=trip_count, times_executed=times_executed
    )
