"""Livermore Fortran kernels (the classic loop benchmark set).

A second, fully hand-written workload besides the synthetic SPECfp95
suite: each kernel's dependence structure is known exactly, which makes
them ideal for validating scheduler behaviour (which loops are
recurrence-bound, which parallel) and for a classic-kernels comparison
table.  Numbering follows McMahon's original set; only kernels whose
innermost loop maps cleanly onto the IR are included.
"""

from __future__ import annotations

from ..ir.builder import LoopBuilder
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop, Program
from .kernels import dot_product, hydro_fragment, tridiag_solver_step
from .registry import register_workload, workloads


@register_workload("ll1", aliases=("ll1_hydro",), tags=("livermore",))
def ll1_hydro() -> DependenceGraph:
    """LL1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]) — parallel."""
    g = hydro_fragment().copy("ll1")
    return g


@register_workload("ll3", aliases=("ll3_inner_product",), tags=("livermore",))
def ll3_inner_product() -> DependenceGraph:
    """LL3: q += z[k]*x[k] — serial reduction (RecMII = fadd latency)."""
    return dot_product().copy("ll3")


@register_workload("ll5", aliases=("ll5_tridiag",), tags=("livermore",))
def ll5_tridiag() -> DependenceGraph:
    """LL5: x[i] = z[i]*(y[i] - x[i-1]) — first-order recurrence."""
    return tridiag_solver_step().copy("ll5")


@register_workload("ll7", aliases=("ll7_equation_of_state",), tags=("livermore",))
def ll7_equation_of_state() -> DependenceGraph:
    """LL7: the equation-of-state fragment — a wide parallel expression.

    x[k] = u[k] + r*(z[k] + r*y[k])
         + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
         + t*(u[k+6] + r*(u[k+5] + r*u[k+4])))
    """
    b = LoopBuilder("ll7")
    r = b.live_in("r")
    t = b.live_in("t")
    u = [b.load(f"u[k+{i}]") for i in range(7)]
    z = b.load("z[k]")
    y = b.load("y[k]")

    inner1 = b.fadd(z, b.fmul(r, y))
    inner2 = b.fadd(u[2], b.fmul(r, u[1]))
    inner3 = b.fadd(u[5], b.fmul(r, u[4]))
    mid2 = b.fadd(u[3], b.fmul(r, inner2))
    mid3 = b.fadd(u[6], b.fmul(r, inner3))
    sum3 = b.fadd(mid2, b.fmul(t, mid3))
    x = b.fadd(u[0], b.fadd(b.fmul(r, inner1), b.fmul(t, sum3)))
    b.store(x, tag="x[k]")
    return b.build()


@register_workload("ll9", aliases=("ll9_integrate_predictors",), tags=("livermore",))
def ll9_integrate_predictors() -> DependenceGraph:
    """LL9: px[i] = sum of 9 weighted px/cx terms — parallel multiply-adds."""
    b = LoopBuilder("ll9")
    acc = b.fmul(b.load("px1[i]"), b.live_in("c0"))
    for k in range(2, 10):
        term = b.fmul(b.load(f"px{k}[i]"), b.live_in(f"c{k - 1}"))
        acc = b.fadd(acc, term)
    b.store(acc, tag="px[i]")
    return b.build()


@register_workload("ll10", aliases=("ll10_difference_predictors",), tags=("livermore",))
def ll10_difference_predictors() -> DependenceGraph:
    """LL10: cascaded difference chains — long serial adds, parallel rows."""
    b = LoopBuilder("ll10")
    ar = b.load("cx[i]")
    prev = ar
    stores = []
    for k in range(5):
        px = b.load(f"px{k}[i]")
        diff = b.fsub(prev, px, tag=f"d{k}")
        stores.append(diff)
        prev = diff
    for k, val in enumerate(stores):
        b.store(val, tag=f"px{k}[i]")
    return b.build()


@register_workload("ll11", aliases=("ll11_first_sum",), tags=("livermore",))
def ll11_first_sum() -> DependenceGraph:
    """LL11: x[k] = x[k-1] + y[k] — prefix sum (distance-1 recurrence)."""
    b = LoopBuilder("ll11")
    y = b.load("y[k]")
    x = b.fadd(y, b.live_in("x_prev"), tag="x[k]")
    b.carried_use(x, x, distance=1)
    b.store(x, tag="x[k]")
    return b.build()


@register_workload("ll12", aliases=("ll12_first_difference",), tags=("livermore",))
def ll12_first_difference() -> DependenceGraph:
    """LL12: x[k] = y[k+1] - y[k] — fully parallel."""
    b = LoopBuilder("ll12")
    y1 = b.load("y[k+1]")
    y0 = b.load("y[k]")
    d = b.fsub(y1, y0)
    b.store(d, tag="x[k]")
    return b.build()


#: Registered Livermore kernels in registration order; tagged
#: ``"livermore"`` in the workload registry (front-door resolvable but
#: not part of the classic ``ALL_KERNELS`` catalogue).
LIVERMORE_KERNELS = {
    spec.name: spec.factory
    for spec in workloads(tag="livermore", discover=False)
}

#: Kernels whose iterations are serialised by a recurrence (unrolling
#: cannot help them) — used by tests and the classic-kernels bench.
RECURRENCE_BOUND = frozenset({"ll3", "ll5", "ll11"})


def livermore_program(trip: int = 400, runs: int = 50) -> Program:
    """All Livermore kernels bundled as one program."""
    p = Program("livermore")
    for name, build in LIVERMORE_KERNELS.items():
        p.add(Loop(graph=build(), trip_count=trip, times_executed=runs))
    return p
