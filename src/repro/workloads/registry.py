"""First-class workload plugin registry.

Historically every schedulable loop lived in the closed ``ALL_KERNELS``
dict in :mod:`repro.workloads.kernels`.  This module replaces that with a
registry new workloads plug into by name, without touching the engine:

* :func:`register_workload` — decorator that registers a graph factory
  (or, with ``kind="program"``, a whole-program factory) under a
  canonical name with aliases, tags and declared parameters.  Duplicate
  names and alias collisions are rejected *at registration time*, so a
  broken plugin fails on import, not mid-sweep.
* :func:`resolve_workload` — name/alias lookup with parametrised
  instance syntax: ``resolve_workload("fir(taps=8)")`` partially applies
  the declared parameters and returns a zero-argument factory whose
  graph hashes distinctly from every other parametrisation.
* Discovery — third-party workloads load lazily from two channels: the
  ``repro_vliw.workloads`` entry-point group, and
  :data:`WORKLOAD_PATH_ENV` (``REPRO_VLIW_WORKLOAD_PATH``), an
  ``os.pathsep``-separated list of importable module names and/or
  ``.py`` file paths whose import runs their ``register_workload``
  decorators.

The shipped catalogues (:mod:`~repro.workloads.kernels`,
:mod:`~repro.workloads.livermore`, :mod:`~repro.workloads.specfp`)
re-register through here; ``resolve_kernel`` / ``kernel_table`` are thin
shims over this module.
"""

from __future__ import annotations

import difflib
import functools
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import WorkloadError

__all__ = [
    "WORKLOAD_PATH_ENV",
    "ENTRY_POINT_GROUP",
    "WorkloadSpec",
    "register_workload",
    "unregister_workload",
    "resolve_workload",
    "workload",
    "workloads",
    "workload_table",
    "load_plugins",
]

#: Environment variable listing extra workload modules (``os.pathsep``
#: separated; each entry is a dotted module name or a ``.py`` file path).
WORKLOAD_PATH_ENV = "REPRO_VLIW_WORKLOAD_PATH"

#: Entry-point group scanned for installed workload plugins.
ENTRY_POINT_GROUP = "repro_vliw.workloads"


@dataclass(frozen=True)
class WorkloadSpec:
    """One registered workload: identity, factory and metadata.

    Attributes
    ----------
    name:
        Canonical registry name (unique; also the default instance name).
    factory:
        The registered callable.  For ``kind="graph"`` it returns a fresh
        :class:`~repro.ir.ddg.DependenceGraph`; for ``kind="program"`` a
        :class:`~repro.ir.loop.Program`.
    aliases:
        Additional accepted names (collision-checked at register time).
    tags:
        Free-form labels used for catalogue filtering
        (``repro-vliw workloads --tag``): ``"kernel"`` marks the classic
        catalogue, ``"parametric"`` the instantiable families, ...
    params:
        Declared keyword parameters and their defaults; only these keys
        are accepted by the ``name(key=value, ...)`` instance syntax.
    kind:
        ``"graph"`` (a single loop body) or ``"program"`` (a multi-loop
        program, e.g. the SPECfp95 builders).
    description:
        One-line catalogue description (defaults to the factory
        docstring's first line).
    """

    name: str
    factory: Callable[..., Any]
    aliases: tuple[str, ...] = ()
    tags: tuple[str, ...] = ()
    params: dict[str, Any] = field(default_factory=dict)
    kind: str = "graph"
    description: str = ""


#: Registration order is preserved — it is the catalogue display order
#: and the order ``ALL_KERNELS`` iterates in.
_REGISTRY: dict[str, WorkloadSpec] = {}
_ALIASES: dict[str, str] = {}
_PLUGINS_LOADED = False


def _known_names() -> list[str]:
    return sorted(_REGISTRY) + sorted(_ALIASES)


def _check_collision(name: str, owner: str) -> None:
    if name in _REGISTRY:
        raise WorkloadError(
            f"workload name {name!r} (registering {owner!r}) is already "
            f"registered"
        )
    if name in _ALIASES:
        raise WorkloadError(
            f"workload name {name!r} (registering {owner!r}) collides with "
            f"an alias of {_ALIASES[name]!r}"
        )


def register_workload(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    tags: tuple[str, ...] = (),
    params: dict[str, Any] | None = None,
    kind: str = "graph",
    description: str | None = None,
):
    """Decorator registering a workload factory under *name*.

    Raises :class:`WorkloadError` immediately on a duplicate name or an
    alias colliding with any registered name or alias — a misbehaving
    plugin fails at import time rather than shadowing a catalogue entry.
    """
    if kind not in ("graph", "program"):
        raise WorkloadError(
            f"workload {name!r}: kind must be 'graph' or 'program', "
            f"got {kind!r}"
        )

    def decorator(factory):
        _check_collision(name, name)
        seen = {name}
        for alias in aliases:
            if alias in seen:
                raise WorkloadError(
                    f"workload {name!r}: duplicate alias {alias!r}"
                )
            _check_collision(alias, name)
            seen.add(alias)
        doc = description
        if doc is None:
            doc_lines = (factory.__doc__ or "").strip().splitlines()
            doc = doc_lines[0] if doc_lines else ""
        spec = WorkloadSpec(
            name=name,
            factory=factory,
            aliases=tuple(aliases),
            tags=tuple(tags),
            params=dict(params or {}),
            kind=kind,
            description=doc,
        )
        _REGISTRY[name] = spec
        for alias in spec.aliases:
            _ALIASES[alias] = name
        return factory

    return decorator


def unregister_workload(name: str) -> None:
    """Remove one registered workload (plugin teardown, tests)."""
    spec = _REGISTRY.pop(name, None)
    if spec is None:
        raise WorkloadError(f"workload {name!r} is not registered")
    for alias in spec.aliases:
        _ALIASES.pop(alias, None)


# ---------------------------------------------------------------------------
# Plugin discovery
# ---------------------------------------------------------------------------
def _load_path_entry(entry: str) -> None:
    """Import one ``REPRO_VLIW_WORKLOAD_PATH`` entry (module or file)."""
    import importlib
    import importlib.util

    if entry.endswith(".py") or os.path.sep in entry:
        module_name = f"_repro_workload_{os.path.basename(entry).removesuffix('.py')}"
        spec = importlib.util.spec_from_file_location(module_name, entry)
        if spec is None or spec.loader is None:
            raise WorkloadError(
                f"{WORKLOAD_PATH_ENV}: cannot load workload module {entry!r}"
            )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
    else:
        importlib.import_module(entry)


def load_plugins(*, refresh: bool = False) -> None:
    """Load workload plugins from entry points and the env path (once).

    Import errors surface as :class:`WorkloadError` naming the offending
    entry, so a broken plugin cannot silently shrink the catalogue.
    """
    global _PLUGINS_LOADED
    if _PLUGINS_LOADED and not refresh:
        return
    _PLUGINS_LOADED = True
    try:
        from importlib.metadata import entry_points

        for entry_point in entry_points(group=ENTRY_POINT_GROUP):
            try:
                entry_point.load()
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                raise WorkloadError(
                    f"workload entry point {entry_point.name!r} failed to "
                    f"load: {exc}"
                ) from exc
    except ImportError:  # pragma: no cover - stdlib always has it on 3.10+
        pass
    for entry in os.environ.get(WORKLOAD_PATH_ENV, "").split(os.pathsep):
        entry = entry.strip()
        if not entry:
            continue
        try:
            _load_path_entry(entry)
        except WorkloadError:
            raise
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            raise WorkloadError(
                f"{WORKLOAD_PATH_ENV} entry {entry!r} failed to import: {exc}"
            ) from exc


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------
def _parse_value(text: str) -> Any:
    """One ``key=value`` right-hand side: int, float, or bare string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_instance(spec_text: str) -> tuple[str, dict[str, Any]]:
    """Split ``"fir(taps=8)"`` into ``("fir", {"taps": 8})``."""
    text = spec_text.strip()
    if "(" not in text:
        return text, {}
    if not text.endswith(")"):
        raise WorkloadError(
            f"malformed workload instance {spec_text!r}: expected "
            f"'name(key=value, ...)'"
        )
    base, arg_text = text[:-1].split("(", 1)
    base = base.strip()
    overrides: dict[str, Any] = {}
    arg_text = arg_text.strip()
    if arg_text:
        for part in arg_text.split(","):
            if "=" not in part:
                raise WorkloadError(
                    f"malformed workload instance {spec_text!r}: argument "
                    f"{part.strip()!r} is not 'key=value'"
                )
            key, value = part.split("=", 1)
            key = key.strip()
            if not key.isidentifier():
                raise WorkloadError(
                    f"malformed workload instance {spec_text!r}: bad "
                    f"parameter name {key!r}"
                )
            if key in overrides:
                raise WorkloadError(
                    f"malformed workload instance {spec_text!r}: duplicate "
                    f"parameter {key!r}"
                )
            overrides[key] = _parse_value(value.strip())
    return base, overrides


def _suggest(name: str) -> str | None:
    matches = difflib.get_close_matches(name, _known_names(), n=1, cutoff=0.6)
    return matches[0] if matches else None


def workload(name: str) -> WorkloadSpec:
    """Look up one registered :class:`WorkloadSpec` by name or alias."""
    load_plugins()
    canonical = _ALIASES.get(name, name)
    spec = _REGISTRY.get(canonical)
    if spec is None:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {_known_names()}",
            suggestion=_suggest(name),
        )
    return spec


def resolve_workload(
    spec_text: str, *, kind: str = "graph"
) -> tuple[str, Callable[[], Any]]:
    """Resolve a workload name (or parametrised instance) to a factory.

    Returns ``(canonical_instance_name, zero_argument_factory)``.  The
    canonical instance name of ``"fir( taps=8 )"`` is ``"fir(taps=8)"``
    (explicit overrides only, sorted by key), so distinct
    parametrisations are distinct — and because factories name their
    graphs after the parameters, their graphs content-hash distinctly in
    the result cache too.
    """
    base, overrides = _parse_instance(spec_text)
    spec = workload(base)
    if spec.kind != kind:
        raise WorkloadError(
            f"workload {base!r} is a {spec.kind} workload, not a {kind}"
        )
    unknown = sorted(set(overrides) - set(spec.params))
    if unknown:
        raise WorkloadError(
            f"workload {base!r} accepts no parameter(s) {unknown}; "
            f"declared: {sorted(spec.params)}"
        )
    if not overrides:
        return spec.name, spec.factory
    canonical = "{}({})".format(
        spec.name,
        ",".join(f"{key}={overrides[key]}" for key in sorted(overrides)),
    )
    return canonical, functools.partial(spec.factory, **overrides)


def workloads(
    tag: str | None = None, *, discover: bool = True
) -> Iterator[WorkloadSpec]:
    """Registered workloads in registration order, optionally tag-filtered.

    ``discover=False`` skips plugin loading — used by the shipped
    catalogues at import time (a plugin importing :mod:`repro` back would
    otherwise recurse) and anywhere a snapshot of the built-ins suffices.
    """
    if discover:
        load_plugins()
    for spec in list(_REGISTRY.values()):
        if tag is None or tag in spec.tags:
            yield spec


def workload_table(tag: str | None = None) -> list[dict]:
    """The full catalogue as table rows (``repro-vliw workloads --list``)."""
    rows = []
    for spec in workloads(tag):
        rows.append(
            {
                "workload": spec.name,
                "kind": spec.kind,
                "aliases": ",".join(spec.aliases),
                "tags": ",".join(spec.tags),
                "params": ",".join(
                    f"{key}={value}" for key, value in spec.params.items()
                ),
                "description": spec.description,
            }
        )
    return rows
