"""A synthetic SPECfp95-like evaluation suite.

The paper evaluates the 10 SPECfp95 programs compiled by ICTINEO; neither
is available, so each program here is a seeded set of synthetic innermost
loops (plus a few hand-written classic kernels) whose *shape profile*
follows the program's published character: loop body sizes, FP/memory op
mix, recurrence density, loop-carried dependence patterns and trip counts.
The scheduling comparisons of the paper depend only on those shape
properties (DESIGN.md, substitutions table).

Profiles, qualitatively:

* **tomcatv** — mesh generation: large vectorisable bodies with high
  fan-in and real register pressure; a couple of carried dependences.
  (The paper singles tomcatv out as the one program that *loses* from
  blanket unrolling on 4 clusters.)
* **swim** — shallow-water stencils: parallel, memory-rich, no
  recurrences, long trip counts.
* **su2cor** — quantum field Monte Carlo: medium bodies, some reductions.
* **hydro2d** — hydrodynamics: many small/medium stencil loops with
  occasional recurrences.
* **mgrid** — multigrid 27-point stencils: big fan-in, load-dominated.
* **applu** — SSOR solver: wavefront recurrences (distance-1 chains).
* **turb3d** — turbulence FFT passes: butterflies, mixed int/fp.
* **apsi** — mesoscale weather: varied loops with divides.
* **fpppp** — electron integrals: the famous huge straight-line bodies,
  FP-dominated, essentially no loop-carried dependences.
* **wave5** — plasma PIC: gather/scatter with integer address work.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..ir.ddg import DependenceGraph
from ..ir.loop import Loop, Program
from .generator import LoopShape, RecurrenceSpec, generate_loop
from .registry import register_workload, resolve_workload
from .kernels import (
    complex_multiply,
    daxpy,
    hydro_fragment,
    stencil3,
    stencil5,
    tridiag_solver_step,
)

#: All program names, in the paper's figure order.
PROGRAM_NAMES = (
    "tomcatv",
    "swim",
    "su2cor",
    "hydro2d",
    "mgrid",
    "applu",
    "turb3d",
    "apsi",
    "fpppp",
    "wave5",
)


def _loop(graph: DependenceGraph, trip: int, runs: int) -> Loop:
    return Loop(graph=graph, trip_count=trip, times_executed=runs)


def _generated(shape: LoopShape, trip: int, runs: int) -> Loop:
    return _loop(generate_loop(shape), trip, runs)


def _rename(graph: DependenceGraph, name: str) -> DependenceGraph:
    renamed = graph.copy(name)
    return renamed


@register_workload(
    "tomcatv",
    tags=("specfp",),
    kind="program",
    description="Mesh generation: large vectorisable bodies, real register pressure.",
)
def build_tomcatv() -> Program:
    p = Program("tomcatv")
    base = 7100
    for i, n_ops in enumerate((44, 52, 38, 47)):
        p.add(
            _generated(
                LoopShape(
                    name=f"tomcatv.mesh{i}",
                    seed=base + i,
                    n_ops=n_ops,
                    mem_fraction=0.32,
                    fp_fraction=0.85,
                    fanin=1.9,
                    addr_fraction=0.1,
                    recurrences=(RecurrenceSpec(3, 1),) if i % 2 else (),
                    carried_edge_prob=0.06,
                ),
                trip=96,
                runs=320,
            )
        )
    p.add(
        _generated(
            LoopShape(
                name="tomcatv.residual",
                seed=base + 10,
                n_ops=46,
                mem_fraction=0.34,
                fp_fraction=0.9,
                fanin=1.85,
                carried_edge_prob=0.08,
                recurrences=(RecurrenceSpec(4, 2),),
            ),
            trip=96,
            runs=160,
        )
    )
    p.add(_loop(_rename(stencil5(), "tomcatv.smooth"), trip=96, runs=240))
    return p


@register_workload(
    "swim",
    tags=("specfp",),
    kind="program",
    description="Shallow-water stencils: parallel, memory-rich, long trip counts.",
)
def build_swim() -> Program:
    p = Program("swim")
    base = 7200
    for i, n_ops in enumerate((26, 30, 34)):
        p.add(
            _generated(
                LoopShape(
                    name=f"swim.calc{i + 1}",
                    seed=base + i,
                    n_ops=n_ops,
                    mem_fraction=0.45,
                    store_fraction=0.35,
                    fp_fraction=0.9,
                    fanin=1.8,
                ),
                trip=512,
                runs=90,
            )
        )
    p.add(_loop(_rename(stencil3(), "swim.shalow"), trip=512, runs=120))
    p.add(_loop(_rename(daxpy(), "swim.update"), trip=512, runs=200))
    return p


@register_workload(
    "su2cor",
    tags=("specfp",),
    kind="program",
    description="Quantum field Monte Carlo: medium bodies, some reductions.",
)
def build_su2cor() -> Program:
    p = Program("su2cor")
    base = 7300
    for i, (n_ops, rec) in enumerate(
        ((22, ()), (31, (RecurrenceSpec(2, 1),)), (27, ()), (36, (RecurrenceSpec(3, 1),)))
    ):
        p.add(
            _generated(
                LoopShape(
                    name=f"su2cor.gauge{i}",
                    seed=base + i,
                    n_ops=n_ops,
                    mem_fraction=0.38,
                    fp_fraction=0.82,
                    recurrences=rec,
                    carried_edge_prob=0.05,
                ),
                trip=128,
                runs=150,
            )
        )
    p.add(_loop(_rename(complex_multiply(), "su2cor.su2mul"), trip=256, runs=180))
    return p


@register_workload(
    "hydro2d",
    tags=("specfp",),
    kind="program",
    description="Hydrodynamics: many small/medium stencil loops, occasional recurrences.",
)
def build_hydro2d() -> Program:
    p = Program("hydro2d")
    base = 7400
    for i in range(6):
        rec = (RecurrenceSpec(2, 1),) if i in (2, 4) else ()
        p.add(
            _generated(
                LoopShape(
                    name=f"hydro2d.flux{i}",
                    seed=base + i,
                    n_ops=16 + 4 * i,
                    mem_fraction=0.4,
                    fp_fraction=0.85,
                    recurrences=rec,
                    carried_edge_prob=0.04,
                ),
                trip=160,
                runs=140,
            )
        )
    p.add(_loop(_rename(hydro_fragment(), "hydro2d.frag"), trip=400, runs=220))
    return p


@register_workload(
    "mgrid",
    tags=("specfp",),
    kind="program",
    description="Multigrid 27-point stencils: big fan-in, load-dominated.",
)
def build_mgrid() -> Program:
    p = Program("mgrid")
    base = 7500
    for i, n_ops in enumerate((48, 56, 40)):
        p.add(
            _generated(
                LoopShape(
                    name=f"mgrid.resid{i}",
                    seed=base + i,
                    n_ops=n_ops,
                    mem_fraction=0.5,
                    store_fraction=0.15,
                    fp_fraction=0.95,
                    fanin=2.0,
                    addr_fraction=0.05,
                ),
                trip=256,
                runs=110,
            )
        )
    p.add(_loop(_rename(stencil5(), "mgrid.interp"), trip=256, runs=130))
    return p


@register_workload(
    "applu",
    tags=("specfp",),
    kind="program",
    description="SSOR solver: wavefront recurrences (distance-1 chains).",
)
def build_applu() -> Program:
    p = Program("applu")
    base = 7600
    for i in range(4):
        p.add(
            _generated(
                LoopShape(
                    name=f"applu.ssor{i}",
                    seed=base + i,
                    n_ops=24 + 6 * i,
                    mem_fraction=0.35,
                    fp_fraction=0.85,
                    recurrences=(RecurrenceSpec(3, 1),),
                    carried_edge_prob=0.1,
                ),
                trip=64,
                runs=260,
            )
        )
    p.add(_loop(_rename(tridiag_solver_step(), "applu.blts"), trip=64, runs=300))
    p.add(
        _generated(
            LoopShape(
                name="applu.rhs",
                seed=base + 20,
                n_ops=42,
                mem_fraction=0.4,
                fp_fraction=0.88,
            ),
            trip=64,
            runs=200,
        )
    )
    return p


@register_workload(
    "turb3d",
    tags=("specfp",),
    kind="program",
    description="Turbulence FFT passes: butterflies, mixed int/fp.",
)
def build_turb3d() -> Program:
    p = Program("turb3d")
    base = 7700
    for i in range(5):
        p.add(
            _generated(
                LoopShape(
                    name=f"turb3d.fft{i}",
                    seed=base + i,
                    n_ops=20 + 5 * i,
                    mem_fraction=0.35,
                    fp_fraction=0.7,
                    fanin=1.85,
                    carried_edge_prob=0.03,
                ),
                trip=64,
                runs=320,
            )
        )
    p.add(_loop(_rename(complex_multiply(), "turb3d.twiddle"), trip=128, runs=260))
    return p


@register_workload(
    "apsi",
    tags=("specfp",),
    kind="program",
    description="Mesoscale weather: varied loops with divides.",
)
def build_apsi() -> Program:
    p = Program("apsi")
    base = 7800
    for i in range(6):
        rec = (RecurrenceSpec(2, 1),) if i == 3 else ()
        p.add(
            _generated(
                LoopShape(
                    name=f"apsi.phys{i}",
                    seed=base + i,
                    n_ops=14 + 5 * i,
                    mem_fraction=0.36,
                    fp_fraction=0.8,
                    long_latency_fraction=0.06 if i in (1, 4) else 0.0,
                    recurrences=rec,
                    carried_edge_prob=0.05,
                ),
                trip=100,
                runs=180,
            )
        )
    return p


@register_workload(
    "fpppp",
    tags=("specfp",),
    kind="program",
    description="Electron integrals: huge straight-line FP bodies, no recurrences.",
)
def build_fpppp() -> Program:
    # fpppp's signature is very large FP-dominated straight-line bodies.
    # Bodies are kept chain-heavy (low fan-in, frequent stores) so the live
    # set per iteration fits a 16-register cluster after unrolling by 4 —
    # the paper's own fpppp loops schedule on that machine, so their live
    # sets were of this order too.
    p = Program("fpppp")
    base = 7900
    for i, n_ops in enumerate((64, 72)):
        p.add(
            _generated(
                LoopShape(
                    name=f"fpppp.twoel{i}",
                    seed=base + i,
                    n_ops=n_ops,
                    mem_fraction=0.3,
                    store_fraction=0.45,
                    fp_fraction=0.95,
                    fanin=1.5,
                ),
                trip=48,
                runs=160,
            )
        )
    p.add(
        _generated(
            LoopShape(
                name="fpppp.fmtgen",
                seed=base + 5,
                n_ops=48,
                mem_fraction=0.3,
                store_fraction=0.4,
                fp_fraction=0.9,
                fanin=1.55,
                long_latency_fraction=0.04,
            ),
            trip=48,
            runs=120,
        )
    )
    return p


@register_workload(
    "wave5",
    tags=("specfp",),
    kind="program",
    description="Plasma PIC: gather/scatter with integer address work.",
)
def build_wave5() -> Program:
    p = Program("wave5")
    base = 8000
    for i in range(5):
        p.add(
            _generated(
                LoopShape(
                    name=f"wave5.field{i}",
                    seed=base + i,
                    n_ops=18 + 6 * i,
                    mem_fraction=0.45,
                    store_fraction=0.35,
                    fp_fraction=0.65,
                    addr_fraction=0.35,
                    carried_edge_prob=0.04,
                ),
                trip=200,
                runs=150,
            )
        )
    p.add(
        _generated(
            LoopShape(
                name="wave5.parmvr",
                seed=base + 10,
                n_ops=34,
                mem_fraction=0.4,
                fp_fraction=0.75,
                addr_fraction=0.3,
                recurrences=(RecurrenceSpec(2, 1),),
            ),
            trip=200,
            runs=120,
        )
    )
    return p


def build_program(name: str) -> Program:
    """One synthetic SPECfp95 program by name.

    A shim over the workload registry (the builders register with
    ``kind="program"`` and the ``"specfp"`` tag); the historical error
    message is preserved, now as a :class:`WorkloadError` (still a
    ``KeyError``) with a did-you-mean suggestion.
    """
    try:
        _, factory = resolve_workload(name, kind="program")
    except WorkloadError as exc:
        raise WorkloadError(
            f"unknown program {name!r}; choose from {PROGRAM_NAMES}",
            suggestion=exc.suggestion,
        ) from None
    return factory()


def specfp95_suite() -> list[Program]:
    """All ten programs, in the paper's figure order."""
    return [build_program(name) for name in PROGRAM_NAMES]
