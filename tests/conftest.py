"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.arch.configs import (
    four_cluster_config,
    two_cluster_config,
    unified_config,
)
from repro.workloads.kernels import ALL_KERNELS


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the runner's default result cache at a per-test tmp dir.

    CLI commands cache by default; tests must never read from or write
    to the developer's real ``~/.cache/repro-vliw``.
    """
    monkeypatch.setenv("REPRO_VLIW_CACHE", str(tmp_path / "repro-cache"))


@pytest.fixture
def unified():
    return unified_config()


@pytest.fixture
def two_cluster():
    return two_cluster_config(n_buses=1, bus_latency=1)


@pytest.fixture
def four_cluster():
    return four_cluster_config(n_buses=1, bus_latency=1)


@pytest.fixture(params=sorted(ALL_KERNELS))
def kernel_graph(request):
    """Every hand-written kernel, one at a time."""
    return ALL_KERNELS[request.param]()
