"""Fault-injection harness for the distributed sweep fabric.

:class:`ChaosWorker` is a :class:`~repro.fabric.worker.FabricWorker`
that misbehaves on purpose, one failure mode per knob:

* ``fail_after=N`` (inherited) — die mid-shard after executing N points,
  leaving the lease to expire;
* ``stall_before_post_s=S`` — execute the shard, then sit on the results
  past the lease deadline before posting (the classic zombie straggler:
  the post must bounce with 410 and the re-issued copy must win);
* ``double_post=True`` — post every shard's results twice (the second
  post must bounce with 409 and change nothing);
* ``corrupt=fn`` — post ``fn(results)`` instead of the honest payload
  (the coordinator must reject the whole post with 400 and commit
  nothing); ``corrupt_recover=True`` follows up with the honest post, so
  the sweep still completes through this worker.

Every injected failure and every server rejection is counted in
:attr:`ChaosWorker.chaos`, so property tests can assert both sides: the
fault actually happened, *and* the coordinator converged to the
complete, byte-identical result set anyway.

:func:`spawn` runs workers on daemon threads with captured outcomes;
:func:`drain` finishes a sweep through the coordinator's direct API
(no HTTP) — the reliable mop-up worker that makes convergence
assertions deterministic.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.protocol import PROTOCOL_VERSION, FabricGone
from repro.fabric.worker import FabricWorker, WorkerStats
from repro.runner.engine import _run_batch
from repro.service.client import ClientError


@dataclass
class ChaosStats:
    """What a :class:`ChaosWorker` injected and what bounced back."""

    stalls: int = 0
    double_posts: int = 0
    corrupt_posts: int = 0
    #: HTTP statuses of rejected chaos posts, in order (409, 410, 400...).
    rejections: list[int] = field(default_factory=list)


class ChaosWorker(FabricWorker):
    """A fabric worker with configurable fault injection (see module doc)."""

    def __init__(
        self,
        coordinator,
        *,
        stall_before_post_s: float | None = None,
        double_post: bool = False,
        corrupt: Callable[[list[dict[str, Any]]], list[dict[str, Any]]]
        | None = None,
        corrupt_recover: bool = False,
        **kwargs: Any,
    ):
        super().__init__(coordinator, **kwargs)
        self.stall_before_post_s = stall_before_post_s
        self.double_post = double_post
        self.corrupt = corrupt
        self.corrupt_recover = corrupt_recover
        self.chaos = ChaosStats()

    def _post(self, doc: dict[str, Any], results: list[dict[str, Any]]) -> None:
        if self.stall_before_post_s is not None:
            self.chaos.stalls += 1
            time.sleep(self.stall_before_post_s)
            # Post raw so the expected rejection status is recorded in
            # :attr:`chaos` (the base class would swallow the 410).
            self._raw_post(doc, results)
            return
        if self.corrupt is not None:
            self.chaos.corrupt_posts += 1
            if not self._raw_post(doc, self.corrupt(list(results))):
                # The corrupt payload got through?  Then the harness is
                # not corrupting hard enough — fail loudly in the test.
                raise AssertionError("corrupt post was accepted")
            if not self.corrupt_recover:
                return
        super()._post(doc, results)
        if self.double_post:
            self.chaos.double_posts += 1
            self._raw_post(doc, results)

    def _raw_post(
        self, doc: dict[str, Any], results: list[dict[str, Any]]
    ) -> int | None:
        """Post without the base class's error handling; returns the
        rejection status (recorded), or ``None`` if accepted.

        Mirrors the base class's stats accounting so a ChaosWorker's
        :class:`~repro.fabric.worker.WorkerStats` stay meaningful.
        """
        try:
            reply = self.client.results(
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": self.worker_id,
                    "lease": doc["lease"],
                    "code_version": self.code_version,
                    "results": results,
                }
            )
        except ClientError as exc:
            self.chaos.rejections.append(exc.status)
            if exc.status in (409, 410):
                self.stats.rejected_posts += 1
            return exc.status
        self.stats.posted += int(reply.get("accepted", 0))
        self.stats.duplicates += int(reply.get("duplicates", 0))
        return None


@dataclass
class Outcome:
    """The result box :func:`spawn` fills when a worker thread finishes."""

    worker: FabricWorker
    thread: threading.Thread
    stats: WorkerStats | None = None
    error: BaseException | None = None

    def join(self, timeout: float = 30.0) -> "Outcome":
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "worker thread did not finish"
        return self


def spawn(worker: FabricWorker) -> Outcome:
    """Run ``worker.run()`` on a daemon thread, capturing stats or the
    exception (an injected :class:`WorkerDied` is an *expected* outcome,
    not a test error)."""
    outcome = Outcome(worker=worker, thread=None)  # type: ignore[arg-type]

    def _run() -> None:
        try:
            outcome.stats = worker.run()
        except BaseException as exc:  # noqa: BLE001 - captured for asserts
            outcome.error = exc

    outcome.thread = threading.Thread(target=_run, daemon=True)
    outcome.thread.start()
    return outcome


def drain(
    coordinator: FabricCoordinator,
    *,
    worker_id: str = "drain",
    deadline_s: float = 30.0,
) -> int:
    """Complete every claimable shard through the direct (no-HTTP) API.

    Keeps claiming and honestly executing until the coordinator has
    nothing to offer and no sweep is waiting; returns the number of
    points executed.  Used as the mop-up worker after chaos so tests
    always converge.
    """
    executed = 0
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        doc = coordinator.claim(
            {
                "protocol": PROTOCOL_VERSION,
                "worker": worker_id,
                "code_version": coordinator.code_version,
            }
        )
        if doc["lease"] is None:
            if coordinator.stats()["sweeps_active"] == 0:
                return executed
            time.sleep(0.01)
            continue
        results = []
        for item in doc["shard"]:
            (_key, payload, meta) = _run_batch(
                [item], None, None, doc.get("trace")
            )[0]
            executed += 1
            results.append(
                {"point": item["point"], "result": payload, "meta": meta}
            )
        try:
            coordinator.submit_results(
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": worker_id,
                    "lease": doc["lease"],
                    "code_version": coordinator.code_version,
                    "results": results,
                }
            )
        except FabricGone:
            continue  # lost the race against a re-issued copy; fine
    raise AssertionError(f"drain did not converge within {deadline_s}s")
