"""Unit tests for the machine model (resources, configs, ISA, timing)."""

import pytest

from repro.arch.cluster import MachineConfig
from repro.arch.configs import (
    clustered_config,
    four_cluster_config,
    paper_configs,
    table1_rows,
    two_cluster_config,
    unified_config,
)
from repro.arch.isa import empty_instruction, slots_per_instruction
from repro.arch.resources import BusSpec, FuSet
from repro.arch.timing import (
    bypass_delay_ps,
    clock_speedup,
    cycle_time_breakdown,
    cycle_time_ps,
    register_file_delay_ps,
    register_file_ports,
    table2_rows,
)
from repro.errors import ConfigError
from repro.ir.operation import FuClass


class TestFuSet:
    def test_count_by_class(self):
        fus = FuSet(2, 3, 4)
        assert fus.count(FuClass.INT) == 2
        assert fus.count(FuClass.FP) == 3
        assert fus.count(FuClass.MEM) == 4
        assert fus.total == 9

    def test_scaled(self):
        assert FuSet(1, 1, 1).scaled(4) == FuSet(4, 4, 4)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigError):
            FuSet(0, 0, 0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            FuSet(-1, 1, 1)


class TestBusSpec:
    def test_zero_buses_allowed(self):
        assert BusSpec(0, 1).count == 0

    def test_bad_latency_rejected(self):
        with pytest.raises(ConfigError):
            BusSpec(1, 0)

    def test_str(self):
        assert "2" in str(BusSpec(2, 4))
        assert "no buses" in str(BusSpec(0, 1))


class TestMachineConfig:
    def test_paper_configs_share_total_resources(self):
        cfgs = paper_configs()
        widths = {c.issue_width for c in cfgs.values()}
        regs = {c.total_registers for c in cfgs.values()}
        assert widths == {12}
        assert regs == {64}

    def test_clustered_without_bus_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig("bad", 2, FuSet(1, 1, 1), 16, BusSpec(0, 1))

    def test_unified_equivalent_pools_resources(self):
        four = four_cluster_config()
        uni = four.unified_equivalent()
        assert uni.n_clusters == 1
        assert uni.issue_width == four.issue_width
        assert uni.total_registers == four.total_registers

    def test_with_buses(self):
        cfg = two_cluster_config(1, 1).with_buses(2, 4)
        assert cfg.buses.count == 2
        assert cfg.buses.latency == 4
        assert cfg.n_clusters == 2

    def test_cluster_range_check(self):
        cfg = two_cluster_config()
        with pytest.raises(ConfigError):
            cfg.fu_count(5, FuClass.INT)

    def test_clustered_config_dispatch(self):
        assert clustered_config(1).n_clusters == 1
        assert clustered_config(2).n_clusters == 2
        assert clustered_config(4).n_clusters == 4
        with pytest.raises(ValueError):
            clustered_config(3)

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 3
        assert {r["config"] for r in rows} == {"unified", "2-cluster", "4-cluster"}
        for row in rows:
            assert row["total_issue_width"] == 12
            assert row["total_registers"] == 64


class TestIsa:
    def test_empty_instruction_slot_count(self):
        for cfg in paper_configs().values():
            instr = empty_instruction(cfg, 0)
            assert instr.total_slots == cfg.issue_width
            assert instr.useful_ops == 0
            assert instr.nop_ops == cfg.issue_width

    def test_slots_per_instruction(self):
        assert slots_per_instruction(unified_config()) == 12
        assert slots_per_instruction(four_cluster_config()) == 12

    def test_render_contains_cluster_markers(self):
        instr = empty_instruction(two_cluster_config(), 3)
        text = instr.render()
        assert "c0[" in text and "c1[" in text


class TestTiming:
    def test_ports_formula(self):
        # unified: 3 ports x 12 FUs, no bus ports
        assert register_file_ports(unified_config()) == 36
        # 4-cluster, 1 bus: 3x3 + 2
        assert register_file_ports(four_cluster_config(1, 1)) == 11
        # 2 buses add two more ports
        assert register_file_ports(four_cluster_config(2, 1)) == 13

    def test_calibrated_cycle_times(self):
        assert cycle_time_ps(unified_config()) == pytest.approx(1520, abs=2)
        assert cycle_time_ps(two_cluster_config(1, 1)) == pytest.approx(760, abs=2)
        assert cycle_time_ps(four_cluster_config(1, 1)) == pytest.approx(420, abs=2)

    def test_clock_ratio_supports_headline(self):
        # The 3.6x headline needs ~3.6x clock at IPC parity.
        ratio = clock_speedup(four_cluster_config(1, 1), unified_config())
        assert 3.4 <= ratio <= 3.8

    def test_monotonicity_in_cluster_count(self):
        u = cycle_time_ps(unified_config())
        two = cycle_time_ps(two_cluster_config(1, 1))
        four = cycle_time_ps(four_cluster_config(1, 1))
        assert u > two > four

    def test_more_buses_slow_the_clock(self):
        one = cycle_time_ps(four_cluster_config(1, 1))
        two = cycle_time_ps(four_cluster_config(2, 1))
        assert two > one

    def test_bypass_quadratic(self):
        assert bypass_delay_ps(unified_config()) == pytest.approx(
            16 * bypass_delay_ps(four_cluster_config())
        )

    def test_breakdown_critical_path(self):
        bd = cycle_time_breakdown(unified_config())
        assert bd.cycle_ps == max(bd.bypass_ps, bd.regfile_ps)
        assert bd.critical_path in ("bypass", "regfile")

    def test_table2_rows_structure(self):
        rows = table2_rows(list(paper_configs().values()))
        assert len(rows) == 3
        for row in rows:
            assert row["cycle_ps"] >= row["bypass_ps"] or row["cycle_ps"] >= row["regfile_ps"]

    def test_regfile_grows_with_registers(self):
        small = four_cluster_config()
        big = MachineConfig("big", 4, FuSet(1, 1, 1), 64, BusSpec(1, 1))
        assert register_file_delay_ps(big) > register_file_delay_ps(small)
