"""Tests for the continuous benchmark harness (repro.bench + CLI).

The real registry is expensive, so most tests inject a tiny fake
registry; one smoke test runs a single real benchmark end-to-end.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import main


class TestBenchFiles:
    def test_next_and_latest(self, tmp_path):
        assert bench.latest_bench_path(tmp_path) is None
        assert bench.next_bench_path(tmp_path).name == "BENCH_1.json"
        (tmp_path / "BENCH_1.json").write_text("{}")
        (tmp_path / "BENCH_3.json").write_text("{}")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not BENCH_<n>
        assert bench.latest_bench_path(tmp_path).name == "BENCH_3.json"
        assert bench.next_bench_path(tmp_path).name == "BENCH_4.json"

    def test_load_rejects_non_bench(self, tmp_path):
        path = tmp_path / "BENCH_1.json"
        path.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError):
            bench.load_bench(path)


class TestRegressionGate:
    def report(self, best_s: float, calibration: float = 0.001) -> bench.BenchReport:
        return bench.BenchReport(
            results=[bench.BenchResult("x", "d", [best_s], 1)],
            quick=True,
            repeats=1,
            calibration_s=calibration,
        )

    def baseline(self, best_s: float, calibration: float = 0.001) -> dict:
        return {
            "calibration_s": calibration,
            "results": {"x": {"best_s": best_s}},
        }

    def test_within_threshold_passes(self):
        regs = bench.find_regressions(self.report(0.115), self.baseline(0.100))
        assert regs == []

    def test_regression_detected(self):
        regs = bench.find_regressions(self.report(0.130), self.baseline(0.100))
        assert len(regs) == 1
        assert regs[0].name == "x"
        assert regs[0].slowdown == pytest.approx(1.3)

    def test_calibration_rescales_baseline(self):
        """A 2x-slower host doubles the allowance — no false regression."""
        report = self.report(0.180, calibration=0.002)  # host is 2x slower
        baseline = self.baseline(0.100, calibration=0.001)
        assert bench.find_regressions(report, baseline) == []
        # but a real 2.5x slowdown still trips even on the slower host
        report = self.report(0.250, calibration=0.002)
        assert len(bench.find_regressions(report, baseline)) == 1

    def test_unknown_benchmarks_skipped(self):
        report = self.report(0.5)
        baseline = {"calibration_s": 0.001, "results": {"other": {"best_s": 0.1}}}
        assert bench.find_regressions(report, baseline) == []


class TestBenchEndToEnd:
    @pytest.mark.slow
    def test_single_real_benchmark_records_and_compares(self, tmp_path, capsys):
        main(
            [
                "bench", "--only", "sim.execute", "--repeat", "1", "--record",
                "--dir", str(tmp_path), "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert "sim.execute" in out
        path = tmp_path / "BENCH_1.json"
        assert path.is_file()
        doc = bench.load_bench(path)
        assert "sim.execute" in doc["results"]
        assert doc["results"]["sim.execute"]["best_s"] > 0
        assert doc["calibration_s"] > 0

        # comparing against itself must pass the gate (and print speedups)
        main(
            [
                "bench", "--only", "sim.execute", "--repeat", "1",
                "--compare", "--dir", str(tmp_path), "--quiet",
            ]
        )
        out = capsys.readouterr().out
        assert "no regression" in out or "REGRESSION" in out

    def test_compare_without_baseline_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--compare", "--dir", str(tmp_path), "--quiet"])
