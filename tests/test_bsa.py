"""Integration tests for the BSA single-pass cluster scheduler."""

import pytest

from repro.arch.cluster import MachineConfig
from repro.arch.configs import four_cluster_config, two_cluster_config
from repro.arch.resources import BusSpec, FuSet
from repro.core.bsa import BsaScheduler, cluster_out_edges, out_edges_if_joined
from repro.core.mii import mii
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import ConfigError
from repro.ir.ddg import DependenceGraph
from repro.ir.unroll import unroll_graph
from repro.workloads.kernels import (
    ALL_KERNELS,
    daxpy,
    dot_product,
    figure7_graph,
    ladder_graph,
    stencil3,
)


class TestProfitMeasure:
    def test_out_edges_empty_cluster(self):
        g = daxpy()
        assert cluster_out_edges(g, {}, 0) == 0

    def test_out_edges_counts_unscheduled_targets(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        c = g.add_operation("fadd")
        g.add_dependence(a, b)
        g.add_dependence(a, c)
        # a alone in cluster 0: both consumers outside -> 2 out edges
        assert cluster_out_edges(g, {a: 0}, 0) == 2
        # b joins cluster 0 -> 1 out edge (to c)
        assert out_edges_if_joined(g, {a: 0}, 0, b) == 1

    def test_profit_prefers_neighbor_cluster(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        before0 = cluster_out_edges(g, {a: 0}, 0)
        after0 = out_edges_if_joined(g, {a: 0}, 0, b)
        profit0 = before0 - after0
        before1 = cluster_out_edges(g, {a: 0}, 1)
        after1 = out_edges_if_joined(g, {a: 0}, 1, b)
        profit1 = before1 - after1
        assert profit0 > profit1

    def test_self_loop_not_an_out_edge(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        g.add_dependence(a, a, distance=1)
        assert cluster_out_edges(g, {a: 0}, 0) == 0


class TestBsaBasics:
    def test_all_kernels_verify_2c(self, kernel_graph, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(kernel_graph)
        verify_schedule(sched)

    def test_all_kernels_verify_4c(self, kernel_graph, four_cluster):
        sched = BsaScheduler(four_cluster).schedule(kernel_graph)
        verify_schedule(sched)

    def test_all_kernels_verify_slow_bus(self, kernel_graph):
        cfg = four_cluster_config(n_buses=1, bus_latency=4)
        sched = BsaScheduler(cfg).schedule(kernel_graph)
        verify_schedule(sched)

    def test_single_cluster_bsa_matches_unified(self, kernel_graph, unified):
        """BSA on a 1-cluster machine degenerates to plain SMS."""
        bsa = BsaScheduler(unified).schedule(kernel_graph)
        sms = UnifiedScheduler(unified).schedule(kernel_graph)
        assert bsa.ii == sms.ii

    def test_invalid_ordering_rejected(self, two_cluster):
        with pytest.raises(ConfigError):
            BsaScheduler(two_cluster, order="banana")

    def test_topological_ordering_works(self, two_cluster):
        sched = BsaScheduler(two_cluster, order="topo").schedule(stencil3())
        verify_schedule(sched)


class TestClusterSpreading:
    def test_disconnected_subgraphs_spread(self, two_cluster):
        """Two independent copies of daxpy land on different clusters
        (the default-cluster advance of Figure 5 step (2))."""
        from repro.ir.ddg import merge_graphs

        g = merge_graphs("two-daxpy", [daxpy(), daxpy()])
        sched = BsaScheduler(two_cluster).schedule(g)
        verify_schedule(sched)
        clusters_used = {op.cluster for op in sched.ops.values()}
        assert clusters_used == {0, 1}
        assert sched.communication_count == 0

    def test_unrolled_iterations_spread(self, four_cluster):
        """Unrolled parallel iterations occupy all four clusters."""
        g = unroll_graph(daxpy(), 4)
        sched = BsaScheduler(four_cluster).schedule(g)
        verify_schedule(sched)
        clusters_used = {op.cluster for op in sched.ops.values()}
        assert len(clusters_used) == 4
        assert sched.communication_count == 0

    def test_connected_small_graph_stays_together(self, two_cluster):
        """A connected chain that fits one cluster at MII: no comms.

        load -> fmul -> fadd -> store needs 2 mem + 2 fp slots; one
        cluster provides exactly that at II = 1.
        """
        g = DependenceGraph()
        ld = g.add_operation("load")
        m = g.add_operation("fmul")
        a = g.add_operation("fadd")
        st = g.add_operation("store")
        g.add_dependence(ld, m)
        g.add_dependence(m, a)
        g.add_dependence(a, st)
        sched = BsaScheduler(two_cluster).schedule(g)
        verify_schedule(sched)
        assert sched.communication_count == 0
        assert len({op.cluster for op in sched.ops.values()}) == 1


class TestCommunications:
    def test_figure7_paper_numbers(self, two_cluster):
        """The paper's walk-through: MII = 2 but the non-unrolled loop is
        bus limited and settles at II = 3 (the paper's own number)."""
        g = figure7_graph()
        sched = BsaScheduler(two_cluster).schedule(g)
        verify_schedule(sched)
        assert sched.mii == 2
        assert sched.ii == 3
        assert sched.was_bus_limited

    def test_figure7_unrolled_beats_unified_rate(self, two_cluster):
        """Unrolled by 2: II = 3 for two source iterations (1.5
        cycles/iteration) — the MII-rounding gain of Lavery & Hwu that
        Section 5.2 cites."""
        g = unroll_graph(figure7_graph(), 2)
        sched = BsaScheduler(two_cluster).schedule(g)
        verify_schedule(sched)
        assert sched.ii / 2 < 2  # beats the unified machine's MII of 2

    def test_broadcast_reuses_transfer(self):
        """Two remote consumers of the same value share one transfer."""
        g = DependenceGraph()
        producers = [g.add_operation("fadd") for _ in range(6)]
        hub = g.add_operation("fadd", "hub")
        consumers = [g.add_operation("fadd") for _ in range(6)]
        for p in producers:
            g.add_dependence(p, hub)
        for c in consumers:
            g.add_dependence(hub, c)
        cfg = two_cluster_config(n_buses=1, bus_latency=1)
        sched = BsaScheduler(cfg).schedule(g)
        verify_schedule(sched)
        # hub's value crosses at most once per destination cluster; with
        # 2 clusters that is at most 1 transfer of hub.
        hub_comms = [c for c in sched.comms if c.producer == hub]
        assert len(hub_comms) <= 1

    def test_ladder_bus_limited_without_unroll(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        sched = BsaScheduler(cfg).schedule(ladder_graph())
        verify_schedule(sched)
        assert sched.ii > sched.mii
        assert sched.was_bus_limited

    def test_ladder_unrolled_reaches_parity(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        g2 = unroll_graph(ladder_graph(), 2)
        sched = BsaScheduler(cfg).schedule(g2)
        verify_schedule(sched)
        assert sched.ii == 6  # 3 cycles per source iteration = unified MII
        assert sched.communication_count == 0

    def test_more_buses_never_hurt(self):
        g = ladder_graph()
        one = BsaScheduler(two_cluster_config(1, 2)).schedule(g)
        two = BsaScheduler(two_cluster_config(2, 2)).schedule(g)
        assert two.ii <= one.ii


class TestRegisterPressure:
    def test_pressure_respected_on_tiny_files(self):
        tiny = MachineConfig(
            "tiny-regs", 2, FuSet(2, 2, 2), 6, BusSpec(1, 1)
        )
        sched = BsaScheduler(tiny).schedule(stencil3())
        verify_schedule(sched)  # verifier re-checks MaxLive <= 6

    def test_pressure_bound_error_is_loud(self):
        """A graph whose live set exceeds the file at *every* II fails
        loudly (early abort) instead of grinding the whole II budget.

        Each producer feeds a next-iteration consumer, so its value spans
        more than a full II and costs two registers at any II; three such
        producers can never fit a 2-register file.
        """
        from repro.errors import SchedulingError

        starved = MachineConfig("starved", 1, FuSet(4, 4, 4), 1, BusSpec(0, 1))
        g = DependenceGraph()
        p1 = g.add_operation("fadd", "p1")
        p2 = g.add_operation("fadd", "p2")
        c = g.add_operation("fadd", "c")
        # c reads both values in the same cycle: two registers alive at
        # once, at any II — a 1-register file can never hold them.
        g.add_dependence(p1, c)
        g.add_dependence(p2, c)
        with pytest.raises(SchedulingError):
            BsaScheduler(starved).schedule(g)
