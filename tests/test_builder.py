"""Unit tests for the LoopBuilder DSL."""

import pytest

from repro.errors import GraphError
from repro.ir.builder import LoopBuilder
from repro.ir.ddg import DepKind
from repro.ir.operation import FuClass


class TestBuilderBasics:
    def test_daxpy_structure(self):
        b = LoopBuilder("daxpy")
        x = b.load("x")
        y = b.load("y")
        ax = b.fmul(x, b.live_in("a"))
        s = b.fadd(ax, y)
        b.store(s)
        g = b.build()
        assert len(g) == 5
        # live-in produces no node and no edge
        assert len(g.edges) == 4

    def test_live_in_is_not_a_node(self):
        b = LoopBuilder()
        a = b.live_in("a")
        assert a.is_live_in
        v = b.fadd(a, a)
        g = b.build()
        assert len(g) == 1
        assert g.predecessors(v.node_id) == []

    def test_carried_operand_via_dict(self):
        b = LoopBuilder()
        x = b.load("x")
        y = b.fadd(x, b.live_in("c"), tag="y")
        z = b.op("fmul", y, x, carried={y: 1})
        g = b.build()
        carried = [d for d in g.edges if d.distance == 1]
        assert len(carried) == 1
        assert carried[0].src == y.node_id

    def test_carried_use_backward(self):
        b = LoopBuilder()
        consumer = b.fadd(b.live_in("p"), b.live_in("q"))
        producer = b.fmul(consumer, b.live_in("r"))
        b.carried_use(producer, consumer, distance=1)
        g = b.build()
        back = [d for d in g.edges if d.src == producer.node_id]
        assert back and back[0].distance == 1

    def test_mem_order_edge(self):
        b = LoopBuilder()
        s = b.store(b.fadd(b.live_in("a"), b.live_in("b")))
        ld = b.load("x")
        b.mem_order(s, ld)
        g = b.build()
        mem_edges = [d for d in g.edges if d.kind is DepKind.MEM]
        assert len(mem_edges) == 1

    def test_load_with_address(self):
        b = LoopBuilder()
        addr = b.iaddr(b.live_in("i"))
        ld = b.load("a[i]", addr=addr)
        g = b.build()
        assert any(
            d.src == addr.node_id and d.dst == ld.node_id for d in g.edges
        )
        assert g.operation(addr.node_id).fu_class is FuClass.INT


class TestBuilderErrors:
    def test_build_twice_rejected(self):
        b = LoopBuilder()
        b.fadd(b.live_in("a"), b.live_in("b"))
        b.build()
        with pytest.raises(GraphError, match="already built"):
            b.build()

    def test_op_after_build_rejected(self):
        b = LoopBuilder()
        b.fadd(b.live_in("a"), b.live_in("b"))
        b.build()
        with pytest.raises(GraphError):
            b.load("x")

    def test_carried_use_with_live_in_rejected(self):
        b = LoopBuilder()
        v = b.fadd(b.live_in("a"), b.live_in("b"))
        with pytest.raises(GraphError):
            b.carried_use(b.live_in("x"), v, distance=1)

    def test_zero_distance_cycle_caught_at_build(self):
        b = LoopBuilder()
        u = b.fadd(b.live_in("a"), b.live_in("b"))
        v = b.fmul(u, b.live_in("c"))
        b.carried_use(v, u, distance=0)
        with pytest.raises(GraphError):
            b.build()

    def test_build_without_validate_skips_check(self):
        b = LoopBuilder()
        u = b.fadd(b.live_in("a"), b.live_in("b"))
        v = b.fmul(u, b.live_in("c"))
        b.carried_use(v, u, distance=0)
        g = b.build(validate=False)  # caller's own risk
        assert len(g) == 2
