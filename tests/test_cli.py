"""Tests for the repro-vliw command-line interface."""

import pytest

from repro.cli import main


class TestCliTables:
    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "unified" in out
        assert "4-cluster" in out

    def test_table2(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "cycle" in out.lower()
        assert "1520" in out  # unified cycle time

    def test_table2_buses_flag(self, capsys):
        main(["table2", "--buses", "2"])
        out = capsys.readouterr().out
        assert "cycle" in out.lower()


class TestCliFigures:
    def test_fig7(self, capsys):
        main(["fig7"])
        out = capsys.readouterr().out
        assert "no unrolling" in out
        assert "unrolled x2" in out
        assert "ladder" in out

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        main(["fig9", "--quick"])
        out = capsys.readouterr().out
        assert "speed-up vs unified" in out
        assert "best:" in out


class TestCliSimulate:
    def test_simulate_kernel(self, capsys):
        main(["simulate", "dot_product", "--niter", "100"])
        out = capsys.readouterr().out
        assert "SimReport" in out
        assert "cycles" in out
        assert "IPC" in out
        assert "bus 0 occupancy" in out
        assert "divergence" not in out  # perfect memory matches the model

    def test_simulate_accepts_canonical_name(self, capsys):
        main(["simulate", "dot", "--niter", "50", "--clusters", "1"])
        out = capsys.readouterr().out
        assert "'unified'" in out

    def test_simulate_with_misses(self, capsys):
        main(
            [
                "simulate", "daxpy", "--niter", "200", "--miss-rate", "0.2",
                "--miss-penalty", "8", "--seed", "1", "--unroll", "2",
                "--clusters", "2",
            ]
        )
        out = capsys.readouterr().out
        assert "stalled" in out
        assert "missed" in out

    def test_simulate_unknown_kernel_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "nonsense"])


class TestCliSchedule:
    def test_schedule_kernel(self, capsys):
        main(["schedule", "daxpy", "--clusters", "2"])
        out = capsys.readouterr().out
        assert "II=" in out
        assert "kernel" in out

    def test_schedule_unified(self, capsys):
        main(["schedule", "dot", "--clusters", "1"])
        out = capsys.readouterr().out
        assert "II=3" in out  # serial reduction: RecMII

    def test_unknown_kernel_exits(self):
        with pytest.raises(SystemExit):
            main(["schedule", "nonsense"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
