"""Tests for the repro-vliw command-line interface."""

import pytest

from repro.cli import main


class TestCliTables:
    def test_table1(self, capsys):
        main(["table1"])
        out = capsys.readouterr().out
        assert "unified" in out
        assert "4-cluster" in out

    def test_table2(self, capsys):
        main(["table2"])
        out = capsys.readouterr().out
        assert "cycle" in out.lower()
        assert "1520" in out  # unified cycle time

    def test_table2_buses_flag(self, capsys):
        main(["table2", "--buses", "2"])
        out = capsys.readouterr().out
        assert "cycle" in out.lower()


class TestCliFigures:
    def test_fig7(self, capsys):
        main(["fig7"])
        out = capsys.readouterr().out
        assert "no unrolling" in out
        assert "unrolled x2" in out
        assert "ladder" in out

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        main(["fig9", "--quick"])
        out = capsys.readouterr().out
        assert "speed-up vs unified" in out
        assert "best:" in out


class TestCliSimulate:
    def test_simulate_kernel(self, capsys):
        main(["simulate", "dot_product", "--niter", "100"])
        out = capsys.readouterr().out
        assert "SimReport" in out
        assert "cycles" in out
        assert "IPC" in out
        assert "bus 0 occupancy" in out
        assert "divergence" not in out  # perfect memory matches the model

    def test_simulate_accepts_canonical_name(self, capsys):
        main(["simulate", "dot", "--niter", "50", "--clusters", "1"])
        out = capsys.readouterr().out
        assert "'unified'" in out

    def test_simulate_with_misses(self, capsys):
        main(
            [
                "simulate", "daxpy", "--niter", "200", "--miss-rate", "0.2",
                "--miss-penalty", "8", "--seed", "1", "--unroll", "2",
                "--clusters", "2",
            ]
        )
        out = capsys.readouterr().out
        assert "stalled" in out
        assert "missed" in out

    def test_simulate_unknown_kernel_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "nonsense"])


class TestCliSchedule:
    def test_schedule_kernel(self, capsys):
        main(["schedule", "daxpy", "--clusters", "2"])
        out = capsys.readouterr().out
        assert "II=" in out
        assert "kernel" in out

    def test_schedule_unified(self, capsys):
        main(["schedule", "dot", "--clusters", "1"])
        out = capsys.readouterr().out
        assert "II=3" in out  # serial reduction: RecMII

    def test_schedule_exact_scheduler(self, capsys):
        main(["schedule", "daxpy", "--clusters", "2", "--scheduler", "exact"])
        out = capsys.readouterr().out
        assert "II=1" in out  # optimal: the heuristics need extra MaxLive
        assert "kernel" in out

    def test_schedule_exact_unified(self, capsys):
        main(["schedule", "dot", "--clusters", "1", "--scheduler", "exact"])
        out = capsys.readouterr().out
        assert "II=3" in out  # serial reduction: RecMII, same as SMS

    def test_list_includes_scheduler_table(self, capsys):
        main(["schedule", "--list"])
        out = capsys.readouterr().out
        assert "daxpy" in out  # kernel catalogue still listed
        assert "exact" in out
        assert "ExactScheduler" in out
        assert "bsa" in out

    def test_unknown_scheduler_is_a_usage_error(self, capsys):
        """A typo'd --scheduler exits with a one-line message, not a
        traceback (the registry KeyError must not escape)."""
        with pytest.raises(SystemExit) as err:
            main(["schedule", "daxpy", "--scheduler", "nope"])
        message = str(err.value)
        assert "unknown scheduler 'nope'" in message
        assert "exact" in message  # the known list names the oracle too

    def test_oversized_exact_kernel_exits_cleanly(self, capsys):
        """ExactTimeout surfaces as a clean CLI error, not a traceback."""
        from unittest import mock

        from repro.core.exact import ExactScheduler

        original = ExactScheduler.__init__

        def tiny(self, config, **kwargs):
            kwargs["max_nodes"] = 4
            original(self, config, **kwargs)

        with mock.patch.object(ExactScheduler, "__init__", tiny):
            with pytest.raises(SystemExit) as err:
                main(["schedule", "fir4", "--clusters", "2",
                      "--scheduler", "exact"])
        assert "exact-search limit" in str(err.value)

    def test_unknown_kernel_exits(self):
        with pytest.raises(SystemExit):
            main(["schedule", "nonsense"])

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestCliGap:
    def test_gap_quick_table(self, capsys, tmp_path):
        main(["gap", "--quick", "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Heuristic vs optimal" in out
        assert "figure7" in out
        assert "exact_ii" in out
        assert "point(s)" in out  # sweep stats footer

    def test_gap_markdown_and_json(self, capsys, tmp_path):
        import json

        main(["gap", "--quick", "--format", "markdown",
              "--cache-dir", str(tmp_path)])
        md = capsys.readouterr().out
        assert md.startswith("| kernel |")
        main(["gap", "--quick", "--format", "json",
              "--cache-dir", str(tmp_path)])
        rows = json.loads(capsys.readouterr().out)
        by_kernel = {
            (r["kernel"], r["config"]): r for r in rows
        }
        fig7 = by_kernel[("figure7", "2-cluster/b1/l1")]
        assert fig7["exact_ii"] == 2
        assert fig7["bsa_ii"] == 3
        assert fig7["ii_gap"] == 1

    def test_gap_report_out(self, capsys, tmp_path):
        report = tmp_path / "gap.json"
        main(["gap", "--quick", "--cache-dir", str(tmp_path / "cache"),
              "--report-out", str(report)])
        capsys.readouterr()
        assert report.exists()
        main(["report", str(report), "--by", "scheduler"])
        out = capsys.readouterr().out
        assert "exact" in out
