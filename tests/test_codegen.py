"""Unit tests for VLIW code generation and code-size accounting."""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.codegen.codesize import CodeSize, ZERO_SIZE, schedule_code_size
from repro.codegen.vliw import generate_kernel, render_schedule
from repro.core.bsa import BsaScheduler
from repro.core.unified import UnifiedScheduler
from repro.workloads.kernels import daxpy, figure7_graph, ladder_graph


class TestKernelGeneration:
    def test_kernel_has_ii_instructions(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        code = generate_kernel(sched)
        assert len(code.kernel) == sched.ii

    def test_all_ops_appear_once(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        code = generate_kernel(sched)
        useful = sum(instr.useful_ops for instr in code.kernel)
        assert useful == len(daxpy())

    def test_slot_totals(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        code = generate_kernel(sched)
        for instr in code.kernel:
            assert instr.total_slots == unified.issue_width
            assert instr.useful_ops + instr.nop_ops == instr.total_slots

    def test_clustered_kernel_with_bus_fields(self, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(figure7_graph())
        code = generate_kernel(sched)
        text = code.render()
        assert "II=" in text
        if sched.comms:
            assert "out[bus" in text

    def test_prologue_epilogue_sizes(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        code = generate_kernel(sched)
        expected = (sched.stage_count - 1) * sched.ii
        assert code.prologue_instructions == expected
        assert code.epilogue_instructions == expected
        assert code.total_instructions == (2 * sched.stage_count - 1) * sched.ii

    def test_render_runs_on_all_kernels(self, kernel_graph, four_cluster):
        sched = BsaScheduler(four_cluster).schedule(kernel_graph)
        text = render_schedule(sched)
        assert kernel_graph.name in text


class TestCodeSize:
    def test_arithmetic(self):
        a = CodeSize(10, 20)
        b = CodeSize(5, 5)
        total = a + b
        assert total.useful_ops == 15
        assert total.total_ops == 40

    def test_normalised(self):
        a = CodeSize(10, 10)
        base = CodeSize(20, 20)
        total_ratio, useful_ratio = a.normalised_to(base)
        assert total_ratio == pytest.approx(0.5)
        assert useful_ratio == pytest.approx(0.5)

    def test_zero_identity(self):
        a = CodeSize(3, 4)
        assert (ZERO_SIZE + a) == a

    def test_schedule_code_size_formula(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        size = schedule_code_size(sched)
        instructions = (2 * sched.stage_count - 1) * sched.ii
        assert size.total_ops == instructions * 12
        assert size.useful_ops == len(daxpy()) * sched.stage_count

    def test_unrolled_code_is_bigger(self):
        from repro.ir.unroll import unroll_graph

        cfg = two_cluster_config(1, 2)
        g = ladder_graph()
        base = schedule_code_size(BsaScheduler(cfg).schedule(g))
        unrolled = schedule_code_size(
            BsaScheduler(cfg).schedule(unroll_graph(g, 2))
        )
        assert unrolled.useful_ops > base.useful_ops

    def test_ii_inflation_adds_nops(self):
        """The ladder at 2c/1bus latency 2 runs at II 6 vs unified II 3:
        the clustered code carries more NOP padding per useful op."""
        g = ladder_graph()
        uni = schedule_code_size(UnifiedScheduler(unified_config()).schedule(g))
        clu = schedule_code_size(
            BsaScheduler(two_cluster_config(1, 2)).schedule(g)
        )
        nops_per_useful_uni = uni.nop_ops / uni.useful_ops
        nops_per_useful_clu = clu.nop_ops / clu.useful_ops
        assert nops_per_useful_clu > nops_per_useful_uni
