"""Tests for communication-plan dataclasses (repro.core.comm)."""

from repro.core.comm import AddReader, CommPlan, NewTransfer, empty_plan
from repro.core.schedule import Communication


class TestNewTransfer:
    def test_as_communication(self):
        t = NewTransfer(producer=3, src_cluster=0, bus=1, start_cycle=7, reader=2)
        c = t.as_communication()
        assert c.producer == 3
        assert c.src_cluster == 0
        assert c.bus == 1
        assert c.start_cycle == 7
        assert c.readers == {2}


class TestAddReader:
    def test_phantom_has_only_new_reader(self):
        existing = Communication(3, 0, 1, 7, frozenset({1}))
        a = AddReader(existing=existing, reader=2)
        phantom = a.as_phantom()
        assert phantom.readers == {2}  # pressure overlay counts only the add
        assert phantom.start_cycle == existing.start_cycle
        assert phantom.bus == existing.bus


class TestCommPlan:
    def test_empty(self):
        plan = empty_plan()
        assert plan.is_empty
        assert plan.pressure_comms() == []

    def test_pressure_comms_combines_both(self):
        t = NewTransfer(1, 0, 0, 4, 1)
        a = AddReader(Communication(2, 0, 0, 5, frozenset({1})), 0)
        plan = CommPlan(new_transfers=[t], added_readers=[a])
        assert not plan.is_empty
        overlay = plan.pressure_comms()
        assert len(overlay) == 2
        assert {c.producer for c in overlay} == {1, 2}
