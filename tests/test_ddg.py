"""Unit tests for the dependence graph."""

import pytest

from repro.errors import GraphError
from repro.ir.ddg import Dependence, DependenceGraph, DepKind, merge_graphs


def chain(n=3, opcode="iadd"):
    g = DependenceGraph("chain")
    ids = [g.add_operation(opcode) for _ in range(n)]
    for a, b in zip(ids, ids[1:]):
        g.add_dependence(a, b)
    return g, ids


class TestConstruction:
    def test_dense_ids(self):
        g, ids = chain(4)
        assert ids == [0, 1, 2, 3]
        assert g.node_ids == ids

    def test_flow_latency_defaults_to_producer(self):
        g = DependenceGraph()
        a = g.add_operation("fmul")  # latency 4
        b = g.add_operation("fadd")
        dep = g.add_dependence(a, b)
        assert dep.latency == 4

    def test_mem_edge_latency_defaults_to_one(self):
        g = DependenceGraph()
        a = g.add_operation("store")
        b = g.add_operation("load")
        dep = g.add_dependence(a, b, kind=DepKind.MEM)
        assert dep.latency == 1

    def test_unknown_node_rejected(self):
        g, _ = chain(2)
        with pytest.raises(GraphError, match="unknown node"):
            g.add_dependence(0, 99)

    def test_flow_from_store_rejected(self):
        g = DependenceGraph()
        s = g.add_operation("store")
        t = g.add_operation("iadd")
        with pytest.raises(GraphError, match="no register value"):
            g.add_dependence(s, t)

    def test_negative_distance_rejected(self):
        with pytest.raises(GraphError):
            Dependence(0, 1, latency=1, distance=-1)

    def test_parallel_edges_allowed(self):
        g, ids = chain(2)
        g.add_dependence(ids[0], ids[1], distance=1)
        assert len(g.edges) == 2


class TestQueries:
    def test_neighbors_are_bidirectional(self):
        g, ids = chain(3)
        assert g.neighbors(ids[1]) == {ids[0], ids[2]}

    def test_neighbors_exclude_self_loop(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        g.add_dependence(a, a, distance=1)
        assert g.neighbors(a) == set()

    def test_flow_consumers_excludes_non_flow(self):
        g = DependenceGraph()
        a = g.add_operation("store")
        b = g.add_operation("load")
        g.add_dependence(a, b, kind=DepKind.MEM)
        assert g.flow_consumers(a) == ()

    def test_flow_consumers_cache_invalidation(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        assert len(g.flow_consumers(a)) == 1
        c = g.add_operation("fadd")
        g.add_dependence(a, c)
        assert len(g.flow_consumers(a)) == 2

    def test_op_count_by_class(self):
        g = DependenceGraph()
        g.add_operation("load")
        g.add_operation("fadd")
        g.add_operation("fmul")
        counts = g.op_count_by_class()
        from repro.ir.operation import FuClass

        assert counts[FuClass.MEM] == 1
        assert counts[FuClass.FP] == 2

    def test_scc_detection(self):
        g, ids = chain(3)
        g.add_dependence(ids[2], ids[0], distance=1)
        sccs = g.strongly_connected_components()
        assert {frozenset(s) for s in sccs} == {frozenset(ids)}


class TestValidation:
    def test_zero_distance_cycle_rejected(self):
        g = DependenceGraph()
        a = g.add_operation("iadd")
        b = g.add_operation("iadd")
        g.add_dependence(a, b)
        g.add_dependence(b, a)  # distance 0 both ways
        with pytest.raises(GraphError, match="zero-distance cycle"):
            g.validate()

    def test_carried_cycle_accepted(self):
        g, ids = chain(3)
        g.add_dependence(ids[2], ids[0], distance=1)
        g.validate()  # no exception

    def test_underestimated_flow_latency_rejected(self):
        g = DependenceGraph()
        a = g.add_operation("fmul")  # latency 4
        b = g.add_operation("fadd")
        g.add_dependence(a, b, latency=1)
        with pytest.raises(GraphError, match="below producer latency"):
            g.validate()


class TestCopyAndMerge:
    def test_copy_is_independent(self):
        g, ids = chain(3)
        g2 = g.copy()
        g2.add_operation("fadd")
        assert len(g2) == 4
        assert len(g) == 3

    def test_copy_preserves_edges(self):
        g, ids = chain(3)
        g.add_dependence(ids[2], ids[0], distance=2)
        g2 = g.copy()
        assert len(g2.edges) == len(g.edges)
        carried = [d for d in g2.edges if d.distance == 2]
        assert len(carried) == 1

    def test_merge_offsets_node_ids(self):
        g1, _ = chain(2)
        g2, _ = chain(3)
        merged = merge_graphs("m", [g1, g2])
        assert len(merged) == 5
        assert len(merged.edges) == 1 + 2
        # Second graph's first edge must reference offset ids.
        assert any(d.src == 2 and d.dst == 3 for d in merged.edges)

    def test_merge_empty_list_rejected(self):
        with pytest.raises(GraphError):
            merge_graphs("m", [])


class TestExports:
    def test_to_networkx_roundtrip_counts(self):
        g, ids = chain(4)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 4
        assert nxg.number_of_edges() == 3

    def test_to_dot_contains_nodes_and_style(self):
        g, ids = chain(2)
        g.add_dependence(ids[1], ids[0], distance=1)
        dot = g.to_dot()
        assert "digraph" in dot
        assert "dashed" in dot  # carried edge
        assert "solid" in dot

    def test_describe_mentions_all_ops(self):
        g, _ = chain(3)
        text = g.describe()
        assert "3 ops" in text
