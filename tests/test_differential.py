"""Differential tests: every heuristic cross-checked against the oracle.

A pinned-seed corpus of small synthetic loops (the same generator the
workload suite uses) is scheduled by the exact backend and by every
heuristic; the oracle must never lose on II, its schedules must pass the
independent verifier and execute cycle-exactly on the simulator, and its
pressure accounting must agree with the incremental tracker.  Random
graph/machine soups can be genuinely unschedulable for a *heuristic*
(register pressure without spill code); those points are skipped for
that heuristic only — the oracle itself must always succeed on this
corpus.
"""

from __future__ import annotations

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.exact import ExactScheduler
from repro.core.lifetimes import cluster_pressures, max_pressure
from repro.core.mii import mii
from repro.core.pressure import PressureTracker
from repro.core.twophase import TwoPhaseScheduler
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError
from repro.sim import crosscheck_schedule
from repro.workloads.generator import LoopShape, RecurrenceSpec, generate_loop

#: Pinned corpus: every shape is deterministic (seeded) and small enough
#: for the exhaustive search to finish in well under a second.
CORPUS = (
    LoopShape("diff-plain", seed=11, n_ops=6),
    LoopShape("diff-rec", seed=23, n_ops=7, recurrences=(RecurrenceSpec(2, 1),)),
    LoopShape("diff-mem", seed=37, n_ops=8, mem_fraction=0.5),
    LoopShape("diff-rec2", seed=41, n_ops=9, recurrences=(RecurrenceSpec(3, 2),)),
    LoopShape("diff-int", seed=53, n_ops=6, fp_fraction=0.3),
    LoopShape("diff-carried", seed=67, n_ops=8, carried_edge_prob=0.3),
    LoopShape("diff-addr", seed=71, n_ops=7, addr_fraction=0.5),
    LoopShape(
        "diff-deep",
        seed=83,
        n_ops=9,
        recurrences=(RecurrenceSpec(2, 2),),
        fp_fraction=0.6,
    ),
)
_IDS = [shape.name for shape in CORPUS]

HEURISTICS = (BsaScheduler, TwoPhaseScheduler)


def exact(config) -> ExactScheduler:
    # The corpus must be backend-agnostic: CI runs this file once with
    # REPRO_VLIW_EXACT=bnb and once with =z3, so resolution stays "auto".
    return ExactScheduler(config, time_budget_s=30.0)


@pytest.mark.parametrize("shape", CORPUS, ids=_IDS)
class TestExactNeverLoses:
    def test_clustered(self, shape):
        config = two_cluster_config()
        g = generate_loop(shape)
        best = exact(config).schedule(g)
        assert best.ii >= mii(g, config)
        for scheduler_cls in HEURISTICS:
            try:
                heuristic = scheduler_cls(config).schedule(g)
            except SchedulingError:
                continue
            assert best.ii <= heuristic.ii, scheduler_cls.__name__

    def test_unified(self, shape):
        config = unified_config()
        g = generate_loop(shape)
        best = exact(config).schedule(g)
        baseline = UnifiedScheduler(config).schedule(g)
        assert best.ii <= baseline.ii


@pytest.mark.parametrize("shape", CORPUS, ids=_IDS)
class TestExactSchedulesAreReal:
    def test_verifies_and_simulates_exactly(self, shape):
        config = two_cluster_config()
        g = generate_loop(shape)
        best = exact(config).schedule(g)
        verify_schedule(best)
        check = crosscheck_schedule(best, 20, ops_per_source_iteration=len(g))
        assert check.simulated_cycles == check.analytic_cycles

    def test_pressure_agrees_with_incremental_tracker(self, shape):
        config = two_cluster_config()
        best = exact(config).schedule(generate_loop(shape))
        tracker = PressureTracker(best)
        tracker.rebuild()
        assert tracker.pressures() == cluster_pressures(best)
        assert max_pressure(best) == max(cluster_pressures(best).values())


def test_corpus_is_pinned():
    """The corpus must not drift: same shapes -> same graphs, forever.

    A content fingerprint (node count + opcode multiset + edge list) per
    shape; if the generator changes, these hashes change, and the
    optimality claims above would silently cover different graphs.
    """
    from repro.runner.scenario import graph_content_hash

    fingerprints = {
        shape.name: graph_content_hash(generate_loop(shape))[:12]
        for shape in CORPUS
    }
    assert fingerprints == {
        "diff-plain": "7e541f08b497",
        "diff-rec": "75d001850b01",
        "diff-mem": "174584771727",
        "diff-rec2": "fca0342e4ca0",
        "diff-int": "1497441e1667",
        "diff-carried": "5783ddf2dc07",
        "diff-addr": "90ef86450f7c",
        "diff-deep": "390b89250743",
    }
