"""Unit tests for the placement engine (windows, comm planning, commit)."""

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.core.engine import FailReason, Placement, PlacementEngine
from repro.core.schedule import ScheduledOp
from repro.ir.ddg import DependenceGraph


def engine_for(graph, config, ii):
    return PlacementEngine(graph, config, ii, mii=ii)


def chain_graph():
    g = DependenceGraph("chain")
    a = g.add_operation("load")  # lat 2
    b = g.add_operation("fmul")  # lat 4
    c = g.add_operation("fadd")  # lat 3
    g.add_dependence(a, b)
    g.add_dependence(b, c)
    return g, (a, b, c)


class TestWindows:
    def test_no_neighbors_unbounded(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, unified_config(), ii=4)
        assert eng.window(a, 0) == (None, None)

    def test_pred_bound(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, unified_config(), ii=4)
        eng.commit(eng.find_placement(a, 0))
        sa = eng.schedule.cycle_of(a)
        early, late = eng.window(b, 0)
        assert early == sa + 2
        assert late is None

    def test_succ_bound(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, unified_config(), ii=4)
        eng.commit(eng.find_placement(b, 0))
        sb = eng.schedule.cycle_of(b)
        early, late = eng.window(a, 0)
        assert early is None
        assert late == sb - 2  # load latency

    def test_carried_pred_shifts_by_ii(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fadd")
        g.add_dependence(a, b, distance=2)
        eng = engine_for(g, unified_config(), ii=5)
        eng.commit(eng.find_placement(a, 0))
        sa = eng.schedule.cycle_of(a)
        early, _ = eng.window(b, 0)
        assert early == sa + 3 - 2 * 5

    def test_cross_cluster_window_adds_bus_latency(self):
        g, (a, b, c) = chain_graph()
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        eng = engine_for(g, cfg, ii=6)
        eng.commit(eng.find_placement(a, 0))
        sa = eng.schedule.cycle_of(a)
        early_same, _ = eng.window(b, 0)
        early_cross, _ = eng.window(b, 1)
        assert early_same == sa + 2
        assert early_cross == sa + 2 + 2  # plus bus latency


class TestPlacementSearch:
    def test_places_at_earliest_after_pred(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, unified_config(), ii=8)
        eng.commit(eng.find_placement(a, 0))
        pb = eng.find_placement(b, 0)
        assert isinstance(pb, Placement)
        assert pb.cycle == eng.schedule.cycle_of(a) + 2

    def test_no_fu_reported(self):
        g = DependenceGraph()
        ids = [g.add_operation("fadd") for _ in range(5)]
        eng = engine_for(g, two_cluster_config(), ii=1)
        # one cluster has 2 fp units at II=1: two placements fit
        assert isinstance(eng.find_placement(ids[0], 0), Placement)
        eng.commit(eng.find_placement(ids[0], 0))
        eng.commit(eng.find_placement(ids[1], 0))
        result = eng.find_placement(ids[2], 0)
        assert result is FailReason.NO_FU
        assert eng.fail.no_fu > 0

    def test_empty_window_reported(self):
        """A node squeezed between a pred and a succ placed too close."""
        g = DependenceGraph()
        a = g.add_operation("fmul")  # lat 4
        mid = g.add_operation("fadd")  # lat 3
        z = g.add_operation("store")
        g.add_dependence(a, mid)
        g.add_dependence(mid, z)
        eng = engine_for(g, unified_config(), ii=4)
        eng.schedule.place(ScheduledOp(a, 0, 0, 0))
        eng.schedule.place(ScheduledOp(z, 5, 0, 0))
        # mid needs cycle >= 4 (after a) and <= 2 (before z): empty.
        result = eng.find_placement(mid, 0)
        assert result is FailReason.WINDOW
        assert eng.fail.dependence_window > 0

    def test_engine_rejects_ii_below_rec_mii(self):
        """Engine construction requires a feasible II (timings diverge
        otherwise) — the scheduler driver never goes below MII."""
        from repro.errors import GraphError

        g = DependenceGraph()
        a = g.add_operation("fadd")  # lat 3
        g.add_dependence(a, a, distance=1)
        with pytest.raises(GraphError, match="diverged"):
            engine_for(g, unified_config(), ii=2)


class TestCommPlanning:
    def cfg(self, buses=1, lat=1):
        return two_cluster_config(n_buses=buses, bus_latency=lat)

    def test_cross_cluster_creates_transfer(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, self.cfg(), ii=6)
        eng.commit(eng.find_placement(a, 0))
        pb = eng.find_placement(b, 1)
        assert isinstance(pb, Placement)
        assert len(pb.comm_plan.new_transfers) == 1
        t = pb.comm_plan.new_transfers[0]
        assert t.producer == a
        assert t.reader == 1
        assert t.start_cycle >= eng.schedule.cycle_of(a) + 2

    def test_commit_occupies_bus(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, self.cfg(), ii=1)
        eng.commit(eng.find_placement(a, 0))
        pb = eng.find_placement(b, 1)
        assert isinstance(pb, Placement)
        eng.commit(pb)
        # II=1, 1 bus, 1-cycle transfers: the single bus row is now full.
        assert eng.mrt.bus_free(0) is None

    def test_transfer_reuse_by_second_consumer(self):
        g = DependenceGraph()
        a = g.add_operation("fadd", "src")
        b = g.add_operation("fadd", "c1")
        c = g.add_operation("fadd", "c2")
        g.add_dependence(a, b)
        g.add_dependence(a, c)
        eng = engine_for(g, self.cfg(), ii=4)
        eng.commit(eng.find_placement(a, 0))
        eng.commit(eng.find_placement(b, 1))
        assert len(eng.schedule.comms) == 1
        pc = eng.find_placement(c, 1)
        assert isinstance(pc, Placement)
        # second consumer in the same cluster reuses the transfer
        assert not pc.comm_plan.new_transfers
        eng.commit(pc)
        assert len(eng.schedule.comms) == 1

    def test_bus_exhaustion_fails(self):
        # Two producers on cluster 0, two consumers on cluster 1, II=1,
        # one 1-cycle bus: only one transfer per iteration fits.
        g = DependenceGraph()
        p1 = g.add_operation("iadd")
        p2 = g.add_operation("iadd")
        c1 = g.add_operation("iadd")
        c2 = g.add_operation("iadd")
        g.add_dependence(p1, c1)
        g.add_dependence(p2, c2)
        eng = engine_for(g, self.cfg(), ii=1)
        eng.commit(eng.find_placement(p1, 0))
        eng.commit(eng.find_placement(p2, 0))
        pc1 = eng.find_placement(c1, 1)
        assert isinstance(pc1, Placement)
        eng.commit(pc1)
        result = eng.find_placement(c2, 1)
        assert result is FailReason.NO_BUS

    def test_bottom_up_comm_for_scheduled_successor(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, self.cfg(), ii=6)
        eng.commit(eng.find_placement(c, 1))  # consumer first
        eng.commit(eng.find_placement(b, 1))
        pa = eng.find_placement(a, 0)  # producer on the other cluster
        assert isinstance(pa, Placement)
        assert len(pa.comm_plan.new_transfers) == 1
        assert pa.comm_plan.new_transfers[0].producer == a


class TestFinalize:
    def test_negative_cycles_normalised_by_ii_multiple(self):
        g, (a, b, c) = chain_graph()
        eng = engine_for(g, unified_config(), ii=4)
        eng.commit(eng.find_placement(c, 0))  # lands at its ALAP-ish slot
        eng.commit(eng.find_placement(b, 0))
        eng.commit(eng.find_placement(a, 0))
        rows_before = {n: op.cycle % 4 for n, op in eng.schedule.ops.items()}
        sched = eng.finalize()
        assert all(op.cycle >= 0 for op in sched.ops.values())
        rows_after = {n: op.cycle % 4 for n, op in sched.ops.items()}
        assert rows_before == rows_after  # shift was a multiple of II

    def test_finalize_incomplete_rejected(self):
        from repro.errors import SchedulingError

        g, _ = chain_graph()
        eng = engine_for(g, unified_config(), ii=4)
        with pytest.raises(SchedulingError):
            eng.finalize()
