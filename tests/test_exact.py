"""Tests for the exact (optimal) scheduler backend (:mod:`repro.core.exact`).

Covers backend resolution (bnb / z3 / auto / env override), the registry
wiring, pinned optimality results — kernels where the oracle provably
beats the heuristics — the size/time guards, and simulator validation of
the exact schedules.
"""

from __future__ import annotations

import pytest

from repro.arch.configs import (
    clustered_config,
    two_cluster_config,
    unified_config,
)
from repro.core.bsa import BsaScheduler
from repro.core.exact import (
    DEFAULT_MAX_NODES,
    EXACT_BACKEND_ENV,
    HAVE_Z3,
    ExactScheduler,
    resolve_backend,
)
from repro.core.lifetimes import cluster_pressures, max_pressure
from repro.core.mii import mii
from repro.core.twophase import TwoPhaseScheduler
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import ConfigError, ExactTimeout, SchedulingError
from repro.runner.engine import SCHEDULERS, make_scheduler, scheduler_table
from repro.sim import crosscheck_schedule
from repro.workloads.kernels import resolve_kernel


def kernel_graph(name: str):
    return resolve_kernel(name)[1]()


def exact(config, **kwargs) -> ExactScheduler:
    kwargs.setdefault("backend", "bnb")
    return ExactScheduler(config, **kwargs)


# ---------------------------------------------------------------------------
# Backend resolution
# ---------------------------------------------------------------------------
class TestBackendResolution:
    def test_bnb_always_available(self):
        assert resolve_backend("bnb") == "bnb"

    def test_auto_follows_z3_availability(self, monkeypatch):
        monkeypatch.delenv(EXACT_BACKEND_ENV, raising=False)
        assert resolve_backend("auto") == ("z3" if HAVE_Z3 else "bnb")

    def test_env_var_overrides_auto(self, monkeypatch):
        monkeypatch.setenv(EXACT_BACKEND_ENV, "bnb")
        assert resolve_backend("auto") == "bnb"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            resolve_backend("simplex")

    def test_env_var_unknown_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(EXACT_BACKEND_ENV, "simplex")
        with pytest.raises(ConfigError, match="simplex"):
            resolve_backend("auto")

    @pytest.mark.skipif(HAVE_Z3, reason="z3 is installed here")
    def test_explicit_z3_without_z3_is_a_config_error(self):
        with pytest.raises(ConfigError, match="z3"):
            resolve_backend("z3")

    def test_scheduler_resolves_backend_at_construction(self, monkeypatch):
        monkeypatch.delenv(EXACT_BACKEND_ENV, raising=False)
        sched = ExactScheduler(two_cluster_config())
        assert sched.backend == ("z3" if HAVE_Z3 else "bnb")


# ---------------------------------------------------------------------------
# Registry wiring
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_exact_is_registered(self):
        assert "exact" in SCHEDULERS
        sched = make_scheduler("exact", two_cluster_config())
        assert isinstance(sched, ExactScheduler)

    def test_exact_honoured_on_unified_machines(self):
        # Heuristic names collapse to the SMS scheduler on one cluster;
        # the oracle must survive the dispatch (it oracles SMS too).
        assert isinstance(
            make_scheduler("bsa", unified_config()), UnifiedScheduler
        )
        assert isinstance(
            make_scheduler("exact", unified_config()), ExactScheduler
        )

    def test_scheduler_table_lists_exact(self):
        rows = scheduler_table()
        names = [row["scheduler"] for row in rows]
        assert "exact" in names and "bsa" in names
        by_name = {row["scheduler"]: row for row in rows}
        assert by_name["exact"]["class"] == "ExactScheduler"
        assert by_name["exact"]["description"]


# ---------------------------------------------------------------------------
# Pinned optimality results
# ---------------------------------------------------------------------------
class TestOptimality:
    def test_figure7_beats_both_heuristics(self):
        """The paper's own example: optimal II=2 where BSA/two-phase get 3."""
        config = two_cluster_config()
        g = kernel_graph("figure7")
        best = exact(config).schedule(g)
        assert best.ii == 2 == mii(g, config)
        assert BsaScheduler(config).schedule(g).ii == 3
        assert TwoPhaseScheduler(config).schedule(g).ii == 3

    def test_fir4_beats_both_heuristics(self):
        config = two_cluster_config()
        g = kernel_graph("fir4")
        best = exact(config).schedule(g)
        assert best.ii == 2
        assert BsaScheduler(config).schedule(g).ii == 3
        assert TwoPhaseScheduler(config).schedule(g).ii == 3

    def test_ladder_is_provably_bus_limited(self):
        """On the slow fabric the oracle proves II=MII is infeasible.

        MII counts resources and recurrences but not bus bandwidth; the
        ladder kernel forces cross-cluster traffic that a latency-2 bus
        cannot carry at II=3, and the exhaustive search certifies it.
        """
        config = clustered_config(2, 1, 2)
        g = kernel_graph("ladder")
        best = exact(config).schedule(g)
        assert mii(g, config) == 3
        assert best.ii == 4

    def test_exact_matches_unified_sms_on_one_cluster(self):
        config = unified_config()
        for name in ("daxpy", "figure7", "hydro"):
            g = kernel_graph(name)
            assert exact(config).schedule(g).ii == (
                UnifiedScheduler(config).schedule(g).ii
            ), name

    def test_maxlive_refinement_beats_bsa_on_daxpy(self):
        config = two_cluster_config()
        g = kernel_graph("daxpy")
        best = exact(config).schedule(g)
        heuristic = BsaScheduler(config).schedule(g)
        assert best.ii == heuristic.ii == 1
        assert max_pressure(best) < max_pressure(heuristic)

    def test_minimize_pressure_flag_off_keeps_optimal_ii(self):
        config = two_cluster_config()
        g = kernel_graph("figure7")
        fast = exact(config, minimize_pressure=False).schedule(g)
        assert fast.ii == 2
        verify_schedule(fast)


# ---------------------------------------------------------------------------
# Size and time guards
# ---------------------------------------------------------------------------
class TestGuards:
    def test_oversized_graph_fails_fast(self):
        g = kernel_graph("figure7")  # 6 nodes
        with pytest.raises(ExactTimeout, match="exact-search limit of 4"):
            exact(two_cluster_config(), max_nodes=4).schedule(g)

    def test_default_node_limit_documented_in_message(self):
        big = kernel_graph("stencil5")
        scheduler = exact(two_cluster_config(), max_nodes=len(big) - 1)
        with pytest.raises(ExactTimeout, match=str(len(big) - 1)):
            scheduler.schedule(big)
        assert len(big) <= DEFAULT_MAX_NODES  # catalogue fits the default

    def test_zero_time_budget_times_out(self):
        g = kernel_graph("figure7")
        with pytest.raises(ExactTimeout, match="budget"):
            exact(two_cluster_config(), time_budget_s=0.0).schedule(g)

    def test_timeout_is_a_scheduling_error(self):
        """The runner's fallback path catches SchedulingError; a blown
        exact budget must ride that path instead of crashing a worker."""
        assert issubclass(ExactTimeout, SchedulingError)

    def test_empty_graph_rejected(self):
        from repro.ir.ddg import DependenceGraph

        with pytest.raises(SchedulingError, match="no operations"):
            exact(two_cluster_config()).schedule(DependenceGraph("empty"))


# ---------------------------------------------------------------------------
# Exact schedules are real schedules
# ---------------------------------------------------------------------------
QUICK_ORACLE_KERNELS = (
    "daxpy",
    "vadd",
    "dot",
    "rec1",
    "gather",
    "fib",
    "figure7",
    "tridiag",
    "hydro",
    "stencil3",
    "fir4",
    "sqrtnorm",
)


class TestExactSchedulesAreValid:
    @pytest.mark.parametrize("name", QUICK_ORACLE_KERNELS)
    def test_verified_simulated_and_never_worse(self, name):
        """Every quick-catalogue exact schedule passes the independent
        verifier, executes cycle-exactly on the simulator, and its II is
        <= every heuristic that succeeds on the same machine."""
        config = two_cluster_config()
        g = kernel_graph(name)
        best = exact(config).schedule(g)
        verify_schedule(best)
        assert best.ii >= mii(g, config)
        check = crosscheck_schedule(
            best, 20, ops_per_source_iteration=len(g)
        )
        assert check.simulated_cycles == check.analytic_cycles
        for scheduler in (BsaScheduler(config), TwoPhaseScheduler(config)):
            try:
                heuristic = scheduler.schedule(g)
            except SchedulingError:
                continue
            assert best.ii <= heuristic.ii, (name, type(scheduler).__name__)

    def test_pressure_accounting_agrees_with_tracker(self):
        from repro.core.pressure import PressureTracker

        config = two_cluster_config()
        best = exact(config).schedule(kernel_graph("figure7"))
        tracker = PressureTracker(best)
        tracker.rebuild()
        assert tracker.pressures() == cluster_pressures(best)
        assert max_pressure(best) == max(cluster_pressures(best).values())

    def test_exact_is_deterministic(self):
        config = two_cluster_config()
        g = kernel_graph("fir4")
        s1 = exact(config).schedule(g)
        s2 = exact(config).schedule(g)
        assert s1.ii == s2.ii
        assert {n: (o.cycle, o.cluster) for n, o in s1.ops.items()} == {
            n: (o.cycle, o.cluster) for n, o in s2.ops.items()
        }


# ---------------------------------------------------------------------------
# z3 backend (exercised when the optional extra is installed)
# ---------------------------------------------------------------------------
class TestZ3Backend:
    @pytest.fixture(autouse=True)
    def _require_z3(self):
        pytest.importorskip("z3")

    def test_z3_matches_bnb_optimal_ii(self):
        config = two_cluster_config()
        for name in ("daxpy", "figure7", "fir4"):
            g = kernel_graph(name)
            via_z3 = ExactScheduler(config, backend="z3").schedule(g)
            via_bnb = exact(config).schedule(g)
            assert via_z3.ii == via_bnb.ii, name
            verify_schedule(via_z3)

    def test_z3_schedules_simulate_exactly(self):
        config = two_cluster_config()
        g = kernel_graph("figure7")
        sched = ExactScheduler(config, backend="z3").schedule(g)
        check = crosscheck_schedule(sched, 20, ops_per_source_iteration=len(g))
        assert check.simulated_cycles == check.analytic_cycles

    def test_env_var_selects_z3(self, monkeypatch):
        monkeypatch.setenv(EXACT_BACKEND_ENV, "z3")
        assert ExactScheduler(two_cluster_config()).backend == "z3"
