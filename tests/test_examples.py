"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a broken example is a broken
deliverable.  ``design_space``/``codesize_study`` are exercised through
their ``main()`` with the smallest program to stay fast.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES / f"{name}.py"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "unified" in out
        assert "kernel" in out

    def test_unrolling_walkthrough(self, capsys):
        run_example("unrolling_walkthrough")
        out = capsys.readouterr().out
        assert "unrolled x2" in out
        assert "unified parity" in out

    def test_custom_kernel(self, capsys):
        run_example("custom_kernel")
        out = capsys.readouterr().out
        assert "RecMII" in out
        assert "declined" in out

    def test_heterogeneous_machine(self, capsys):
        run_example("heterogeneous_machine")
        out = capsys.readouterr().out
        assert "fp-island" in out
        assert "balanced" in out

    @pytest.mark.slow
    def test_codesize_study(self, capsys):
        run_example("codesize_study", ["swim"])
        out = capsys.readouterr().out
        assert "selective-unrolling" in out

    @pytest.mark.slow
    def test_design_space(self, capsys):
        run_example("design_space", ["apsi"])
        out = capsys.readouterr().out
        assert "best point" in out
