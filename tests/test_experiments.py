"""Integration tests for the experiment harnesses.

Full-suite experiment runs live in ``benchmarks/``; these tests exercise
the harness logic on reduced grids so they stay fast, plus the complete
Figure 7 and Tables 1-2 artefacts (which are cheap).
"""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.selective import SelectiveRule, UnrollPolicy
from repro.experiments import (
    ExperimentContext,
    config_label,
    geometric_mean,
    make_scheduler,
    run_fig7,
    run_fig7_ladder,
    run_table1,
    run_table2,
    sequential_fallback,
)
from repro.ir.loop import Loop, Program
from repro.workloads.kernels import daxpy, ladder_graph
from repro.workloads.specfp import build_program


@pytest.fixture(scope="module")
def small_ctx():
    """A context over two small programs (fast)."""
    suite = [build_program("applu"), build_program("swim")]
    return ExperimentContext(suite=suite)


class TestContext:
    def test_cache_hits(self, small_ctx):
        loop = small_ctx.suite[0].eligible_loops()[0]
        cfg = two_cluster_config(1, 1)
        r1 = small_ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.NONE)
        r2 = small_ctx.schedule_loop(loop, cfg, "bsa", UnrollPolicy.NONE)
        assert r1 is r2  # memoised

    def test_program_ipc_positive(self, small_ctx):
        perf = small_ctx.program_ipc(
            small_ctx.suite[0], unified_config(), "bsa", UnrollPolicy.NONE
        )
        assert 0 < perf.ipc <= 12

    def test_relative_ipc_below_unified(self, small_ctx):
        cfg = four_cluster_config(1, 4)  # starved fabric
        rel = small_ctx.average_relative_ipc(cfg, "bsa", UnrollPolicy.NONE)
        assert 0 < rel < 1.0

    def test_selective_at_least_none(self, small_ctx):
        cfg = four_cluster_config(1, 2)
        rel_none = small_ctx.average_relative_ipc(cfg, "bsa", UnrollPolicy.NONE)
        rel_sel = small_ctx.average_relative_ipc(cfg, "bsa", UnrollPolicy.SELECTIVE)
        assert rel_sel >= rel_none - 0.02

    def test_config_label(self):
        assert config_label(unified_config()) == "unified"
        assert config_label(two_cluster_config(2, 4)) == "2-cluster/b2/l4"

    def test_make_scheduler_dispatch(self):
        assert make_scheduler("bsa", unified_config()).name == "unified-sms"
        assert make_scheduler("bsa", two_cluster_config()).name == "bsa"
        assert make_scheduler("two-phase", two_cluster_config()).name == "two-phase"


class TestFallback:
    def test_sequential_fallback_is_complete(self):
        g = daxpy()
        result = sequential_fallback(g, four_cluster_config(1, 1))
        assert result.schedule.is_complete
        assert result.unroll_factor == 1
        assert result.schedule.ii >= len(g)

    def test_fallback_counts_in_context(self):
        """A machine too starved to modulo-schedule records a fallback."""
        from repro.arch.cluster import MachineConfig
        from repro.arch.resources import BusSpec, FuSet
        from repro.ir.ddg import DependenceGraph

        g = DependenceGraph("fat")
        p1 = g.add_operation("fadd")
        p2 = g.add_operation("fadd")
        c = g.add_operation("fadd")
        g.add_dependence(p1, c)
        g.add_dependence(p2, c)
        prog = Program("p", [Loop(graph=g, trip_count=100)])
        ctx = ExperimentContext(suite=[prog])
        # One cluster, one register: c reads two values in one cycle, so
        # no schedule exists and the harness must fall back.
        starved = MachineConfig("starved", 1, FuSet(1, 1, 1), 1, BusSpec(0, 1))
        perf = ctx.program_ipc(prog, starved, "bsa", UnrollPolicy.NONE)
        assert len(ctx.fallbacks) == 1
        assert perf.ipc > 0  # still produces a (pessimistic) number


class TestFig7:
    def test_paper_graph_story(self):
        case = run_fig7()
        assert case.res_mii == 2 and case.rec_mii == 2
        assert case.unified_schedule.ii == 2
        assert case.base_schedule.ii == 3  # bus limited, as in the paper
        assert case.base_schedule.was_bus_limited
        # unrolled x2: better than the unified rate per iteration
        assert case.unrolled_ii_per_iteration <= 2.0

    def test_ladder_story(self):
        case = run_fig7_ladder()
        assert case.unified_schedule.ii == 3
        assert case.base_schedule.ii == 6
        assert case.unrolled_schedule.ii == 6  # 3 per source iteration
        assert case.unrolled_schedule.communication_count == 0


class TestTables:
    def test_table1(self):
        rows = run_table1()
        assert len(rows) == 3
        assert all(r["total_issue_width"] == 12 for r in rows)

    def test_table2_one_bus(self):
        rows = run_table2(n_buses=1)
        by_name = {r["config"]: r for r in rows}
        assert by_name["unified"]["cycle_ps"] > by_name["2-cluster"]["cycle_ps"]
        assert by_name["2-cluster"]["cycle_ps"] > by_name["4-cluster"]["cycle_ps"]

    def test_table2_two_buses_slower(self):
        one = {r["config"]: r for r in run_table2(n_buses=1)}
        two = {r["config"]: r for r in run_table2(n_buses=2)}
        assert two["4-cluster"]["cycle_ps"] > one["4-cluster"]["cycle_ps"]
        # the unified machine has no buses: unchanged
        assert two["unified"]["cycle_ps"] == one["unified"]["cycle_ps"]


class TestHelpers:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0

    def test_selective_rules_produce_results(self, small_ctx):
        cfg = four_cluster_config(1, 2)
        loop = small_ctx.suite[0].eligible_loops()[0]
        for rule in SelectiveRule:
            r = small_ctx.schedule_loop(
                loop, cfg, "bsa", UnrollPolicy.SELECTIVE, rule
            )
            assert r.schedule.is_complete
