"""Tests for the distributed sweep fabric (repro.fabric).

Covers the acceptance criteria of the fabric work:

* protocol conformance: golden request fixtures, pinned response
  document shapes, and the 400/409/410 error taxonomy over real HTTP;
* byte-identity: a distributed sweep converges to exactly the results
  the local ``--jobs`` path computes — including a reduced Figure 8
  grid — with every point stored in the shared cache exactly once;
* fault injection (via :mod:`fabric_chaos`): workers that die
  mid-shard, stall past their lease deadline, double-post, or post
  corrupted payloads; the sweep must converge anyway;
* straggler re-issue: deterministic slowest-shard selection, with
  first-write-wins resolving the duplicated work;
* the ``repro-vliw worker`` / ``sweep --distributed`` CLI surface.

HTTP tests run over a real server on an ephemeral port, exactly like
the service suite; coordinator-level tests use the direct (no-HTTP)
API the handlers call.
"""

from __future__ import annotations

import socket
import threading
import time
import urllib.request
from contextlib import contextmanager

import pytest
from fabric_chaos import ChaosWorker, drain, spawn

from repro.arch.configs import clustered_config
from repro.cli import main
from repro.core.selective import UnrollPolicy
from repro.experiments import ExperimentContext, fig8_rows, run_fig8
from repro.fabric import (
    PROTOCOL_VERSION,
    FabricBadRequest,
    FabricConflict,
    FabricCoordinator,
    FabricError,
    FabricGone,
)
from repro.fabric.protocol import MAX_ID_LEN, validate_claim, validate_results
from repro.fabric.worker import FabricWorker, WorkerDied, client_from_url
from repro.obs.prom import parse as parse_metrics
from repro.runner import ResultCache, execute_points, scenario_for
from repro.runner.engine import _run_batch
from repro.runner.grids import GRIDS
from repro.runner.scenario import ScenarioPoint
from repro.service import (
    ClientError,
    SchedulingService,
    ServiceClient,
    ServiceServer,
)
from repro.workloads.kernels import kernel_loop
from repro.workloads.specfp import specfp95_suite

CODE_VERSION = "test-fabric"


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def make_misses(kernels=("daxpy", "dot", "fir4"), cluster_counts=(2, 4)):
    """A small, deterministic list of cache misses (the sweep input)."""
    misses = []
    for name in kernels:
        loop = kernel_loop(name, trip_count=100)
        for n_clusters in cluster_counts:
            point = scenario_for(
                loop, clustered_config(n_clusters, 1, 1), "bsa", UnrollPolicy.NONE
            )
            misses.append((point.canonical(), (point, loop)))
    return misses


def reference_docs(misses):
    """What the local execution path computes, as comparable dicts."""
    executed = execute_points(list(misses), jobs=1)
    return {key: result.to_dict() for key, result in executed.items()}


def as_docs(results):
    return {key: result.to_dict() for key, result in results.items()}


def claim_body(worker, code_version):
    return {
        "protocol": PROTOCOL_VERSION,
        "worker": worker,
        "code_version": code_version,
    }


def renew_body(worker, lease_id):
    return {"protocol": PROTOCOL_VERSION, "worker": worker, "renew": lease_id}


def results_body(worker, lease_id, code_version, results):
    return {
        "protocol": PROTOCOL_VERSION,
        "worker": worker,
        "lease": lease_id,
        "code_version": code_version,
        "results": results,
    }


def execute_items(items, trace=None):
    """Honestly execute leased shard items (what a worker posts back)."""
    out = []
    for item in items:
        (_key, payload, meta) = _run_batch([item], None, None, trace)[0]
        out.append({"point": item["point"], "result": payload, "meta": meta})
    return out


def item_key(item):
    return ScenarioPoint(**item["point"]).canonical()


def wait_for(predicate, *, timeout=15.0, interval=0.01, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


@contextmanager
def fabric_sweep(coordinator, misses, *, join_s=60.0):
    """Run ``coordinator.execute(misses)`` on a thread; yield its result box."""
    box = {}

    def _run():
        try:
            box["results"] = coordinator.execute(misses)
        except BaseException as exc:  # noqa: BLE001 - surfaced via the box
            box["error"] = exc

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    try:
        yield box
    finally:
        thread.join(join_s)
        box["finished"] = not thread.is_alive()


def make_coordinator(tmp_path, sub="fabric-cache", **opts):
    opts.setdefault("sweep_timeout_s", 60.0)
    cache = ResultCache(tmp_path / sub, code_version=CODE_VERSION)
    return FabricCoordinator(cache=cache, **opts)


def _serve_until(coordinator, stop, *, worker_id="svc-loop"):
    """A minimal honest worker loop over the direct API (no HTTP)."""
    while not stop.is_set():
        doc = coordinator.claim(
            claim_body(worker_id, coordinator.code_version)
        )
        if not doc.get("lease"):
            time.sleep(0.005)
            continue
        results = execute_items(doc["shard"], doc.get("trace"))
        try:
            coordinator.submit_results(
                results_body(
                    worker_id, doc["lease"], coordinator.code_version, results
                )
            )
        except FabricGone:
            pass  # lost the race against a re-issued copy


@pytest.fixture()
def fabric_env(tmp_path):
    """Factory for a (service, server, client) stack with fabric options."""
    created = []

    def make(**fabric_opts):
        fabric_opts.setdefault("sweep_timeout_s", 60.0)
        svc = SchedulingService(
            cache=ResultCache(
                tmp_path / f"svc-cache-{len(created)}", code_version=CODE_VERSION
            ),
            workers=0,
            fabric_opts=fabric_opts,
        )
        srv = ServiceServer(svc, port=0)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        created.append((svc, srv))
        return svc, srv, ServiceClient(port=srv.port, timeout=60.0)

    yield make
    for svc, srv in reversed(created):
        srv.shutdown()
        srv.server_close()
        svc.close()


# ---------------------------------------------------------------------------
# Protocol conformance: golden fixtures and structural validation
# ---------------------------------------------------------------------------
GOLDEN_CLAIM = {"protocol": 1, "worker": "w-golden", "code_version": "cv-1"}
GOLDEN_RENEW = {"protocol": 1, "worker": "w-golden", "renew": "l00001"}
GOLDEN_RESULTS = {
    "protocol": 1,
    "worker": "w-golden",
    "lease": "l00001",
    "code_version": "cv-1",
    "results": [
        {
            "point": {"kernel": "daxpy"},
            "result": {"ii": 1},
            "meta": {"wall_s": 0.25},
        }
    ],
}


class TestProtocol:
    def test_golden_claim_accepted(self):
        assert validate_claim(dict(GOLDEN_CLAIM)) == GOLDEN_CLAIM

    def test_golden_renew_accepted(self):
        assert validate_claim(dict(GOLDEN_RENEW)) == GOLDEN_RENEW

    def test_golden_results_accepted(self):
        doc = {**GOLDEN_RESULTS, "results": [dict(GOLDEN_RESULTS["results"][0])]}
        assert validate_results(doc) == GOLDEN_RESULTS
        # meta is optional
        doc["results"][0].pop("meta")
        assert validate_results(doc)["results"][0] == {
            "point": {"kernel": "daxpy"},
            "result": {"ii": 1},
        }

    @pytest.mark.parametrize(
        "mutation",
        [
            pytest.param({"protocol": 2}, id="future-protocol"),
            pytest.param({"protocol": None}, id="missing-protocol"),
            pytest.param({"worker": ""}, id="empty-worker"),
            pytest.param({"worker": "w" * (MAX_ID_LEN + 1)}, id="huge-worker"),
            pytest.param({"worker": 7}, id="non-string-worker"),
            pytest.param({"code_version": None}, id="missing-code-version"),
            pytest.param({"shard": 3}, id="unknown-field"),
        ],
    )
    def test_bad_claims_rejected(self, mutation):
        body = {**GOLDEN_CLAIM, **mutation}
        body = {k: v for k, v in body.items() if v is not None}
        with pytest.raises(FabricBadRequest):
            validate_claim(body)

    def test_renew_must_not_carry_code_version(self):
        with pytest.raises(FabricBadRequest, match="unknown lease-renewal"):
            validate_claim({**GOLDEN_RENEW, "code_version": "cv-1"})

    @pytest.mark.parametrize(
        "mutation",
        [
            pytest.param({"results": []}, id="empty-results"),
            pytest.param({"results": "nope"}, id="non-list-results"),
            pytest.param({"results": [{"result": {}}]}, id="item-missing-point"),
            pytest.param({"results": [{"point": {}}]}, id="item-missing-result"),
            pytest.param({"results": [[1, 2]]}, id="non-object-item"),
            pytest.param(
                {"results": [{"point": {}, "result": {}, "meta": 5}]},
                id="non-object-meta",
            ),
            pytest.param({"lease": ""}, id="empty-lease"),
            pytest.param({"extra": True}, id="unknown-field"),
        ],
    )
    def test_bad_results_rejected(self, mutation):
        with pytest.raises(FabricBadRequest):
            validate_results({**GOLDEN_RESULTS, **mutation})


# ---------------------------------------------------------------------------
# Coordinator: leases, expiry, atomicity (direct API)
# ---------------------------------------------------------------------------
class TestCoordinator:
    def test_empty_sweep_is_a_noop(self, tmp_path):
        coordinator = make_coordinator(tmp_path)
        assert coordinator.execute([]) == {}
        assert coordinator.stats()["counters"]["leases_issued"] == 0

    def _run_partition(self, tmp_path, sub):
        """Claim and execute a whole sweep; return (partition, results)."""
        coordinator = make_coordinator(tmp_path, sub, shard_size=2)
        misses = make_misses()
        partition = []
        with fabric_sweep(coordinator, misses) as box:
            while True:
                doc = coordinator.claim(claim_body("w1", CODE_VERSION))
                if not doc.get("lease"):
                    break
                partition.append(tuple(item_key(i) for i in doc["shard"]))
                reply = coordinator.submit_results(
                    results_body(
                        "w1", doc["lease"], CODE_VERSION,
                        execute_items(doc["shard"], doc.get("trace")),
                    )
                )
                assert reply["accepted"] == len(doc["shard"])
                assert reply["duplicates"] == 0
        assert box["finished"] and "error" not in box
        return partition, box["results"]

    def test_deterministic_shards_and_byte_identity(self, tmp_path):
        part_a, results_a = self._run_partition(tmp_path, "a")
        part_b, results_b = self._run_partition(tmp_path, "b")
        # The shard partition is a pure function of the grid contents.
        assert part_a == part_b
        assert len(part_a) == 3  # 6 points / shard_size 2
        claimed = sorted(key for shard in part_a for key in shard)
        assert claimed == sorted(key for key, _item in make_misses())
        # And the results are byte-identical to the local path.
        reference = reference_docs(make_misses())
        assert as_docs(results_a) == reference
        assert as_docs(results_b) == reference

    def test_renewals_extend_the_lease(self, tmp_path):
        coordinator = make_coordinator(tmp_path, lease_ttl_s=0.6, shard_size=99)
        misses = make_misses(kernels=("daxpy", "dot"))
        with fabric_sweep(coordinator, misses) as box:
            doc = coordinator.claim(claim_body("w1", CODE_VERSION))
            assert doc["heartbeat_s"] == pytest.approx(0.2)
            results = execute_items(doc["shard"], doc.get("trace"))
            deadline = doc["deadline_unix"]
            for _ in range(3):  # outlive the original TTL via heartbeats
                time.sleep(0.3)
                renewed = coordinator.claim(renew_body("w1", doc["lease"]))
                assert renewed["deadline_unix"] >= deadline
                deadline = renewed["deadline_unix"]
            reply = coordinator.submit_results(
                results_body("w1", doc["lease"], CODE_VERSION, results)
            )
            assert reply["accepted"] == len(misses) and reply["sweep_done"]
        assert box["finished"] and "error" not in box
        counters = coordinator.stats()["counters"]
        assert counters["leases_renewed"] == 3
        assert counters["leases_expired"] == 0

    def test_expired_lease_is_reissued_and_late_post_bounces(self, tmp_path):
        coordinator = make_coordinator(tmp_path, lease_ttl_s=0.25, shard_size=99)
        misses = make_misses(kernels=("daxpy", "dot"))
        with fabric_sweep(coordinator, misses) as box:
            dead = coordinator.claim(claim_body("w-dead", CODE_VERSION))
            # The executor's wait ticks expire the lease lazily.
            wait_for(
                lambda: coordinator.stats()["counters"]["leases_expired"] >= 1,
                message="lease expiry",
            )
            with pytest.raises(FabricGone, match="expired"):
                coordinator.claim(renew_body("w-dead", dead["lease"]))
            second = coordinator.claim(claim_body("w2", CODE_VERSION))
            # The orphaned shard is re-issued, same deterministic items.
            assert [item_key(i) for i in second["shard"]] == [
                item_key(i) for i in dead["shard"]
            ]
            reply = coordinator.submit_results(
                results_body(
                    "w2", second["lease"], CODE_VERSION,
                    execute_items(second["shard"]),
                )
            )
            assert reply["accepted"] == len(misses)
            with pytest.raises(FabricGone):
                coordinator.submit_results(
                    results_body(
                        "w-dead", dead["lease"], CODE_VERSION,
                        execute_items(dead["shard"]),
                    )
                )
        assert box["finished"] and "error" not in box
        assert as_docs(box["results"]) == reference_docs(misses)
        counters = coordinator.stats()["counters"]
        assert counters["shards_reissued"] == 1
        assert coordinator.stats()["workers"]["w-dead"]["expired"] == 1
        # Exactly one cache write per point despite the failed lease.
        assert coordinator.cache.writes == len(misses)

    def test_ownership_version_and_duplicate_conflicts(self, tmp_path):
        coordinator = make_coordinator(tmp_path, shard_size=3)
        misses = make_misses()  # 6 points -> 2 shards
        with fabric_sweep(coordinator, misses) as box:
            first = coordinator.claim(claim_body("w1", CODE_VERSION))
            results = execute_items(first["shard"], first.get("trace"))
            with pytest.raises(FabricConflict, match="belongs to worker"):
                coordinator.submit_results(
                    results_body("w-thief", first["lease"], CODE_VERSION, results)
                )
            with pytest.raises(FabricConflict, match="code version mismatch"):
                coordinator.submit_results(
                    results_body("w1", first["lease"], "other-version", results)
                )
            with pytest.raises(FabricGone, match="unknown lease"):
                coordinator.submit_results(
                    results_body("w1", "l99999", CODE_VERSION, results)
                )
            assert coordinator.submit_results(
                results_body("w1", first["lease"], CODE_VERSION, results)
            )["accepted"] == 3
            # Second post on the same lease (the other shard keeps the
            # sweep alive, so this is deterministically a 409).
            with pytest.raises(FabricConflict, match="duplicate post"):
                coordinator.submit_results(
                    results_body("w1", first["lease"], CODE_VERSION, results)
                )
            second = coordinator.claim(claim_body("w1", CODE_VERSION))
            coordinator.submit_results(
                results_body(
                    "w1", second["lease"], CODE_VERSION,
                    execute_items(second["shard"]),
                )
            )
        assert box["finished"] and "error" not in box
        assert as_docs(box["results"]) == reference_docs(misses)
        assert coordinator.stats()["counters"]["results_rejected"] == 4

    def test_corrupt_post_rejects_atomically(self, tmp_path):
        coordinator = make_coordinator(tmp_path, shard_size=99)
        misses = make_misses(kernels=("daxpy", "dot"))
        with fabric_sweep(coordinator, misses) as box:
            doc = coordinator.claim(claim_body("w1", CODE_VERSION))
            honest = execute_items(doc["shard"], doc.get("trace"))

            corrupt = [dict(item) for item in honest]
            corrupt[-1] = dict(corrupt[-1], result={"ii": 1})
            with pytest.raises(FabricBadRequest, match="corrupt result"):
                coordinator.submit_results(
                    results_body("w1", doc["lease"], CODE_VERSION, corrupt)
                )

            malformed = [dict(item) for item in honest]
            malformed[0] = dict(
                malformed[0], point={**malformed[0]["point"], "bogus": 1}
            )
            with pytest.raises(FabricBadRequest, match="malformed scenario"):
                coordinator.submit_results(
                    results_body("w1", doc["lease"], CODE_VERSION, malformed)
                )

            # Nothing committed: the good items in the bad posts did NOT
            # land (all-or-nothing), and the cache is untouched.
            assert coordinator.stats()["counters"]["points_completed"] == 0
            assert coordinator.cache.writes == 0

            reply = coordinator.submit_results(
                results_body("w1", doc["lease"], CODE_VERSION, honest)
            )
            assert reply["accepted"] == len(misses)
        assert box["finished"] and "error" not in box
        assert as_docs(box["results"]) == reference_docs(misses)
        assert coordinator.stats()["counters"]["results_rejected"] == 2
        assert coordinator.cache.writes == len(misses)

    def test_claim_with_wrong_code_version_conflicts(self, tmp_path):
        coordinator = make_coordinator(tmp_path)
        with pytest.raises(FabricConflict, match="code version mismatch"):
            coordinator.claim(claim_body("w1", "something-else"))

    def test_sweep_timeout(self, tmp_path):
        coordinator = make_coordinator(tmp_path, sweep_timeout_s=0.2)
        with pytest.raises(FabricError, match="timed out"):
            coordinator.execute(make_misses(kernels=("daxpy",)))

    def test_close_aborts_inflight_sweeps(self, tmp_path):
        coordinator = make_coordinator(tmp_path)
        with fabric_sweep(coordinator, make_misses(kernels=("daxpy",))) as box:
            coordinator.close()
        assert box["finished"]
        assert isinstance(box["error"], FabricError)
        assert "closed" in str(box["error"])


# ---------------------------------------------------------------------------
# Straggler re-issue: deterministic pick, first write wins
# ---------------------------------------------------------------------------
class TestStraggler:
    def test_slowest_shard_reissued_first_write_wins(self, tmp_path):
        coordinator = make_coordinator(
            tmp_path, shard_size=3, straggler_after_s=0.2, lease_ttl_s=30.0
        )
        misses = make_misses()  # 6 points -> 2 shards
        with fabric_sweep(coordinator, misses) as box:
            slow = coordinator.claim(claim_body("w-slow", CODE_VERSION))
            time.sleep(0.1)
            other = coordinator.claim(claim_body("w-other", CODE_VERSION))
            time.sleep(0.25)  # both leases now over the straggler threshold
            # No pending shards left: the *oldest* leased shard (the
            # slow worker's) is re-issued — deterministically.
            helper = coordinator.claim(claim_body("w-helper", CODE_VERSION))
            assert helper["lease"]
            assert [item_key(i) for i in helper["shard"]] == [
                item_key(i) for i in slow["shard"]
            ]
            assert coordinator.stats()["counters"]["shards_reissued"] == 1

            shard_results = execute_items(slow["shard"])
            reply = coordinator.submit_results(
                results_body(
                    "w-helper", helper["lease"], CODE_VERSION, shard_results
                )
            )
            assert reply["accepted"] == 3 and not reply["sweep_done"]
            # The original (slow) copy arrives second: first write wins.
            reply = coordinator.submit_results(
                results_body("w-slow", slow["lease"], CODE_VERSION, shard_results)
            )
            assert reply["accepted"] == 0 and reply["duplicates"] == 3
            reply = coordinator.submit_results(
                results_body(
                    "w-other", other["lease"], CODE_VERSION,
                    execute_items(other["shard"]),
                )
            )
            assert reply["sweep_done"]
        assert box["finished"] and "error" not in box
        assert as_docs(box["results"]) == reference_docs(misses)
        stats = coordinator.stats()
        assert stats["counters"]["points_completed"] == len(misses)
        assert stats["counters"]["results_duplicate"] == 3
        assert stats["workers"]["w-helper"]["points"] == 3
        assert stats["workers"]["w-slow"]["duplicates"] == 3
        # Every point executed into the cache exactly once, duplicates
        # never re-stored.
        assert coordinator.cache.writes == len(misses)

    def test_no_reissue_before_threshold(self, tmp_path):
        coordinator = make_coordinator(
            tmp_path, shard_size=99, straggler_after_s=30.0
        )
        misses = make_misses(kernels=("daxpy",))
        with fabric_sweep(coordinator, misses) as box:
            doc = coordinator.claim(claim_body("w1", CODE_VERSION))
            idle = coordinator.claim(claim_body("w2", CODE_VERSION))
            assert idle["lease"] is None and idle["idle"] is True
            coordinator.submit_results(
                results_body(
                    "w1", doc["lease"], CODE_VERSION, execute_items(doc["shard"])
                )
            )
        assert box["finished"] and "error" not in box
        assert coordinator.stats()["counters"]["shards_reissued"] == 0

    def test_live_lease_cap_blocks_reissue(self, tmp_path):
        coordinator = make_coordinator(
            tmp_path,
            shard_size=99,
            straggler_after_s=0.05,
            max_leases_per_shard=1,
        )
        misses = make_misses(kernels=("daxpy",))
        with fabric_sweep(coordinator, misses) as box:
            doc = coordinator.claim(claim_body("w1", CODE_VERSION))
            time.sleep(0.15)
            idle = coordinator.claim(claim_body("w2", CODE_VERSION))
            assert idle["lease"] is None  # cap reached, no re-issue
            coordinator.submit_results(
                results_body(
                    "w1", doc["lease"], CODE_VERSION, execute_items(doc["shard"])
                )
            )
        assert box["finished"] and "error" not in box
        assert coordinator.stats()["counters"]["shards_reissued"] == 0


# ---------------------------------------------------------------------------
# HTTP conformance: response shapes and status codes over a real server
# ---------------------------------------------------------------------------
class TestHTTPConformance:
    def test_idle_document_shape(self, fabric_env):
        svc, _srv, client = fabric_env()
        doc = client.lease(claim_body("w1", svc.fabric.code_version))
        assert set(doc) == {"protocol", "lease", "idle", "retry_s"}
        assert doc["protocol"] == PROTOCOL_VERSION
        assert doc["lease"] is None and doc["idle"] is True
        assert doc["retry_s"] > 0

    def test_lease_and_results_document_shapes(self, fabric_env):
        svc, _srv, client = fabric_env(shard_size=99)
        misses = make_misses(kernels=("daxpy",))
        with fabric_sweep(svc.fabric, misses) as box:
            doc = client.lease(claim_body("w1", svc.fabric.code_version))
            assert set(doc) == {
                "protocol", "lease", "sweep", "shard",
                "deadline_unix", "heartbeat_s", "trace",
            }
            assert doc["protocol"] == PROTOCOL_VERSION
            assert doc["deadline_unix"] > time.time()
            assert doc["heartbeat_s"] == pytest.approx(
                svc.fabric.lease_ttl_s / 3.0
            )
            for item in doc["shard"]:
                assert set(item) == {"point", "loop", "prior"}
            renewed = client.lease(renew_body("w1", doc["lease"]))
            assert set(renewed) == {
                "protocol", "lease", "deadline_unix", "heartbeat_s",
            }
            reply = client.results(
                results_body(
                    "w1", doc["lease"], svc.fabric.code_version,
                    execute_items(doc["shard"], doc.get("trace")),
                )
            )
            assert set(reply) == {
                "protocol", "accepted", "duplicates", "sweep_done",
            }
            assert reply["accepted"] == len(misses)
            assert reply["sweep_done"] is True
        assert box["finished"] and "error" not in box

    def test_error_status_codes(self, fabric_env):
        svc, _srv, client = fabric_env()
        version = svc.fabric.code_version

        with pytest.raises(ClientError) as err:
            client.lease({"protocol": 99, "worker": "w1", "code_version": version})
        assert err.value.status == 400 and "protocol" in str(err.value)

        with pytest.raises(ClientError) as err:
            client.lease({**claim_body("w1", version), "extra": 1})
        assert err.value.status == 400

        with pytest.raises(ClientError) as err:
            client.lease(claim_body("w1", "not-the-coordinator-version"))
        assert err.value.status == 409 and "mismatch" in str(err.value)

        with pytest.raises(ClientError) as err:
            client.lease(renew_body("w1", "l99999"))
        assert err.value.status == 410

        with pytest.raises(ClientError) as err:
            client.results(
                results_body("w1", "l99999", version, GOLDEN_RESULTS["results"])
            )
        assert err.value.status == 410

        with pytest.raises(ClientError) as err:
            client.results(
                results_body("w1", "l99999", "wrong", GOLDEN_RESULTS["results"])
            )
        assert err.value.status == 409

    def test_stats_exposes_fabric_block(self, fabric_env):
        _svc, _srv, client = fabric_env()
        block = client.stats()["fabric"]
        assert block["protocol"] == PROTOCOL_VERSION
        assert block["sweeps_active"] == 0
        assert set(block["counters"]) == {
            "leases_issued", "leases_renewed", "leases_expired",
            "shards_reissued", "points_completed", "results_duplicate",
            "results_rejected",
        }


# ---------------------------------------------------------------------------
# Fault injection end-to-end (the chaos harness over real HTTP)
# ---------------------------------------------------------------------------
class TestChaosE2E:
    def test_worker_death_mid_shard_converges(self, fabric_env):
        # Straggler re-issue is pushed out of reach so recovery *must*
        # come from lease expiry (the worker-death path under test).
        svc, srv, _client = fabric_env(
            shard_size=2, lease_ttl_s=0.5, straggler_after_s=30.0
        )
        misses = make_misses()  # 6 points -> 3 shards
        with fabric_sweep(svc.fabric, misses) as box:
            failer = spawn(
                FabricWorker(
                    srv.url,
                    worker_id="failer",
                    code_version=svc.fabric.code_version,
                    fail_after=3,  # dies executing its second shard
                    poll_s=0.02,
                )
            )
            wait_for(
                lambda: svc.fabric.stats()["workers"]
                .get("failer", {})
                .get("leases", 0)
                >= 1,
                message="the failing worker to claim a shard",
            )
            honest = spawn(
                FabricWorker(
                    srv.url,
                    worker_id="honest",
                    code_version=svc.fabric.code_version,
                    idle_exit_s=1.5,
                    poll_s=0.02,
                )
            )
            failer.join()
            honest.join()
        assert box["finished"] and "error" not in box
        assert isinstance(failer.error, WorkerDied)
        assert honest.error is None
        assert as_docs(box["results"]) == reference_docs(misses)
        counters = svc.fabric.stats()["counters"]
        assert counters["points_completed"] == len(misses)
        assert counters["leases_expired"] >= 1
        assert counters["shards_reissued"] >= 1
        assert svc.cache.writes == len(misses)

    def test_stall_past_deadline_loses_to_the_reissue(self, fabric_env):
        # Straggler re-issue is out of reach: the stalled shard can only
        # come back through lease expiry.
        svc, srv, _client = fabric_env(
            shard_size=2, lease_ttl_s=0.4, straggler_after_s=30.0
        )
        misses = make_misses(kernels=("daxpy", "dot"))  # 4 points, 2 shards
        with fabric_sweep(svc.fabric, misses) as box:
            staller = spawn(
                ChaosWorker(
                    srv.url,
                    worker_id="staller",
                    code_version=svc.fabric.code_version,
                    stall_before_post_s=1.2,
                    max_shards=1,
                    idle_exit_s=2.0,
                    poll_s=0.02,
                )
            )
            wait_for(
                lambda: svc.fabric.stats()["workers"]
                .get("staller", {})
                .get("leases", 0)
                >= 1,
                message="the stalling worker to claim a shard",
            )
            drain(svc.fabric)
            staller.join()
        assert box["finished"] and "error" not in box
        assert staller.error is None
        assert staller.worker.chaos.stalls == 1
        # The zombie's late post bounced with 410; the re-issued copy won.
        assert staller.worker.chaos.rejections == [410]
        assert staller.worker.stats.rejected_posts == 1
        assert as_docs(box["results"]) == reference_docs(misses)
        counters = svc.fabric.stats()["counters"]
        assert counters["leases_expired"] >= 1
        assert counters["shards_reissued"] >= 1
        assert counters["points_completed"] == len(misses)
        assert svc.cache.writes == len(misses)

    def test_double_posts_bounce_and_change_nothing(self, fabric_env):
        svc, srv, _client = fabric_env(shard_size=2)
        misses = make_misses(kernels=("daxpy", "dot"))  # 2 shards
        with fabric_sweep(svc.fabric, misses) as box:
            doubler = spawn(
                ChaosWorker(
                    srv.url,
                    worker_id="doubler",
                    code_version=svc.fabric.code_version,
                    double_post=True,
                    idle_exit_s=1.0,
                    poll_s=0.02,
                )
            )
            doubler.join()
        assert box["finished"] and "error" not in box
        chaos = doubler.worker.chaos
        assert doubler.error is None
        assert chaos.double_posts == 2
        assert len(chaos.rejections) == 2
        # A duplicate post answers 409 while the sweep is live; the very
        # last one may race sweep teardown and see 410 — never a commit.
        assert chaos.rejections[0] == 409
        assert set(chaos.rejections) <= {409, 410}
        assert as_docs(box["results"]) == reference_docs(misses)
        counters = svc.fabric.stats()["counters"]
        assert counters["points_completed"] == len(misses)
        assert counters["results_duplicate"] == 0
        assert counters["results_rejected"] == 2
        assert svc.cache.writes == len(misses)

    def test_corrupt_posts_rejected_then_recovered(self, fabric_env):
        svc, srv, _client = fabric_env(shard_size=2)
        misses = make_misses(kernels=("daxpy", "dot"))  # 2 shards
        with fabric_sweep(svc.fabric, misses) as box:
            corruptor = spawn(
                ChaosWorker(
                    srv.url,
                    worker_id="corruptor",
                    code_version=svc.fabric.code_version,
                    corrupt=lambda results: [
                        dict(item, result={"ii": 1}) for item in results
                    ],
                    corrupt_recover=True,
                    idle_exit_s=1.0,
                    poll_s=0.02,
                )
            )
            corruptor.join()
        assert box["finished"] and "error" not in box
        chaos = corruptor.worker.chaos
        assert corruptor.error is None
        assert chaos.corrupt_posts == 2
        assert chaos.rejections == [400, 400]
        assert as_docs(box["results"]) == reference_docs(misses)
        counters = svc.fabric.stats()["counters"]
        assert counters["points_completed"] == len(misses)
        assert counters["results_rejected"] == 2
        assert svc.cache.writes == len(misses)

    def test_menagerie_converges_byte_identical(self, fabric_env):
        """Every failure mode at once; the sweep must still converge."""
        svc, srv, _client = fabric_env(
            shard_size=1, lease_ttl_s=0.5, straggler_after_s=0.5
        )
        version = svc.fabric.code_version
        misses = make_misses(kernels=("daxpy", "dot", "fir4", "vadd"))  # 8 pts
        with fabric_sweep(svc.fabric, misses) as box:
            staller = spawn(
                ChaosWorker(
                    srv.url, worker_id="staller", code_version=version,
                    stall_before_post_s=0.9, max_shards=1, idle_exit_s=2.0,
                    poll_s=0.02,
                )
            )
            wait_for(
                lambda: svc.fabric.stats()["workers"]
                .get("staller", {})
                .get("leases", 0)
                >= 1,
                message="the stalling worker to claim a shard",
            )
            failer = spawn(
                FabricWorker(
                    srv.url, worker_id="failer", code_version=version,
                    fail_after=2, poll_s=0.02,
                )
            )
            # Let the failer die before the mop-up starts, so its death
            # is guaranteed to happen while shards are still on offer.
            wait_for(
                lambda: failer.error is not None,
                message="the failing worker to die",
            )
            doubler = spawn(
                ChaosWorker(
                    srv.url, worker_id="doubler", code_version=version,
                    double_post=True, idle_exit_s=1.5, poll_s=0.02,
                )
            )
            drain(svc.fabric)
            staller.join()
            failer.join()
            doubler.join()
        assert box["finished"] and "error" not in box
        assert isinstance(failer.error, WorkerDied)
        assert staller.error is None and doubler.error is None
        # Convergence: complete, byte-identical, exactly-once storage.
        assert as_docs(box["results"]) == reference_docs(misses)
        stats = svc.fabric.stats()
        assert stats["sweeps_active"] == 0
        assert stats["counters"]["points_completed"] == len(misses)
        assert svc.cache.writes == len(misses)
        accepted = sum(w["points"] for w in stats["workers"].values())
        assert accepted == len(misses)


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------
class TestWorker:
    def test_client_from_url_variants(self):
        assert client_from_url("http://example.com:9000").base_url == (
            "http://example.com:9000"
        )
        assert client_from_url("example.com:9000").base_url == (
            "http://example.com:9000"
        )
        assert client_from_url("example.com").base_url.endswith(":8537")
        with pytest.raises(ValueError, match="scheme"):
            client_from_url("https://example.com")

    def test_version_mismatch_is_fatal(self, fabric_env):
        _svc, srv, _client = fabric_env()
        worker = FabricWorker(srv.url, code_version="bogus", poll_s=0.01)
        with pytest.raises(ClientError) as err:
            worker.run()
        assert err.value.status == 409

    def test_unreachable_coordinator(self):
        worker = FabricWorker("127.0.0.1:1", wait_healthy_s=0.2, poll_s=0.01)
        with pytest.raises(ClientError, match="never became healthy"):
            worker.run()

    def test_max_shards_stops_the_loop(self, fabric_env):
        svc, srv, _client = fabric_env(shard_size=2)
        misses = make_misses()  # 3 shards
        with fabric_sweep(svc.fabric, misses) as box:
            stats = FabricWorker(
                srv.url,
                code_version=svc.fabric.code_version,
                max_shards=1,
                poll_s=0.02,
            ).run()
            assert stats.shards == 1 and stats.points == 2
            drain(svc.fabric)
        assert box["finished"] and "error" not in box
        assert as_docs(box["results"]) == reference_docs(misses)

    def test_idle_exit(self, fabric_env):
        svc, srv, _client = fabric_env()
        stats = FabricWorker(
            srv.url,
            code_version=svc.fabric.code_version,
            idle_exit_s=0.2,
            poll_s=0.02,
        ).run()
        assert stats.shards == 0 and stats.idle_polls >= 1


# ---------------------------------------------------------------------------
# Service integration: distributed grids, metrics, figure byte-identity
# ---------------------------------------------------------------------------
class TestServiceDistributed:
    def test_smoke_grid_distributed_byte_identical(self, fabric_env, tmp_path):
        svc, srv, client = fabric_env(shard_size=2)
        worker = spawn(
            FabricWorker(
                srv.url,
                code_version=svc.fabric.code_version,
                idle_exit_s=2.0,
                poll_s=0.02,
            )
        )
        doc = client.sweep(grid="smoke", quick=True, distributed=True)
        assert doc["status"] == "done"
        assert doc["distributed"] is True
        worker.join()
        assert worker.error is None

        reference_ctx = ExperimentContext(
            cache=ResultCache(tmp_path / "ref-cache", code_version=CODE_VERSION),
            jobs=2,
        )
        assert doc["output"] == GRIDS["smoke"].run(reference_ctx, True)

        assert client.stats()["fabric"]["counters"]["points_completed"] == 4
        with urllib.request.urlopen(f"{srv.url}/metrics", timeout=10) as resp:
            families = parse_metrics(resp.read().decode())
        for family in (
            "fabric_leases_issued_total",
            "fabric_leases_expired_total",
            "fabric_shards_reissued_total",
            "fabric_points_completed_total",
            "fabric_results_duplicate_total",
            "fabric_results_rejected_total",
            "fabric_sweeps_active",
            "fabric_workers_seen",
            "fabric_lease_latency_seconds",
        ):
            assert family in families, f"missing metric family {family}"

    def test_reduced_fig8_grid_byte_identical(self, tmp_path):
        """The acceptance invariant on a real figure grid: a sweep run
        through the fabric reproduces the local ``--jobs`` path bit for
        bit (reduced dimensions keep this in test-suite time)."""
        dims = dict(bus_counts=(1,), latencies=(1,))
        suite = specfp95_suite()[:2]
        local_ctx = ExperimentContext(
            suite=suite,
            cache=ResultCache(tmp_path / "local", code_version=CODE_VERSION),
            jobs=2,
        )
        local_points = run_fig8(local_ctx, **dims)

        coordinator = FabricCoordinator(
            cache=ResultCache(tmp_path / "fabric", code_version=CODE_VERSION),
            shard_size=8,
            sweep_timeout_s=120.0,
        )
        fabric_ctx = ExperimentContext(
            suite=suite, cache=coordinator.cache, executor=coordinator.execute
        )
        stop = threading.Event()
        loops = [
            threading.Thread(
                target=_serve_until,
                args=(coordinator, stop),
                kwargs={"worker_id": f"loop-{i}"},
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in loops:
            thread.start()
        try:
            fabric_points = run_fig8(fabric_ctx, **dims)
        finally:
            stop.set()
            for thread in loops:
                thread.join(10.0)
        assert fabric_points == local_points
        assert fig8_rows(fabric_points) == fig8_rows(local_points)
        counters = coordinator.stats()["counters"]
        assert counters["points_completed"] == coordinator.cache.writes


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------
def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestFabricCli:
    def test_worker_cli_idle_exit(self, tmp_path, capsys):
        # The CLI worker announces this process's default code version,
        # so the service must run a default-version cache to accept it.
        svc = SchedulingService(
            cache=ResultCache(tmp_path / "cli-cache"), workers=0
        )
        srv = ServiceServer(svc, port=0)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        try:
            main(
                ["worker", "--coordinator", srv.url, "--idle-exit", "0.2",
                 "--quiet"]
            )
        finally:
            srv.shutdown()
            srv.server_close()
            svc.close()
        out = capsys.readouterr().out
        assert "0 shard(s)" in out

    def test_sweep_coordinator_requires_distributed(self):
        with pytest.raises(SystemExit, match="requires --distributed"):
            main(["sweep", "smoke", "--coordinator", "http://127.0.0.1:1"])

    def test_sweep_cli_coordinator_mode(self, fabric_env, tmp_path, capsys):
        svc, srv, _client = fabric_env(shard_size=2)
        worker = spawn(
            FabricWorker(
                srv.url,
                code_version=svc.fabric.code_version,
                idle_exit_s=2.0,
                poll_s=0.02,
            )
        )
        out_path = tmp_path / "fabric-smoke.txt"
        main(
            [
                "sweep", "smoke", "--quick", "--distributed",
                "--coordinator", srv.url, "--out", str(out_path),
            ]
        )
        worker.join()
        assert worker.error is None
        capsys.readouterr()

        ref_path = tmp_path / "local-smoke.txt"
        reference_ctx = ExperimentContext(
            cache=ResultCache(tmp_path / "ref-cache", code_version=CODE_VERSION),
            jobs=1,
        )
        ref_path.write_text(GRIDS["smoke"].run(reference_ctx, True) + "\n")
        assert out_path.read_text() == ref_path.read_text()

    def test_sweep_cli_embedded_mode(self, tmp_path, capsys):
        port = _free_port()
        worker = spawn(
            FabricWorker(
                f"127.0.0.1:{port}",
                wait_healthy_s=20.0,
                idle_exit_s=10.0,
                poll_s=0.02,
            )
        )
        out_fabric = tmp_path / "fabric-smoke.txt"
        main(
            [
                "sweep", "smoke", "--quick", "--distributed",
                "--port", str(port), "--timeout", "60",
                "--out", str(out_fabric),
            ]
        )
        # The embedded coordinator shuts down with the sweep; the worker
        # sees 503/transport failure and exits cleanly.
        worker.join()
        assert worker.error is None
        assert worker.stats is not None and worker.stats.points == 4
        capsys.readouterr()

        out_local = tmp_path / "local-smoke.txt"
        main(["sweep", "smoke", "--quick", "--out", str(out_local)])
        capsys.readouterr()
        assert out_fabric.read_text() == out_local.read_text()
