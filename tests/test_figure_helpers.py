"""Unit tests for the figure data-shaping helpers (no scheduling involved)."""

from repro.core.selective import UnrollPolicy
from repro.experiments.fig4 import Fig4Point, fig4_rows
from repro.experiments.fig8 import Fig8Point, average_ipc, fig8_rows
from repro.experiments.fig9 import Fig9Point, best_speedup, fig9_rows
from repro.experiments.fig10 import Fig10Point, fig10_rows
from repro.perf.speedup import SpeedupReport


class TestFig4Rows:
    def test_rows_carry_all_fields(self):
        points = [Fig4Point(2, "bsa", 1, 4, 0.95)]
        rows = fig4_rows(points)
        assert rows == [
            {
                "clusters": 2,
                "algorithm": "bsa",
                "bus_latency": 1,
                "buses": 4,
                "relative_ipc": 0.95,
            }
        ]


class TestFig8Helpers:
    def points(self):
        return [
            Fig8Point("a", 4, 1, 1, UnrollPolicy.NONE, 2.0),
            Fig8Point("b", 4, 1, 1, UnrollPolicy.NONE, 4.0),
            Fig8Point("a", 4, 1, 1, UnrollPolicy.ALL, 5.0),
            Fig8Point("b", 4, 1, 1, UnrollPolicy.ALL, 7.0),
        ]

    def test_average_groups_by_scenario(self):
        rows = average_ipc(self.points())
        means = {(r["policy"]): r["mean_ipc"] for r in rows}
        assert means[str(UnrollPolicy.NONE)] == 3.0
        assert means[str(UnrollPolicy.ALL)] == 6.0

    def test_rows_format(self):
        rows = fig8_rows(self.points())
        assert len(rows) == 4
        assert rows[0]["program"] == "a"
        assert rows[0]["policy"] == str(UnrollPolicy.NONE)


class TestFig9Helpers:
    def report(self, ipc_c, cyc_c):
        return SpeedupReport("4c", ipc_c, 5.0, cyc_c, 1500.0)

    def test_best_speedup(self):
        points = [
            Fig9Point(2, 1, "NU", self.report(4.0, 750.0)),  # 0.8 * 2 = 1.6
            Fig9Point(4, 1, "SU", self.report(4.8, 420.0)),  # 0.96*3.57 = 3.43
        ]
        best = best_speedup(points)
        assert best.n_clusters == 4
        assert best.report.speedup > 3

    def test_rows_expose_ratios(self):
        rows = fig9_rows([Fig9Point(4, 1, "SU", self.report(5.0, 750.0))])
        assert rows[0]["ipc_ratio"] == 1.0
        assert rows[0]["clock_ratio"] == 2.0
        assert rows[0]["speedup"] == 2.0


class TestFig10Rows:
    def test_rows_format(self):
        points = [Fig10Point(4, 1, 1, UnrollPolicy.SELECTIVE, 1.5, 1.2)]
        rows = fig10_rows(points)
        assert rows[0]["total_ops_ratio"] == 1.5
        assert rows[0]["useful_ops_ratio"] == 1.2
        assert rows[0]["policy"] == str(UnrollPolicy.SELECTIVE)
