"""End-to-end tests for the loop front door.

The acceptance criterion of the front-door work, verbatim: a user
``.loop`` program runs parse -> schedule (including the ``exact``
scheduler) -> register-renamed codegen -> simulate with simulated
cycles equal to ``(NITER + SC - 1) * II`` — via the CLI, via ``POST
/schedule`` with an inline program, and via a distributed fabric sweep
over a :func:`~repro.experiments.common.program_grid`.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.cli import main
from repro.codegen import rename_kernel
from repro.core.selective import UnrollPolicy
from repro.core.verify import verify_schedule
from repro.errors import ParseError
from repro.experiments import ExperimentContext
from repro.experiments.common import program_grid
from repro.fabric import PROTOCOL_VERSION, FabricCoordinator, FabricGone
from repro.ir.frontend import parse_file, parse_program
from repro.runner import ResultCache, make_scheduler
from repro.runner.engine import _run_batch
from repro.service import (
    ClientError,
    SchedulingService,
    ServiceClient,
    ServiceServer,
)
from repro.sim import crosscheck_schedule

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "loops"
DAXPY = EXAMPLES / "daxpy.loop"
DOTPROD = EXAMPLES / "dotprod.loop"
SMOOTH = EXAMPLES / "smooth.loop"

USER_PROGRAM = """\
loop mine
trip 64

BB0:
    k = live

BB1:
    a = load a[i]
    b = load b[i]
    p = fmul a, k
    q = fadd p, b
    s = fadd q, s@1
    store s, out[i]

BB2:
"""


# ---------------------------------------------------------------------------
# Library path: parse -> schedule -> rename -> simulate
# ---------------------------------------------------------------------------
class TestLibraryPath:
    @pytest.mark.parametrize("scheduler_name", ["bsa", "exact"])
    @pytest.mark.parametrize(
        "config", [unified_config(), two_cluster_config(1, 1)], ids=["u", "2c"]
    )
    def test_full_pipeline_hits_analytic_cycles(self, scheduler_name, config):
        loop = parse_program(USER_PROGRAM)
        assert loop.trip_count == 64
        sched = make_scheduler(scheduler_name, config).schedule(loop.graph)
        verify_schedule(sched)

        renamed = rename_kernel(sched)
        assert renamed.loop == "mine"
        assert renamed.kuf >= 1

        check = crosscheck_schedule(sched, loop.trip_count)
        expected = (loop.trip_count + sched.stage_count - 1) * sched.ii
        assert check.analytic_cycles == expected
        assert check.simulated_cycles == expected
        assert check.cycle_divergence == 0

    def test_exact_ii_never_worse_than_heuristic(self):
        loop = parse_program(USER_PROGRAM)
        config = two_cluster_config(1, 1)
        bsa = make_scheduler("bsa", config).schedule(loop.graph)
        exact = make_scheduler("exact", config).schedule(loop.graph)
        assert exact.ii <= bsa.ii

    @pytest.mark.parametrize("path", [DAXPY, DOTPROD, SMOOTH], ids=lambda p: p.stem)
    def test_corpus_files_simulate_exactly(self, path):
        loop = parse_file(path)
        sched = make_scheduler("bsa", two_cluster_config(1, 1)).schedule(loop.graph)
        verify_schedule(sched)
        rename_kernel(sched)
        check = crosscheck_schedule(sched, loop.trip_count)
        assert check.cycle_divergence == 0


# ---------------------------------------------------------------------------
# CLI path
# ---------------------------------------------------------------------------
class TestCliPath:
    def test_schedule_loop_file(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_VLIW_CACHE", str(tmp_path / "cache"))
        main(["schedule", str(DAXPY)])
        out = capsys.readouterr().out
        assert "daxpy" in out
        assert "II=" in out

    def test_simulate_loop_file_prints_renamed_kernel(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_VLIW_CACHE", str(tmp_path / "cache"))
        main(["simulate", str(DAXPY)])
        out = capsys.readouterr().out
        assert "(divergence" not in out
        assert "renamed kernel of 'daxpy'" in out
        assert "copy 0:" in out

    def test_user_file_from_tmp(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_VLIW_CACHE", str(tmp_path / "cache"))
        path = tmp_path / "mine.loop"
        path.write_text(USER_PROGRAM)
        main(["simulate", str(path)])
        out = capsys.readouterr().out
        assert "(divergence" not in out
        assert "renamed kernel of 'mine'" in out

    def test_parse_error_exits_with_position(self, tmp_path):
        path = tmp_path / "broken.loop"
        path.write_text("BB1:\n    x = frob a\nBB2:\n")
        with pytest.raises(SystemExit) as err:
            main(["schedule", str(path)])
        assert f"{path}:2:9:" in str(err.value)

    def test_unknown_kernel_still_suggests(self):
        with pytest.raises(SystemExit) as err:
            main(["schedule", "daxpi"])
        assert "did you mean 'daxpy'" in str(err.value)


# ---------------------------------------------------------------------------
# Service path
# ---------------------------------------------------------------------------
@pytest.fixture()
def service_client(tmp_path):
    service = SchedulingService(
        cache=ResultCache(tmp_path / "svc-cache", code_version="test-frontdoor"),
        workers=0,
    )
    server = ServiceServer(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        yield ServiceClient(port=server.port, timeout=60.0)
    finally:
        server.shutdown()


class TestServicePath:
    def test_inline_program_schedules(self, service_client):
        payload = service_client.schedule(
            {"program": USER_PROGRAM, "scheduler": "bsa"}, wait=True
        )
        rendered = payload["result"]["rendered"]
        assert "mine" in rendered
        assert "II=" in rendered

    def test_program_and_kernel_are_exclusive(self, service_client):
        with pytest.raises(ClientError) as err:
            service_client.schedule(
                {"kernel": "daxpy", "program": USER_PROGRAM}, wait=True
            )
        assert err.value.status == 400
        with pytest.raises(ClientError) as err:
            service_client.schedule({}, wait=True)
        assert err.value.status == 400

    def test_parse_error_is_400_with_position(self, service_client):
        with pytest.raises(ClientError) as err:
            service_client.schedule(
                {"program": "BB1:\n    x = frob a\nBB2:\n"}, wait=True
            )
        assert err.value.status == 400
        assert "<request>:2:9:" in str(err.value)

    def test_byte_identical_for_identical_programs(self, service_client):
        first = service_client.schedule({"program": USER_PROGRAM}, wait=True)
        second = service_client.schedule({"program": USER_PROGRAM}, wait=True)
        assert first["result"]["rendered"] == second["result"]["rendered"]


# ---------------------------------------------------------------------------
# Distributed path: a user-program grid over the fabric
# ---------------------------------------------------------------------------
def _claim_body(worker, code_version):
    return {
        "protocol": PROTOCOL_VERSION,
        "worker": worker,
        "code_version": code_version,
    }


def _serve_until(coordinator, stop, worker_id):
    """A minimal honest worker loop over the coordinator's direct API."""
    while not stop.is_set():
        doc = coordinator.claim(_claim_body(worker_id, coordinator.code_version))
        if not doc.get("lease"):
            time.sleep(0.005)
            continue
        results = []
        for item in doc["shard"]:
            (_key, payload, meta) = _run_batch([item], None, None, doc.get("trace"))[0]
            results.append({"point": item["point"], "result": payload, "meta": meta})
        try:
            coordinator.submit_results(
                {
                    "protocol": PROTOCOL_VERSION,
                    "worker": worker_id,
                    "lease": doc["lease"],
                    "code_version": coordinator.code_version,
                    "results": results,
                }
            )
        except FabricGone:
            pass


class TestDistributedPath:
    def test_program_grid_sweeps_over_the_fabric(self, tmp_path):
        loop = parse_program(USER_PROGRAM)
        configs = [unified_config(), two_cluster_config(1, 1)]
        grid = program_grid(
            loop,
            configs,
            schedulers=("bsa",),
            policies=(UnrollPolicy.NONE, UnrollPolicy.ALL),
            simulate=True,
        )
        assert all(point.program for point, _loop in grid)

        local_ctx = ExperimentContext(
            cache=ResultCache(tmp_path / "local", code_version="test-frontdoor")
        )
        local_ctx.run_grid(list(grid))

        coordinator = FabricCoordinator(
            cache=ResultCache(tmp_path / "fabric", code_version="test-frontdoor"),
            shard_size=2,
            sweep_timeout_s=120.0,
        )
        fabric_ctx = ExperimentContext(
            cache=coordinator.cache, executor=coordinator.execute
        )
        stop = threading.Event()
        loops = [
            threading.Thread(
                target=_serve_until,
                args=(coordinator, stop, f"frontdoor-{i}"),
                daemon=True,
            )
            for i in range(2)
        ]
        for thread in loops:
            thread.start()
        try:
            fabric_ctx.run_grid(list(grid))
        finally:
            stop.set()
            for thread in loops:
                thread.join(10.0)

        assert set(fabric_ctx.sim_memo) == set(local_ctx.sim_memo)
        assert len(fabric_ctx.sim_memo) == len(grid)
        for key, check in fabric_ctx.sim_memo.items():
            local = local_ctx.sim_memo[key]
            assert check.simulated_cycles == local.simulated_cycles
            assert check.analytic_cycles == local.analytic_cycles
            assert check.cycle_divergence == 0
        counters = coordinator.stats()["counters"]
        assert counters["points_completed"] == len(grid)
