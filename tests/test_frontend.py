"""Tests for the textual loop-IR frontend (repro.ir.frontend).

Covers the front-door acceptance criteria:

* parsed programs are structurally identical to the builder-made
  graphs they describe (node-for-node, edge-for-edge);
* every malformed construct is rejected with a :class:`ParseError`
  carrying the exact 1-based line and column;
* serialisation round-trips: ``graph_from_dict(graph_to_dict(g))`` is
  content-identical for frontend-parsed programs (property-tested over
  generated programs);
* :func:`graph_content_hash` is stable across process restarts, so
  cache keys for user programs survive ``PYTHONHASHSEED`` changes.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.ir.ddg import DepKind
from repro.ir.frontend import LOOP_SUFFIX, parse_file, parse_program
from repro.ir.serialize import dumps, graph_from_dict, graph_to_dict, loads
from repro.runner.scenario import graph_content_hash
from repro.workloads.kernels import daxpy as build_daxpy

EXAMPLES = Path(__file__).resolve().parent.parent / "examples" / "loops"

DAXPY_TEXT = """\
loop daxpy
trip 100

BB0:
    a = live

BB1:
    x  = load x[i]
    y  = load y[i]
    ax = fmul x, a
    s  = fadd ax, y
    store s, y[i]

BB2:
"""

DOT_TEXT = """\
loop dot
BB1:
    x = load x[i]
    y = load y[i]
    m = fmul x, y
    s = fadd m, s@1
BB2:
"""


def edge_set(graph):
    return {
        (e.src, e.dst, e.kind, e.distance) for e in graph.edges
    }


class TestParseCorrectness:
    def test_daxpy_matches_builder_graph(self):
        loop = parse_program(DAXPY_TEXT)
        built = build_daxpy()
        parsed = loop.graph
        assert loop.trip_count == 100
        assert parsed.name == "daxpy"
        assert len(parsed) == len(built)
        assert sorted(n.opcode.name for n in parsed.operations()) == sorted(
            n.opcode.name for n in built.operations()
        )
        # Same dependence structure up to node numbering: both number
        # nodes in textual/builder order, which coincides here.
        assert edge_set(parsed) == edge_set(built)

    def test_recurrence_distance_and_recmii(self):
        loop = parse_program(DOT_TEXT)
        graph = loop.graph
        carried = [e for e in graph.edges if e.distance == 1]
        assert len(carried) == 1
        (edge,) = carried
        # s = fadd m, s@1 — the fadd feeds itself at distance 1.
        assert edge.src == edge.dst
        assert edge.kind is DepKind.FLOW

    def test_default_trip_count(self):
        assert parse_program(DOT_TEXT).trip_count == 100

    def test_order_statement_becomes_memory_edge(self):
        text = (
            "loop t\nBB1:\n"
            "    p = load a[i]\n"
            "    q = load b[i]\n"
            "    store q, c[i]\n"
            "    order p, q\n"
            "BB2:\n"
        )
        graph = parse_program(text).graph
        kinds = [e.kind for e in graph.edges]
        assert DepKind.MEM in kinds

    def test_parse_file_uses_stem_as_default_name(self, tmp_path):
        path = tmp_path / ("mine" + LOOP_SUFFIX)
        path.write_text(DOT_TEXT.replace("loop dot\n", ""))
        loop = parse_file(path)
        assert loop.graph.name == "mine"

    def test_corpus_parses(self):
        files = sorted(EXAMPLES.glob("*.loop"))
        assert len(files) >= 3
        for path in files:
            loop = parse_file(path)
            assert len(loop.graph) > 0

    def test_negative_corpus_rejected_with_positions(self):
        files = sorted((EXAMPLES / "bad").glob("*.loop"))
        assert len(files) >= 6
        for path in files:
            with pytest.raises(ParseError) as err:
                parse_file(path)
            assert err.value.line >= 1
            assert err.value.col >= 1
            assert f"{path}:{err.value.line}:{err.value.col}:" in str(err.value)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text, line, col, fragment",
        [
            ("BB1:\n    x = bogus a\nBB2:\n", 2, 9, "unknown opcode"),
            ("BB1:\n    x = fadd a, b\nBB2:\n", 2, 14, "undefined value"),
            (
                "BB1:\n    x = load a[i]\n    x = load b[i]\nBB2:\n",
                3,
                5,
                "duplicate definition",
            ),
            (
                "BB1:\n    x = load a[i]\n    y = fadd x, x@0\nBB2:\n",
                3,
                17,
                "distance must be >= 1",
            ),
            (
                "BB1:\n    y = fadd s, s\n    s = load a[i]\nBB2:\n",
                2,
                14,
                "before its definition",
            ),
            ("BB1:\n    store = load a[i]\nBB2:\n", 2, 11, "malformed operand"),
            ("BB0:\n    a = live\nBB0:\nBB2:\n", 3, 1, None),
            ("BB1:\nBB2:\n    x = load a[i]\n", 3, 5, "BB2 must be empty"),
            ("trip 0\nBB1:\n    x = load a[i]\nBB2:\n", 1, 1, "trip count"),
        ],
    )
    def test_position_and_message(self, text, line, col, fragment):
        with pytest.raises(ParseError) as err:
            parse_program(text, source="<t>")
        assert err.value.source == "<t>"
        assert (err.value.line, err.value.col) == (line, col)
        if fragment:
            assert fragment in str(err.value)

    def test_live_in_with_distance_rejected(self):
        text = "BB0:\n    a = live\nBB1:\n    x = fadd a@1, a\nBB2:\n"
        with pytest.raises(ParseError):
            parse_program(text)


# ---------------------------------------------------------------------------
# Round-trip property: serialisation preserves content identity
# ---------------------------------------------------------------------------
@st.composite
def loop_programs(draw):
    """Small random-but-valid .loop programs: load/compute chains with
    optional carried self-uses, closed by a store."""
    n_loads = draw(st.integers(min_value=1, max_value=3))
    n_ops = draw(st.integers(min_value=1, max_value=6))
    lines = ["loop gen", "BB1:"]
    names = []
    for i in range(n_loads):
        names.append(f"v{i}")
        lines.append(f"    v{i} = load a{i}[i]")
    for i in range(n_ops):
        opcode = draw(st.sampled_from(["fadd", "fmul", "fsub", "iadd"]))
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        dist = draw(st.integers(min_value=0, max_value=2))
        dest = f"t{i}"
        carry = f"{dest}@{dist}" if dist else a
        lines.append(f"    {dest} = {opcode} {carry}, {b}")
        names.append(dest)
    lines.append(f"    store {names[-1]}, out[i]")
    lines.append("BB2:")
    return "\n".join(lines) + "\n"


class TestRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(loop_programs())
    def test_serialize_round_trip_preserves_content_hash(self, text):
        graph = parse_program(text).graph
        doc = graph_to_dict(graph)
        back = graph_from_dict(loads(dumps(doc)))
        assert graph_to_dict(back) == doc
        assert graph_content_hash(back) == graph_content_hash(graph)
        assert edge_set(back) == edge_set(graph)

    def test_corpus_round_trip(self):
        for path in sorted(EXAMPLES.glob("*.loop")):
            graph = parse_file(path).graph
            back = graph_from_dict(graph_to_dict(graph))
            assert graph_to_dict(back) == graph_to_dict(graph)


# ---------------------------------------------------------------------------
# Content-hash stability across process restarts
# ---------------------------------------------------------------------------
class TestHashStability:
    def test_content_hash_is_process_independent(self):
        """A fresh interpreter (different PYTHONHASHSEED) must compute the
        same content hash, or user-program cache keys would be worthless."""
        here = parse_program(DAXPY_TEXT)
        local = graph_content_hash(here.graph)
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.ir.frontend import parse_program\n"
            "from repro.runner.scenario import graph_content_hash\n"
            "text = sys.stdin.read()\n"
            "print(graph_content_hash(parse_program(text).graph))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script, src],
                input=DAXPY_TEXT,
                capture_output=True,
                text=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            assert proc.stdout.strip() == local
