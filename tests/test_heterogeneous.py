"""Tests for non-homogeneous cluster configurations (Section 3 note)."""

import pytest

from repro.arch.cluster import MachineConfig, heterogeneous_config
from repro.arch.resources import BusSpec, FuSet
from repro.arch.timing import cycle_time_ps, register_file_ports
from repro.core.bsa import BsaScheduler
from repro.core.mii import res_mii
from repro.core.twophase import TwoPhaseScheduler
from repro.core.verify import verify_schedule
from repro.errors import ConfigError
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import ALL_KERNELS, daxpy, stencil3


def fp_and_mem_machine():
    """An FP-heavy cluster next to an int/mem cluster (TI C6000 style)."""
    return heterogeneous_config(
        "fp+mem",
        cluster_fus=(FuSet(1, 3, 1), FuSet(2, 1, 2)),
        regs_per_cluster=32,
        buses=BusSpec(1, 1),
    )


class TestConfig:
    def test_constructor_checks_length(self):
        with pytest.raises(ConfigError, match="entries"):
            MachineConfig(
                "bad", 3, FuSet(1, 1, 1), 16, BusSpec(1, 1),
                cluster_fus=(FuSet(1, 1, 1),),
            )

    def test_empty_cluster_list_rejected(self):
        with pytest.raises(ConfigError):
            heterogeneous_config("x", (), 16, BusSpec(1, 1))

    def test_total_fus_sums_clusters(self):
        cfg = fp_and_mem_machine()
        assert cfg.total_fus == FuSet(3, 4, 3)
        assert cfg.issue_width == 10

    def test_fu_set_per_cluster(self):
        cfg = fp_and_mem_machine()
        assert cfg.fu_set(0) == FuSet(1, 3, 1)
        assert cfg.fu_set(1) == FuSet(2, 1, 2)

    def test_is_homogeneous(self):
        assert not fp_and_mem_machine().is_homogeneous
        same = heterogeneous_config(
            "same", (FuSet(1, 1, 1), FuSet(1, 1, 1)), 16, BusSpec(1, 1)
        )
        assert same.is_homogeneous

    def test_max_fus_in_a_cluster(self):
        assert fp_and_mem_machine().max_fus_in_a_cluster == 5

    def test_describe_lists_clusters(self):
        text = fp_and_mem_machine().describe()
        assert "1I/3F/1M" in text and "2I/1F/2M" in text

    def test_unified_equivalent_pools(self):
        cfg = fp_and_mem_machine()
        uni = cfg.unified_equivalent()
        assert uni.issue_width == cfg.issue_width
        assert uni.n_clusters == 1

    def test_with_buses_preserves_heterogeneity(self):
        cfg = fp_and_mem_machine().with_buses(2, 4)
        assert cfg.cluster_fus is not None
        assert cfg.fu_set(0) == FuSet(1, 3, 1)


class TestTiming:
    def test_worst_cluster_drives_delays(self):
        cfg = fp_and_mem_machine()
        # 5 FUs in the larger cluster -> 15 FU ports + 2 bus ports
        assert register_file_ports(cfg) == 17
        assert cycle_time_ps(cfg) > 0


class TestMii:
    def test_res_mii_uses_totals(self):
        cfg = fp_and_mem_machine()
        g = DependenceGraph()
        for _ in range(8):
            g.add_operation("fadd")
        # 8 fp ops / 4 fp units total -> 2
        assert res_mii(g, cfg) == 2


class TestScheduling:
    def test_bsa_all_kernels(self, kernel_graph):
        sched = BsaScheduler(fp_and_mem_machine()).schedule(kernel_graph)
        verify_schedule(sched)

    def test_twophase_all_kernels(self, kernel_graph):
        sched = TwoPhaseScheduler(fp_and_mem_machine()).schedule(kernel_graph)
        verify_schedule(sched)

    def test_fp_work_lands_on_fp_cluster(self):
        """A pure-FP loop must concentrate where the FP units are."""
        g = DependenceGraph()
        prev = None
        for i in range(6):
            node = g.add_operation("fadd", f"f{i}")
            if prev is not None:
                g.add_dependence(prev, node)
            prev = node
        cfg = heterogeneous_config(
            "fp-island",
            cluster_fus=(FuSet(1, 4, 1), FuSet(4, 1, 4)),
            regs_per_cluster=32,
            buses=BusSpec(1, 1),
        )
        sched = BsaScheduler(cfg).schedule(g)
        verify_schedule(sched)
        on_fp_cluster = sum(
            1 for op in sched.ops.values() if op.cluster == 0
        )
        assert on_fp_cluster >= len(g) // 2

    def test_mem_less_cluster_never_runs_loads(self):
        cfg = heterogeneous_config(
            "no-mem-c1",
            cluster_fus=(FuSet(2, 2, 3), FuSet(2, 2, 0)),
            regs_per_cluster=32,
            buses=BusSpec(1, 1),
        )
        sched = BsaScheduler(cfg).schedule(stencil3())
        verify_schedule(sched)
        from repro.ir.operation import FuClass

        for node, placed in sched.ops.items():
            if sched.graph.operation(node).fu_class is FuClass.MEM:
                assert placed.cluster == 0
