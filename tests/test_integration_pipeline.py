"""End-to-end integration: a miniature of the paper's whole evaluation.

Runs two programs through the complete pipeline — scheduling on unified
and clustered machines, all three unrolling policies, performance model,
cycle-time model, code-size model — and asserts the paper's headline
relationships hold on the miniature, plus cross-model consistency checks
that no single-module test can see.
"""

import pytest

from repro.arch.configs import four_cluster_config, unified_config
from repro.arch.timing import cycle_time_ps
from repro.codegen import expand_software_pipeline, schedule_code_size
from repro.core.selective import UnrollPolicy
from repro.core.verify import verify_schedule
from repro.experiments import ExperimentContext
from repro.workloads.specfp import build_program


@pytest.fixture(scope="module")
def mini():
    ctx = ExperimentContext(suite=[build_program("swim"), build_program("applu")])
    return ctx


class TestMiniEvaluation:
    def test_no_fallbacks_triggered(self, mini):
        cfg = four_cluster_config(1, 1)
        for program in mini.suite:
            for policy in UnrollPolicy:
                mini.program_ipc(program, cfg, "bsa", policy)
        assert mini.fallbacks == []

    def test_all_cached_schedules_verify(self, mini):
        cfg = four_cluster_config(1, 1)
        for program in mini.suite:
            mini.program_ipc(program, cfg, "bsa", UnrollPolicy.SELECTIVE)
        for result in mini.memo.values():
            verify_schedule(result.schedule)

    def test_unrolling_recovers_ipc(self, mini):
        """The paper's central claim on the miniature suite."""
        cfg = four_cluster_config(1, 2)  # slow bus: room to recover
        unified = unified_config()
        for program in mini.suite:
            u = mini.program_ipc(program, unified, "bsa", UnrollPolicy.NONE).ipc
            nu = mini.program_ipc(program, cfg, "bsa", UnrollPolicy.NONE).ipc
            su = mini.program_ipc(program, cfg, "bsa", UnrollPolicy.SELECTIVE).ipc
            assert su >= nu - 1e-9, program.name
            assert su / u > 0.75, program.name

    def test_speedup_headline_direction(self, mini):
        """4c/1bus with selective unrolling beats unified end to end."""
        cfg = four_cluster_config(1, 1)
        unified = unified_config()
        clock = cycle_time_ps(unified) / cycle_time_ps(cfg)
        for program in mini.suite:
            u = mini.program_ipc(program, unified, "bsa", UnrollPolicy.NONE).ipc
            su = mini.program_ipc(program, cfg, "bsa", UnrollPolicy.SELECTIVE).ipc
            assert (su / u) * clock > 2.0, program.name

    def test_code_size_ordering(self, mini):
        cfg = four_cluster_config(1, 1)
        for program in mini.suite:
            sizes = {}
            for policy in UnrollPolicy:
                total = 0
                for loop in program.eligible_loops():
                    result = mini.schedule_loop(loop, cfg, "bsa", policy)
                    total += schedule_code_size(result.schedule).total_ops
                sizes[policy] = total
            assert sizes[UnrollPolicy.NONE] <= sizes[UnrollPolicy.SELECTIVE]
            assert sizes[UnrollPolicy.SELECTIVE] <= sizes[UnrollPolicy.ALL]

    def test_codegen_consistent_with_size_model(self, mini):
        """Expanded instructions match the analytic model on real loops."""
        cfg = four_cluster_config(1, 1)
        program = mini.suite[0]
        loop = program.eligible_loops()[0]
        result = mini.schedule_loop(loop, cfg, "bsa", UnrollPolicy.SELECTIVE)
        code = expand_software_pipeline(result.schedule)
        size = schedule_code_size(result.schedule)
        assert sum(i.total_slots for i in code) == size.total_ops
        assert sum(i.useful_ops for i in code) == size.useful_ops

    def test_ii_never_below_mii_anywhere(self, mini):
        for result in mini.memo.values():
            assert result.schedule.ii >= result.schedule.mii

    def test_unified_ipc_bounded_by_issue_width(self, mini):
        unified = unified_config()
        for program in mini.suite:
            perf = mini.program_ipc(program, unified, "bsa", UnrollPolicy.NONE)
            assert perf.ipc <= unified.issue_width
