"""Unit tests for the register-pressure (MaxLive) model."""

import pytest

from repro.arch.configs import two_cluster_config, unified_config
from repro.core.lifetimes import _intervals, cluster_pressures, max_pressure, pressure_ok
from repro.core.schedule import Communication, ModuloSchedule, ScheduledOp
from repro.ir.ddg import DependenceGraph


def two_node_graph(producer="fadd", consumer="fadd"):
    g = DependenceGraph("two")
    a = g.add_operation(producer)
    b = g.add_operation(consumer)
    g.add_dependence(a, b)
    return g, a, b


class TestProducerLifetimes:
    def test_simple_producer_consumer(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, unified_config(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 3, 0, 0))
        # a written at 3, read at 3 -> interval [3, 4): one register.
        assert cluster_pressures(s)[0] == 1

    def test_overlapping_values(self):
        g = DependenceGraph()
        nodes = [g.add_operation("fadd") for _ in range(3)]
        sink = g.add_operation("fadd")
        for n in nodes:
            g.add_dependence(n, sink)
        s = ModuloSchedule(g, unified_config(), ii=20)
        for i, n in enumerate(nodes):
            s.place(ScheduledOp(n, i, 0, 0))
        s.place(ScheduledOp(sink, 10, 0, 0))
        # all three values live from write (3,4,5) to read 10 -> 3 at once
        assert cluster_pressures(s)[0] == 3

    def test_wrapping_lifetime_counts_multiple(self):
        g, a, b = two_node_graph(consumer="store")
        s = ModuloSchedule(g, unified_config(), ii=3)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 9, 0, 0))
        # lifetime [3, 10) = 7 cycles at II=3 -> ceil: spans rows with
        # multiplicity: 7 = 2*3 + 1 -> base 2 everywhere, 3 on one row.
        assert cluster_pressures(s)[0] == 3

    def test_carried_consumer_read_time(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("store")
        g.add_dependence(a, b, distance=2)
        s = ModuloSchedule(g, unified_config(), ii=5)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 1, 0, 0))
        # read at 1 + 2*5 = 11; lifetime [3, 12) = 9 -> 1 full wrap + 4
        assert cluster_pressures(s)[0] == 2

    def test_store_produces_no_value(self):
        g = DependenceGraph()
        a = g.add_operation("store")
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        assert cluster_pressures(s)[0] == 0

    def test_unread_value_occupies_one_cycle(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        s = ModuloSchedule(g, unified_config(), ii=4)
        s.place(ScheduledOp(a, 0, 0, 0))
        assert cluster_pressures(s)[0] == 1

    def test_unscheduled_consumer_ignored(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, unified_config(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        assert cluster_pressures(s)[0] == 1  # write-only interval


class TestCommunicationLifetimes:
    def cfg(self, latency=2):
        return two_cluster_config(n_buses=1, bus_latency=latency)

    def test_comm_extends_producer_lifetime(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, self.cfg(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 9, 1, 0))
        s.add_comm(Communication(a, 0, 0, start_cycle=7, readers=frozenset({1})))
        # producer interval [3, 8): bus read at 7.
        ivs = _intervals(s, None)
        assert (0, 3, 8) in ivs

    def test_remote_consumer_does_not_extend_producer(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, self.cfg(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 9, 1, 0))
        s.add_comm(Communication(a, 0, 0, start_cycle=3, readers=frozenset({1})))
        ivs = _intervals(s, None)
        assert (0, 3, 4) in ivs  # producer holds only until the bus read

    def test_incoming_value_stored_when_read_late(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, self.cfg(latency=2), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 9, 1, 0))
        s.add_comm(Communication(a, 0, 0, start_cycle=3, readers=frozenset({1})))
        # arrival 5, read 9 -> stored interval [5, 10) in cluster 1
        ivs = _intervals(s, None)
        assert (1, 5, 10) in ivs
        assert cluster_pressures(s)[1] == 1

    def test_incoming_value_bypassed_when_read_at_arrival(self):
        g, a, b = two_node_graph(consumer="store")
        s = ModuloSchedule(g, self.cfg(latency=2), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 5, 1, 0))  # reads exactly at arrival
        s.add_comm(Communication(a, 0, 0, start_cycle=3, readers=frozenset({1})))
        assert cluster_pressures(s)[1] == 0

    def test_incoming_value_at_negative_cycles(self):
        """Late reads at negative cycles still pin an incoming value.

        Backward scans legally place nodes at negative cycles before the
        schedule is normalised (engine.py docstring).  A ``-1`` sentinel
        for the last late read silently dropped these intervals and
        understated MaxLive, letting placements pass ``pressure_ok`` that
        a normalised schedule would reject.
        """
        g, a, b = two_node_graph(consumer="store")
        s = ModuloSchedule(g, self.cfg(latency=2), ii=4)
        s.place(ScheduledOp(a, -9, 0, 0))
        s.place(ScheduledOp(b, -3, 1, 0))  # reads at -3, after arrival -4
        s.add_comm(Communication(a, 0, 0, start_cycle=-6, readers=frozenset({1})))
        ivs = _intervals(s, None)
        assert (1, -4, -2) in ivs  # stored from arrival -4 until read -3
        assert cluster_pressures(s)[1] == 1

    def test_negative_cycle_pressure_matches_normalised(self):
        """Pressure of an un-normalised schedule equals its shifted twin."""
        g, a, b = two_node_graph()
        cfg = self.cfg(latency=2)
        lo = ModuloSchedule(g, cfg, ii=4)
        lo.place(ScheduledOp(a, -9, 0, 0))
        lo.place(ScheduledOp(b, -3, 1, 0))
        lo.add_comm(Communication(a, 0, 0, start_cycle=-6, readers=frozenset({1})))
        hi = ModuloSchedule(g, cfg, ii=4)
        hi.place(ScheduledOp(a, 3, 0, 0))  # same schedule shifted by +12
        hi.place(ScheduledOp(b, 9, 1, 0))
        hi.add_comm(Communication(a, 0, 0, start_cycle=6, readers=frozenset({1})))
        assert cluster_pressures(lo) == cluster_pressures(hi)

    def test_extra_comms_overlay(self):
        g, a, b = two_node_graph(consumer="store")
        s = ModuloSchedule(g, self.cfg(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 9, 1, 0))
        overlay = [Communication(a, 0, 0, start_cycle=3, readers=frozenset({1}))]
        with_overlay = cluster_pressures(s, extra_comms=overlay)
        without = cluster_pressures(s)
        assert with_overlay[1] == 1
        assert without[1] == 0
        assert s.comms == []  # overlay must not mutate


class TestHelpers:
    def test_max_pressure(self):
        g, a, b = two_node_graph()
        s = ModuloSchedule(g, two_cluster_config(), ii=10)
        s.place(ScheduledOp(a, 0, 0, 0))
        s.place(ScheduledOp(b, 3, 0, 0))
        assert max_pressure(s) == 1

    def test_pressure_ok_boundary(self):
        from repro.arch.cluster import MachineConfig
        from repro.arch.resources import BusSpec, FuSet

        tiny = MachineConfig("tiny", 1, FuSet(4, 4, 4), 2, BusSpec(0, 1))
        g = DependenceGraph()
        nodes = [g.add_operation("fadd") for _ in range(3)]
        sink = g.add_operation("fadd")
        for n in nodes:
            g.add_dependence(n, sink)
        s = ModuloSchedule(g, tiny, ii=20)
        for i, n in enumerate(nodes):
            s.place(ScheduledOp(n, i, 0, i))
        s.place(ScheduledOp(sink, 10, 0, 3))
        assert not pressure_ok(s)  # needs 3 > 2 registers
