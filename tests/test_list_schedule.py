"""Tests for the list scheduler (no-pipelining baseline) and MVE factor."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.lifetimes import mve_factor
from repro.core.list_schedule import list_schedule
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.errors import SchedulingError
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import daxpy, dot_product, figure7_graph


class TestListSchedule:
    def test_all_kernels_verify(self, kernel_graph, four_cluster):
        sched = list_schedule(kernel_graph, four_cluster)
        verify_schedule(sched)

    def test_single_stage(self, kernel_graph, unified):
        sched = list_schedule(kernel_graph, unified)
        assert sched.stage_count == 1

    def test_ii_equals_schedule_length(self, unified):
        sched = list_schedule(daxpy(), unified)
        assert sched.ii == sched.schedule_length

    def test_daxpy_critical_path(self, unified):
        # load(2) + fmul(4) + fadd(3) + store(1) = 10 cycles
        sched = list_schedule(daxpy(), unified)
        assert sched.ii == 10

    def test_modulo_scheduling_beats_list(self, kernel_graph, unified):
        """The motivation of the whole field: overlap wins."""
        ls = list_schedule(kernel_graph, unified)
        ms = UnifiedScheduler(unified).schedule(kernel_graph)
        assert ms.ii <= ls.ii

    def test_carried_dependences_respected(self, unified):
        sched = list_schedule(dot_product(), unified)
        verify_schedule(sched)  # II = length gives carried deps full slack

    def test_cross_cluster_comms_inserted(self):
        """A graph too wide for one cluster forces communications."""
        g = DependenceGraph()
        sources = [g.add_operation("fadd") for _ in range(6)]
        sink = g.add_operation("fadd")
        for s in sources:
            g.add_dependence(s, sink)
        cfg = four_cluster_config(1, 1)
        sched = list_schedule(g, cfg)
        verify_schedule(sched)

    def test_empty_graph_rejected(self, unified):
        with pytest.raises(SchedulingError):
            list_schedule(DependenceGraph(), unified)

    def test_load_balancing_uses_clusters(self, four_cluster):
        g = DependenceGraph()
        for _ in range(12):
            g.add_operation("fadd")
        sched = list_schedule(g, four_cluster)
        verify_schedule(sched)
        clusters = {op.cluster for op in sched.ops.values()}
        assert len(clusters) >= 2  # independent work spreads


class TestMveFactor:
    def test_short_lifetimes_no_expansion(self, unified):
        sched = list_schedule(daxpy(), unified)
        # one iteration at a time: no value outlives the (length-sized) II
        assert mve_factor(sched) == 1

    def test_immediate_consumption_needs_no_expansion(self, unified):
        """SMS consumes values right at readiness: even at II=1 the
        lifetimes stay within one II and no kernel replication is needed
        (this is exactly the lifetime sensitivity SMS is named for)."""
        sched = UnifiedScheduler(unified).schedule(daxpy())
        assert sched.ii == 1
        assert mve_factor(sched) == 1

    def test_long_lifetime_forces_expansion(self, unified):
        """A value read 7 cycles after production at II=2 needs
        ceil(7/2) = 4 renamed kernel copies."""
        from repro.core.schedule import ModuloSchedule, ScheduledOp

        g = DependenceGraph()
        p = g.add_operation("fadd")
        c = g.add_operation("store")
        g.add_dependence(p, c)
        sched = ModuloSchedule(g, unified, ii=2)
        sched.place(ScheduledOp(p, 0, 0, 0))  # value written at 3
        sched.place(ScheduledOp(c, 9, 0, 0))  # read at 9: lifetime [3, 10)
        assert mve_factor(sched) == 4

    def test_factor_matches_lifetime_ceiling(self, unified):
        from repro.core.lifetimes import _intervals

        sched = UnifiedScheduler(unified).schedule(figure7_graph())
        expected = max(
            -(-(end - start) // sched.ii)
            for _, start, end in _intervals(sched, None)
        )
        assert mve_factor(sched) == expected


class TestMveCodeSize:
    def test_mve_increases_kernel_size(self, unified):
        from repro.codegen import schedule_code_size
        from repro.core.schedule import ModuloSchedule, ScheduledOp

        g = DependenceGraph()
        p = g.add_operation("fadd")
        c = g.add_operation("store")
        g.add_dependence(p, c)
        sched = ModuloSchedule(g, unified, ii=2)
        sched.place(ScheduledOp(p, 0, 0, 0))
        sched.place(ScheduledOp(c, 9, 0, 0))  # MVE factor 4
        plain = schedule_code_size(sched)
        expanded = schedule_code_size(sched, with_mve=True)
        assert expanded.total_ops > plain.total_ops
        assert expanded.useful_ops > plain.useful_ops

    def test_mve_neutral_when_factor_one(self, unified):
        from repro.codegen import schedule_code_size

        sched = list_schedule(daxpy(), unified)
        assert schedule_code_size(sched) == schedule_code_size(
            sched, with_mve=True
        )
