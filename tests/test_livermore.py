"""Tests for the Livermore kernel set."""

import pytest

from repro.arch.configs import four_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.mii import mii_report, rec_mii
from repro.core.selective import UnrollPolicy, schedule_with_policy
from repro.core.unified import UnifiedScheduler
from repro.core.verify import verify_schedule
from repro.workloads.livermore import (
    LIVERMORE_KERNELS,
    RECURRENCE_BOUND,
    livermore_program,
)


@pytest.fixture(params=sorted(LIVERMORE_KERNELS))
def ll_graph(request):
    return LIVERMORE_KERNELS[request.param]()


class TestStructure:
    def test_all_validate(self, ll_graph):
        ll_graph.validate()

    def test_recurrence_classification(self):
        for name, build in LIVERMORE_KERNELS.items():
            g = build()
            if name in RECURRENCE_BOUND:
                assert rec_mii(g) > 1, name
            else:
                assert rec_mii(g) == 1, name

    def test_ll3_rec_mii_is_fadd_latency(self):
        assert rec_mii(LIVERMORE_KERNELS["ll3"]()) == 3

    def test_ll5_rec_mii(self):
        # fmul(4) + fsub(3) cycle at distance 1 -> 7
        assert rec_mii(LIVERMORE_KERNELS["ll5"]()) == 7

    def test_ll11_rec_mii(self):
        # fadd self-loop at distance 1 -> 3
        assert rec_mii(LIVERMORE_KERNELS["ll11"]()) == 3

    def test_ll7_is_wide_and_parallel(self):
        g = LIVERMORE_KERNELS["ll7"]()
        assert len(g) >= 20
        assert rec_mii(g) == 1


class TestScheduling:
    def test_unified_reaches_mii(self, ll_graph, unified):
        sched = UnifiedScheduler(unified).schedule(ll_graph)
        verify_schedule(sched)
        assert sched.ii == mii_report(ll_graph, unified).mii

    def test_clustered_verifies(self, ll_graph, four_cluster):
        sched = BsaScheduler(four_cluster).schedule(ll_graph)
        verify_schedule(sched)

    def test_selective_unrolling_declines_recurrences(self, four_cluster):
        for name in RECURRENCE_BOUND:
            graph = LIVERMORE_KERNELS[name]()
            result = schedule_with_policy(
                graph, BsaScheduler(four_cluster), UnrollPolicy.SELECTIVE
            )
            assert result.unroll_factor == 1, name

    def test_parallel_kernels_gain_from_unrolling(self, four_cluster):
        """ll12 (pure parallel) must reach unified-rate when unrolled."""
        graph = LIVERMORE_KERNELS["ll12"]()
        unified = unified_config()
        u_ii = UnifiedScheduler(unified).schedule(graph).ii
        result = schedule_with_policy(
            graph, BsaScheduler(four_cluster), UnrollPolicy.ALL
        )
        assert result.ii_per_original_iteration <= u_ii + 0.51


class TestProgram:
    def test_program_bundles_all(self):
        p = livermore_program()
        assert len(p) == len(LIVERMORE_KERNELS)
        assert all(lp.eligible_for_modulo_scheduling for lp in p)

    def test_program_usable_in_harness(self):
        from repro.experiments import ExperimentContext

        ctx = ExperimentContext(suite=[livermore_program(trip=100, runs=5)])
        perf = ctx.program_ipc(
            ctx.suite[0], four_cluster_config(1, 1), "bsa", UnrollPolicy.SELECTIVE
        )
        assert perf.ipc > 0
        assert ctx.fallbacks == []
