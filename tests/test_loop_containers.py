"""Tests for Loop / Program containers and the errors hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    GraphError,
    ReproError,
    SchedulingError,
    VerificationError,
)
from repro.ir.ddg import DependenceGraph
from repro.ir.loop import MIN_MODULO_TRIP_COUNT, Loop, Program
from repro.workloads.kernels import daxpy


class TestLoop:
    def test_basic_properties(self):
        lp = Loop(graph=daxpy(), trip_count=100, times_executed=3)
        assert lp.name == "daxpy"
        assert lp.ops_per_iteration == 5
        assert lp.dynamic_operations == 5 * 100 * 3

    def test_eligibility_threshold(self):
        at = Loop(graph=daxpy(), trip_count=MIN_MODULO_TRIP_COUNT)
        above = Loop(graph=daxpy(), trip_count=MIN_MODULO_TRIP_COUNT + 1)
        assert not at.eligible_for_modulo_scheduling
        assert above.eligible_for_modulo_scheduling

    def test_invalid_trip_count(self):
        with pytest.raises(GraphError):
            Loop(graph=daxpy(), trip_count=0)

    def test_invalid_times_executed(self):
        with pytest.raises(GraphError):
            Loop(graph=daxpy(), trip_count=10, times_executed=-1)

    def test_str(self):
        text = str(Loop(graph=daxpy(), trip_count=10))
        assert "daxpy" in text and "trip=10" in text


class TestProgram:
    def test_iteration_and_len(self):
        p = Program("p")
        p.add(Loop(graph=daxpy(), trip_count=10))
        p.add(Loop(graph=daxpy().copy("d2"), trip_count=2))
        assert len(p) == 2
        assert len(list(p)) == 2

    def test_eligible_filter(self):
        p = Program("p")
        p.add(Loop(graph=daxpy(), trip_count=10))
        p.add(Loop(graph=daxpy().copy("short"), trip_count=2))
        assert [lp.name for lp in p.eligible_loops()] == ["daxpy"]

    def test_dynamic_operations_counts_eligible_only(self):
        p = Program("p")
        p.add(Loop(graph=daxpy(), trip_count=10))
        p.add(Loop(graph=daxpy().copy("short"), trip_count=2))
        assert p.dynamic_operations == 5 * 10

    def test_describe(self):
        p = Program("p", [Loop(graph=daxpy(), trip_count=10)])
        assert "p" in p.describe()
        assert "daxpy" in p.describe()


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphError, ConfigError, SchedulingError, VerificationError):
            assert issubclass(exc, ReproError)

    def test_scheduling_error_carries_ii(self):
        err = SchedulingError("nope", ii_tried=17)
        assert err.ii_tried == 17

    def test_scheduling_error_default_ii(self):
        assert SchedulingError("nope").ii_tried is None

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise VerificationError("bad schedule")
