"""Unit and property tests for MII computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.mii import (
    mii,
    mii_report,
    rec_mii,
    rec_mii_exact,
    res_mii,
)
from repro.errors import GraphError
from repro.ir.ddg import DependenceGraph
from repro.workloads.kernels import (
    daxpy,
    dot_product,
    figure7_graph,
    first_order_recurrence,
    ladder_graph,
)


class TestResMii:
    def test_daxpy_on_unified(self):
        # 2 loads + 1 store = 3 mem ops on 4 mem units -> 1; 2 fp on 4 -> 1.
        assert res_mii(daxpy(), unified_config()) == 1

    def test_counts_use_total_machine_resources(self):
        # Same totals on all paper configs -> same ResMII.
        g = daxpy()
        assert (
            res_mii(g, unified_config())
            == res_mii(g, two_cluster_config())
            == res_mii(g, four_cluster_config())
        )

    def test_figure7_matches_paper(self):
        # ceil(6 gen-ops / 4 int units) = 2 on the 2-cluster machine.
        assert res_mii(figure7_graph(), two_cluster_config()) == 2

    def test_ceiling_behaviour(self):
        g = DependenceGraph()
        for _ in range(5):
            g.add_operation("fadd")
        # 5 fp ops on 4 fp units -> ceil(5/4) = 2
        assert res_mii(g, unified_config()) == 2

    def test_missing_unit_class_raises(self):
        from repro.arch.cluster import MachineConfig
        from repro.arch.resources import BusSpec, FuSet

        cfg = MachineConfig("intonly", 1, FuSet(2, 0, 0), 8, BusSpec(0, 1))
        g = DependenceGraph()
        g.add_operation("fadd")
        with pytest.raises(GraphError, match="no"):
            res_mii(g, cfg)

    def test_empty_graph(self):
        assert res_mii(DependenceGraph(), unified_config()) == 1


class TestRecMii:
    def test_acyclic_graph_is_one(self):
        assert rec_mii(daxpy()) == 1

    def test_dot_product_reduction(self):
        # fadd self-loop at distance 1 -> RecMII = fadd latency = 3.
        assert rec_mii(dot_product()) == 3

    def test_first_order_recurrence(self):
        # fmul(4) + fadd(3) cycle at distance 1 -> 7.
        assert rec_mii(first_order_recurrence()) == 7

    def test_figure7_matches_paper(self):
        # 3-op cycle latency 3 at distance 2 -> ceil(3/2) = 2.
        assert rec_mii(figure7_graph()) == 2

    def test_ladder(self):
        # 6-op chain latency 6 at distance 2 -> 3.
        assert rec_mii(ladder_graph()) == 3

    def test_distance_scaling(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")  # latency 3
        b = g.add_operation("fadd")
        g.add_dependence(a, b)
        for distance, expected in ((1, 6), (2, 3), (3, 2), (6, 1)):
            gg = g.copy()
            gg.add_dependence(b, a, distance=distance)
            assert rec_mii(gg) == expected, f"distance {distance}"

    def test_multiple_cycles_take_max(self):
        g = DependenceGraph()
        a = g.add_operation("fadd")
        b = g.add_operation("fmul")
        g.add_dependence(a, a, distance=3)  # 3/3 -> 1
        g.add_dependence(b, b, distance=1)  # 4/1 -> 4
        assert rec_mii(g) == 4

    def test_matches_exact_enumeration_on_kernels(self):
        for build in (daxpy, dot_product, first_order_recurrence, figure7_graph, ladder_graph):
            g = build()
            assert rec_mii(g) == rec_mii_exact(g), g.name


class TestMiiReport:
    def test_max_of_bounds(self):
        g = dot_product()
        report = mii_report(g, unified_config())
        assert report.mii == max(report.res_mii, report.rec_mii)
        assert report.recurrence_bound  # RecMII 3 > ResMII 1

    def test_mii_function_agrees(self):
        g = figure7_graph()
        cfg = two_cluster_config()
        assert mii(g, cfg) == mii_report(g, cfg).mii


@st.composite
def cyclic_graph(draw):
    """Random graph guaranteed schedulable (carried back edges only)."""
    n = draw(st.integers(min_value=2, max_value=7))
    g = DependenceGraph("prop")
    ops = ["iadd", "fadd", "fmul", "load"]
    ids = [g.add_operation(draw(st.sampled_from(ops))) for _ in range(n)]
    for _ in range(draw(st.integers(min_value=1, max_value=2 * n))):
        src = draw(st.sampled_from(ids))
        dst = draw(st.sampled_from(ids))
        distance = (
            draw(st.integers(min_value=1, max_value=3))
            if dst <= src
            else draw(st.integers(min_value=0, max_value=2))
        )
        g.add_dependence(src, dst, distance=distance)
    return g


class TestRecMiiProperties:
    @given(g=cyclic_graph())
    @settings(max_examples=80, deadline=None)
    def test_binary_search_matches_exact(self, g):
        assert rec_mii(g) == rec_mii_exact(g)

    @given(g=cyclic_graph())
    @settings(max_examples=50, deadline=None)
    def test_rec_mii_at_least_one(self, g):
        assert rec_mii(g) >= 1

    @given(g=cyclic_graph(), factor=st.integers(min_value=2, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_unrolled_rec_mii_bounded_by_factor_times(self, g, factor):
        """RecMII(unroll(G, U)) <= U * RecMII(G): U source iterations per
        unrolled iteration can never need more than U times the II."""
        from repro.ir.unroll import unroll_graph

        assert rec_mii(unroll_graph(g, factor)) <= factor * rec_mii(g)
