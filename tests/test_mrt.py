"""Unit tests for the modulo reservation table."""

import pytest

from repro.arch.configs import four_cluster_config, two_cluster_config, unified_config
from repro.core.mrt import ReservationTable
from repro.errors import SchedulingError
from repro.ir.operation import FuClass


class TestFuTables:
    def test_occupy_and_conflict(self):
        mrt = ReservationTable(four_cluster_config(), ii=4)
        unit = mrt.occupy_fu(0, FuClass.FP, 2, "a")
        assert unit == 0
        assert not mrt.fu_slot_free(0, FuClass.FP, 2)
        with pytest.raises(SchedulingError):
            mrt.occupy_fu(0, FuClass.FP, 2, "b")

    def test_modulo_wrapping(self):
        mrt = ReservationTable(four_cluster_config(), ii=3)
        mrt.occupy_fu(0, FuClass.INT, 1, "a")
        # cycle 4 maps to row 1 -> occupied
        assert not mrt.fu_slot_free(0, FuClass.INT, 4)
        assert mrt.fu_slot_free(0, FuClass.INT, 5)

    def test_negative_cycles_wrap(self):
        mrt = ReservationTable(four_cluster_config(), ii=4)
        mrt.occupy_fu(0, FuClass.MEM, -1, "a")  # row 3
        assert not mrt.fu_slot_free(0, FuClass.MEM, 3)

    def test_units_fill_in_order(self):
        mrt = ReservationTable(unified_config(), ii=2)
        units = [mrt.occupy_fu(0, FuClass.FP, 0, f"op{i}") for i in range(4)]
        assert units == [0, 1, 2, 3]
        assert not mrt.fu_slot_free(0, FuClass.FP, 0)
        assert mrt.fu_slot_free(0, FuClass.FP, 1)

    def test_release(self):
        mrt = ReservationTable(four_cluster_config(), ii=2)
        unit = mrt.occupy_fu(1, FuClass.INT, 0, "a")
        mrt.release_fu(1, FuClass.INT, 0, unit, "a")
        assert mrt.fu_slot_free(1, FuClass.INT, 0)

    def test_release_wrong_owner_rejected(self):
        mrt = ReservationTable(four_cluster_config(), ii=2)
        unit = mrt.occupy_fu(1, FuClass.INT, 0, "a")
        with pytest.raises(SchedulingError):
            mrt.release_fu(1, FuClass.INT, 0, unit, "b")

    def test_clusters_are_independent(self):
        mrt = ReservationTable(four_cluster_config(), ii=2)
        mrt.occupy_fu(0, FuClass.FP, 0, "a")
        assert mrt.fu_slot_free(1, FuClass.FP, 0)

    def test_bad_ii_rejected(self):
        with pytest.raises(SchedulingError):
            ReservationTable(unified_config(), ii=0)


class TestBusTables:
    def test_bus_latency_rows(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        mrt = ReservationTable(cfg, ii=4)
        assert mrt.bus_rows(3) == [3, 0]  # wraps

    def test_occupy_blocks_whole_transfer(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        mrt = ReservationTable(cfg, ii=4)
        bus = mrt.bus_free(0)
        assert bus == 0
        mrt.occupy_bus(0, bus, "t0")
        assert mrt.bus_free(0) is None  # rows 0,1 taken
        assert mrt.bus_free(1) is None  # rows 1,2 -> 1 taken
        assert mrt.bus_free(2) == 0  # rows 2,3 free

    def test_second_bus_picked_up(self):
        cfg = two_cluster_config(n_buses=2, bus_latency=1)
        mrt = ReservationTable(cfg, ii=2)
        mrt.occupy_bus(0, 0, "a")
        assert mrt.bus_free(0) == 1

    def test_transfer_longer_than_ii_impossible(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=4)
        mrt = ReservationTable(cfg, ii=3)
        assert mrt.bus_free(0) is None

    def test_no_buses_machine(self):
        mrt = ReservationTable(unified_config(), ii=4)
        assert mrt.bus_free(0) is None
        assert mrt.bus_utilisation() == 0.0

    def test_release_bus(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        mrt = ReservationTable(cfg, ii=4)
        mrt.occupy_bus(1, 0, "t")
        mrt.release_bus(1, 0, "t")
        assert mrt.bus_free(1) == 0


class TestUtilisation:
    def test_bus_utilisation(self):
        cfg = two_cluster_config(n_buses=1, bus_latency=2)
        mrt = ReservationTable(cfg, ii=4)
        mrt.occupy_bus(0, 0, "t")
        assert mrt.bus_utilisation() == pytest.approx(0.5)

    def test_fu_utilisation(self):
        cfg = four_cluster_config()
        mrt = ReservationTable(cfg, ii=1)
        # 12 FU cells at II=1; occupy 3.
        mrt.occupy_fu(0, FuClass.INT, 0, "a")
        mrt.occupy_fu(0, FuClass.FP, 0, "b")
        mrt.occupy_fu(1, FuClass.MEM, 0, "c")
        assert mrt.fu_utilisation() == pytest.approx(3 / 12)
