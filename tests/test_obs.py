"""Tests for the observability layer (repro.obs).

Covers the acceptance criteria of the observability work:

* the metrics registry round-trips through the Prometheus text
  exposition and back through the strict parser, with stable names;
* tracing spans nest, propagate across the spawn worker-pool boundary,
  and never perturb results;
* the scheduler phase hooks produce a per-phase breakdown when enabled
  and change nothing when disabled (the default);
* run reports record one point per scenario, aggregate per group, and
  render as text / JSON / markdown.
"""

from __future__ import annotations

import json

import pytest

from repro.core.selective import UnrollPolicy
from repro.experiments import suite_grid
from repro.obs import (
    LATENCY_BUCKETS_S,
    MetricsRegistry,
    PhaseTimer,
    RunRecorder,
    RunReport,
    Tracer,
    aggregate,
    render_report,
)
from repro.obs import prom
from repro.obs.trace import PHASES, TRACER, TraceContext, new_trace_id
from repro.runner import run_sweep
from repro.workloads.specfp import build_program


def small_items():
    from repro.arch.configs import two_cluster_config

    return suite_grid(
        [build_program("applu")],
        two_cluster_config(1, 1),
        "bsa",
        UnrollPolicy.NONE,
    )


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help")
        c.inc()
        c.inc(2)
        assert c.value == 3.0
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_http_total", "help", ("route", "code"))
        c.labels(route="/jobs", code="200").inc()
        c.labels(route="/jobs", code="200").inc()
        c.labels(route="/stats", code="404").inc()
        assert c.value_of(route="/jobs", code="200") == 2.0
        assert c.value_of(route="/stats", code="404") == 1.0
        assert c.value_of(route="/never", code="500") == 0.0
        with pytest.raises(ValueError):
            c.inc()  # labelled: must go through .labels()
        with pytest.raises(ValueError):
            c.labels(route="/jobs")  # missing label

    def test_callback_counter_single_source_of_truth(self):
        state = {"hits": 0}
        reg = MetricsRegistry()
        c = reg.counter(
            "repro_hits_total", "help", callback=lambda: state["hits"]
        )
        state["hits"] = 7
        assert c.value == 7.0
        assert c.collect().samples[0].value == 7.0
        with pytest.raises(ValueError):
            c.inc()  # the external state is the only writer

    def test_gauge(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth", "help")
        g.set(4)
        g.dec()
        assert g.collect().samples[0].value == 3.0
        sampled = reg.gauge("repro_live", "help", callback=lambda: 1.0)
        assert sampled.collect().samples[0].value == 1.0

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "help", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        fam = h.collect()
        by_name = {}
        for s in fam.samples:
            by_name[(s.name, s.labels)] = s.value
        assert by_name[("repro_lat_seconds_bucket", (("le", "0.1"),))] == 1
        assert by_name[("repro_lat_seconds_bucket", (("le", "1"),))] == 3
        assert by_name[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 4
        assert by_name[("repro_lat_seconds_count", ())] == 4
        assert by_name[("repro_lat_seconds_sum", ())] == pytest.approx(6.05)

    def test_registration_idempotent_and_conflicts(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x_total", "help")
        assert reg.counter("repro_x_total", "help") is a
        with pytest.raises(ValueError):
            reg.gauge("repro_x_total", "help")
        with pytest.raises(ValueError):
            reg.counter("0bad", "help")
        with pytest.raises(ValueError):
            reg.counter("repro_y_total", "help", ("__reserved",))


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------
class TestProm:
    def registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        c = reg.counter("repro_req_total", "requests", ("route",))
        c.labels(route="/jobs").inc(3)
        reg.gauge("repro_depth", "queue depth").set(2)
        h = reg.histogram("repro_lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_render_parse_round_trip(self):
        text = prom.render(self.registry())
        assert text.endswith("\n")
        families = prom.parse(text)
        # Metric names are a public contract: CI and dashboards scrape
        # them, so they must parse back exactly as registered.
        assert set(families) == {
            "repro_req_total",
            "repro_depth",
            "repro_lat_seconds",
        }
        req = families["repro_req_total"]
        assert req.kind == "counter"
        values = {
            (s.name, s.labels): s.value
            for fam in families.values()
            for s in fam.samples
        }
        assert values[("repro_req_total", (("route", "/jobs"),))] == 3.0
        assert families["repro_lat_seconds"].kind == "histogram"
        assert values[("repro_lat_seconds_bucket", (("le", "+Inf"),))] == 2.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(prom.PromParseError):
            prom.parse("repro_x_total{ 1\n")
        with pytest.raises(prom.PromParseError):
            prom.parse("repro_untyped_total 1\n")  # sample without TYPE
        with pytest.raises(prom.PromParseError):
            prom.parse(
                "# TYPE repro_h histogram\n"
                'repro_h_bucket{le="1"} 1\n'
                "repro_h_sum 1\nrepro_h_count 1\n"
            )  # histogram without a +Inf bucket

    def test_parse_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 5\n'
            "repro_h_sum 1\nrepro_h_count 5\n"
        )
        with pytest.raises(prom.PromParseError):
            prom.parse(text)

    def test_require_cli(self, capsys, monkeypatch):
        import io

        text = prom.render(self.registry())
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        assert prom.main(["--require", "repro_req_total"]) == 0
        assert "metric families" in capsys.readouterr().out
        monkeypatch.setattr("sys.stdin", io.StringIO(text))
        assert prom.main(["--require", "repro_missing_total"]) == 1


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_disabled_is_null(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            assert tracer.current_context() is None
        assert tracer.drain() == []
        # The disabled span is a shared singleton: no per-call allocation.
        assert tracer.span("a") is tracer.span("b")

    def test_nesting_links_parent_and_trace(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            outer_ctx = tracer.current_context()
            with tracer.span("inner"):
                inner_ctx = tracer.current_context()
        assert inner_ctx.trace_id == outer_ctx.trace_id
        spans = {s.name: s for s in tracer.drain()}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        assert spans["inner"].duration_s >= 0.0

    def test_carrier_adopt_round_trip(self):
        tracer = Tracer(enabled=True)
        with tracer.span("submit"):
            carrier = tracer.carrier()
        assert set(carrier) == {"trace_id", "parent_span_id"}
        ctx = TraceContext.from_carrier(carrier)
        with tracer.adopt(carrier):
            with tracer.span("worker"):
                pass
        worker = [s for s in tracer.drain() if s.name == "worker"][0]
        assert worker.trace_id == ctx.trace_id
        assert worker.parent_id == ctx.span_id
        # None carrier is a no-op, so call sites need no conditional.
        with tracer.adopt(None):
            assert tracer.current_context() is None

    def test_record_ships_remote_spans(self):
        tracer = Tracer(enabled=True)
        doc = {
            "name": "remote",
            "trace_id": new_trace_id(),
            "span_id": "abc123",
            "parent_id": None,
            "duration_s": 0.5,
        }
        tracer.record(doc)
        (span,) = tracer.drain()
        assert span.name == "remote" and span.duration_s == 0.5


# ---------------------------------------------------------------------------
# Phase timers and the engine hooks
# ---------------------------------------------------------------------------
class TestPhases:
    def test_disabled_records_nothing(self):
        timer = PhaseTimer()
        with timer.time("x"):
            pass
        assert timer.snapshot() == {}

    def test_enabled_accumulates(self):
        timer = PhaseTimer()
        timer.enabled = True
        with timer.time("a"):
            pass
        timer.add("a", 0.25)
        snap = timer.snapshot()
        assert snap["a"]["calls"] == 2
        assert snap["a"]["total_s"] >= 0.25
        timer.reset()
        assert timer.snapshot() == {}

    def test_engine_hooks_emit_phase_breakdown(self):
        from repro.arch.configs import four_cluster_config
        from repro.core.bsa import BsaScheduler
        from repro.workloads.kernels import fir_filter

        PHASES.reset()
        PHASES.enabled = True
        try:
            BsaScheduler(four_cluster_config(1, 1)).schedule(fir_filter(6))
            snap = PHASES.snapshot()
        finally:
            PHASES.enabled = False
            PHASES.reset()
        assert {"schedule.ordering", "schedule.probe", "schedule.commit"} <= set(
            snap
        )
        assert all(entry["calls"] >= 1 for entry in snap.values())

    def test_hooks_do_not_change_schedules(self):
        from repro.arch.configs import four_cluster_config
        from repro.codegen.vliw import render_schedule
        from repro.core.bsa import BsaScheduler
        from repro.workloads.kernels import fir_filter

        cfg = four_cluster_config(1, 1)
        plain = render_schedule(BsaScheduler(cfg).schedule(fir_filter(6)))
        PHASES.reset()
        PHASES.enabled = True
        try:
            profiled = render_schedule(
                BsaScheduler(cfg).schedule(fir_filter(6))
            )
        finally:
            PHASES.enabled = False
            PHASES.reset()
        assert profiled == plain


# ---------------------------------------------------------------------------
# Trace propagation across the spawn worker pool
# ---------------------------------------------------------------------------
class TestWorkerTracePropagation:
    @pytest.mark.slow
    def test_pool_workers_link_back_to_the_submitting_trace(self, monkeypatch):
        # Workers are spawned (not forked): they inherit the environment,
        # so $REPRO_VLIW_TRACE enables their process-global tracer.
        monkeypatch.setenv("REPRO_VLIW_TRACE", "1")
        monkeypatch.setattr(TRACER, "enabled", True)
        TRACER.drain()
        items = small_items()
        with TRACER.span("test.sweep"):
            ctx = TRACER.current_context()
            results, stats = run_sweep(items, jobs=2, cache=None)
        assert stats.executed == stats.total > 0
        spans = TRACER.drain()
        worker_spans = [s for s in spans if s.name == "runner.execute_point"]
        assert len(worker_spans) == stats.executed
        assert {s.trace_id for s in worker_spans} == {ctx.trace_id}
        assert all(s.parent_id == ctx.span_id for s in worker_spans)
        assert all(s.attrs.get("point") for s in worker_spans)


# ---------------------------------------------------------------------------
# Run reports
# ---------------------------------------------------------------------------
class TestRunReports:
    def recorded(self, tmp_path):
        items = small_items()
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path / "cache", code_version="obs-test")
        recorder = RunRecorder()
        run_sweep(items, cache=cache, recorder=recorder)
        return items, cache, recorder

    def test_recorder_sources_and_wall_times(self, tmp_path):
        items, cache, recorder = self.recorded(tmp_path)
        report = recorder.report(sweep="unit")
        assert len(report.records) == len(items)
        assert {r.source for r in report.records} == {"executed"}
        assert all(r.wall_s > 0.0 for r in report.records)
        # Second run: everything must come back from disk.
        rerun = RunRecorder()
        run_sweep(items, cache=cache, recorder=rerun)
        assert {r.source for r in rerun.report(sweep="unit").records} == {
            "disk"
        }

    def test_recording_does_not_perturb_results(self, tmp_path):
        items = small_items()
        plain, _ = run_sweep(items, cache=None)
        recorded, _ = run_sweep(items, cache=None, recorder=RunRecorder())
        assert {k: v.to_dict() for k, v in plain.items()} == {
            k: v.to_dict() for k, v in recorded.items()
        }

    def test_aggregate_and_render(self, tmp_path):
        _items, _cache, recorder = self.recorded(tmp_path)
        report = recorder.report(sweep="unit")
        rows = aggregate(report.records, by="kernel")
        assert sum(r["points"] for r in rows) == len(report.records)
        assert all(r["executed"] == r["points"] for r in rows)
        assert all(r["ii_mean"] >= r["mii_mean"] for r in rows)
        assert all(r["max_live"] > 0 for r in rows)
        with pytest.raises(ValueError):
            aggregate(report.records, by="nonsense")

        text = render_report(report, by="kernel", fmt="text")
        assert "hit rate" in text and "wall_p95_ms" in text
        md = render_report(report, by="config", fmt="markdown")
        assert md.splitlines()[2].startswith("| ")
        doc = json.loads(render_report(report, by="scheduler", fmt="json"))
        assert doc["rows"][0]["scheduler"] == "bsa"
        with pytest.raises(ValueError):
            render_report(report, fmt="xml")

    def test_report_round_trip(self, tmp_path):
        _items, _cache, recorder = self.recorded(tmp_path)
        report = recorder.report(sweep="unit", meta={"quick": True})
        path = report.save(tmp_path / "report.json")
        loaded = RunReport.load(path)
        assert loaded.sweep == "unit" and loaded.meta == {"quick": True}
        assert [r.to_dict() for r in loaded.records] == [
            r.to_dict() for r in report.records
        ]
        with pytest.raises(ValueError):
            RunReport.from_dict({"format": 99, "sweep": "x", "records": []})

    def test_cli_report_verb(self, tmp_path, capsys):
        from repro.cli import main

        _items, _cache, recorder = self.recorded(tmp_path)
        path = recorder.report(sweep="unit").save(tmp_path / "report.json")
        main(["report", str(path)])
        out = capsys.readouterr().out
        assert "sweep unit" in out and "kernel" in out
        main(["report", str(path), "--by", "config", "--format", "markdown"])
        assert "| config |" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "missing.json")])


# ---------------------------------------------------------------------------
# Loadtest report plumbing (pure shapes; the live path is in test_service)
# ---------------------------------------------------------------------------
class TestLoadtestReportShapes:
    def test_latency_histogram_matches_bucket_ladder(self):
        from repro.service.client import LoadtestReport

        report = LoadtestReport(
            clients=1,
            requests=3,
            successes=3,
            duration_s=1.0,
            latencies_s=[0.0004, 0.02, 2.0],
        )
        hist = report.latency_histogram()
        assert hist["count"] == 3
        assert hist["sum_s"] == pytest.approx(2.0204)
        assert len(hist["buckets"]) == len(LATENCY_BUCKETS_S) + 1
        by_le = {b["le"]: b["count"] for b in hist["buckets"]}
        assert by_le["0.0005"] == 1
        assert by_le["0.025"] == 2
        assert by_le["+Inf"] == 3
        doc = report.to_dict()
        assert doc["latency_histogram"]["count"] == 3
        assert doc["failures"] == []
