"""Unit tests for the opcode catalog and operation records."""

import pytest

from repro.ir.operation import (
    DEFAULT_CATALOG,
    FuClass,
    OpCatalog,
    Opcode,
    Operation,
)


class TestOpcode:
    def test_basic_fields(self):
        op = DEFAULT_CATALOG["fadd"]
        assert op.fu_class is FuClass.FP
        assert op.latency == 3
        assert op.writes_register

    def test_store_writes_no_register(self):
        assert not DEFAULT_CATALOG["store"].writes_register

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Opcode("bad", FuClass.INT, -1)

    def test_zero_latency_allowed(self):
        assert Opcode("move", FuClass.INT, 0).latency == 0


class TestCatalog:
    def test_unknown_opcode_raises_with_candidates(self):
        with pytest.raises(KeyError, match="unknown opcode"):
            DEFAULT_CATALOG["madeup"]

    def test_contains(self):
        assert "load" in DEFAULT_CATALOG
        assert "madeup" not in DEFAULT_CATALOG

    def test_by_class_partitions_catalog(self):
        total = sum(len(DEFAULT_CATALOG.by_class(fc)) for fc in FuClass)
        assert total == len(DEFAULT_CATALOG.names())

    def test_every_class_is_populated(self):
        for fc in FuClass:
            assert DEFAULT_CATALOG.by_class(fc), f"no opcodes for {fc}"

    def test_with_latency_creates_new_catalog(self):
        fast = DEFAULT_CATALOG.with_latency("fdiv", 8)
        assert fast["fdiv"].latency == 8
        assert DEFAULT_CATALOG["fdiv"].latency == 17  # original untouched

    def test_with_latency_preserves_other_fields(self):
        fast = DEFAULT_CATALOG.with_latency("store", 2)
        assert not fast["store"].writes_register

    def test_memory_latencies(self):
        assert DEFAULT_CATALOG["load"].latency == 2
        assert DEFAULT_CATALOG["store"].latency == 1

    def test_gen_is_single_cycle_int(self):
        # The Figure 7 walk-through relies on 1-cycle general-purpose ops.
        gen = DEFAULT_CATALOG["gen"]
        assert gen.latency == 1
        assert gen.fu_class is FuClass.INT


class TestOperation:
    def test_properties_delegate_to_opcode(self):
        op = Operation(3, DEFAULT_CATALOG["fmul"], "a*b")
        assert op.fu_class is FuClass.FP
        assert op.latency == 4
        assert op.writes_register

    def test_str_includes_tag(self):
        op = Operation(0, DEFAULT_CATALOG["load"], "x[i]")
        assert "x[i]" in str(op)
        assert "load" in str(op)

    def test_str_without_tag(self):
        op = Operation(7, DEFAULT_CATALOG["iadd"])
        assert str(op) == "n7:iadd"

    def test_operations_are_frozen(self):
        op = Operation(0, DEFAULT_CATALOG["iadd"])
        with pytest.raises(AttributeError):
            op.node_id = 5
