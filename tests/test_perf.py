"""Unit tests for the performance model (NCYCLES, IPC, speed-ups)."""

import pytest

from repro.arch.configs import four_cluster_config, unified_config
from repro.core.bsa import BsaScheduler
from repro.core.selective import ScheduledLoopResult, UnrollPolicy
from repro.core.unified import UnifiedScheduler
from repro.ir.loop import Loop, Program
from repro.perf.model import (
    LoopPerformance,
    loop_performance,
    program_performance,
)
from repro.perf.report import format_series, format_table
from repro.perf.speedup import speedup_report
from repro.workloads.kernels import daxpy


def make_perf(ii=2, sc=3, unroll=1, trip=100, runs=10, ops=5):
    return LoopPerformance(
        loop_name="l",
        ii=ii,
        stage_count=sc,
        unroll_factor=unroll,
        trip_count=trip,
        times_executed=runs,
        ops_per_iteration=ops,
    )


class TestLoopPerformance:
    def test_paper_cycle_formula(self):
        # NCYCLES = (NITER + SC - 1) * II
        p = make_perf(ii=2, sc=3, trip=100, runs=1)
        assert p.cycles_per_entry == (100 + 3 - 1) * 2

    def test_unroll_divides_kernel_iterations(self):
        p = make_perf(ii=8, sc=3, unroll=4, trip=100, runs=1)
        assert p.kernel_iterations == 25
        assert p.cycles_per_entry == (25 + 2) * 8

    def test_unroll_remainder_charged_full_batch(self):
        p = make_perf(ii=8, sc=3, unroll=4, trip=102, runs=1)
        assert p.kernel_iterations == 26  # ceil(102/4)

    def test_useful_operations_unroll_invariant(self):
        base = make_perf(unroll=1)
        unrolled = make_perf(unroll=4)
        assert base.useful_operations == unrolled.useful_operations

    def test_ipc(self):
        p = make_perf(ii=1, sc=1, trip=10, runs=1, ops=5)
        # cycles = (10+0)*1 = 10; ops = 50 -> IPC 5
        assert p.ipc == pytest.approx(5.0)

    def test_times_executed_scales_both(self):
        one = make_perf(runs=1)
        many = make_perf(runs=7)
        assert many.total_cycles == 7 * one.total_cycles
        assert many.ipc == pytest.approx(one.ipc)


class TestLoopPerformanceFromSchedule:
    def test_wiring(self, unified):
        graph = daxpy()
        loop = Loop(graph=graph, trip_count=100, times_executed=3)
        sched = UnifiedScheduler(unified).schedule(graph)
        result = ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)
        perf = loop_performance(loop, result)
        assert perf.ii == sched.ii
        assert perf.stage_count == sched.stage_count
        assert perf.ops_per_iteration == len(graph)
        assert perf.trip_count == 100

    def test_unrolled_wiring(self):
        from repro.ir.unroll import unroll_graph

        cfg = four_cluster_config(1, 1)
        graph = daxpy()
        loop = Loop(graph=graph, trip_count=100)
        sched = BsaScheduler(cfg).schedule(unroll_graph(graph, 4))
        result = ScheduledLoopResult(sched, 4, UnrollPolicy.ALL)
        perf = loop_performance(loop, result)
        # ops per *source* iteration, not per unrolled kernel iteration
        assert perf.ops_per_iteration == len(graph)
        assert perf.unroll_factor == 4


class TestProgramPerformance:
    def test_aggregation(self, unified):
        g = daxpy()
        loops = [
            Loop(graph=g, trip_count=100, times_executed=1),
            Loop(graph=g.copy("daxpy2"), trip_count=50, times_executed=2),
        ]
        prog = Program("p", loops)
        sched = UnifiedScheduler(unified).schedule(g)
        results = {
            lp.name: ScheduledLoopResult(sched, 1, UnrollPolicy.NONE)
            for lp in loops
        }
        perf = program_performance(prog, results)
        assert perf.total_cycles == sum(
            loop_performance(lp, results[lp.name]).total_cycles for lp in loops
        )
        assert perf.ipc > 0

    def test_short_loops_excluded(self, unified):
        g = daxpy()
        short = Loop(graph=g.copy("short"), trip_count=3)  # <= 4: excluded
        long = Loop(graph=g, trip_count=100)
        prog = Program("p", [short, long])
        assert [lp.name for lp in prog.eligible_loops()] == ["daxpy"]

    def test_missing_loop_is_loud(self, unified):
        g = daxpy()
        prog = Program("p", [Loop(graph=g, trip_count=100)])
        with pytest.raises(KeyError):
            program_performance(prog, {})


class TestSpeedup:
    def test_combines_ipc_and_clock(self):
        report = speedup_report(
            four_cluster_config(1, 1), unified_config(), 4.0, 5.0
        )
        assert report.ipc_ratio == pytest.approx(0.8)
        assert report.clock_ratio == pytest.approx(3.62, abs=0.05)
        assert report.speedup == pytest.approx(0.8 * report.clock_ratio)


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "bb": 2.5}, {"a": 10, "bb": 0.125}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "0.125" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([])

    def test_format_series(self):
        text = format_series("s", [(1, 0.5), (2, 0.25)])
        assert text.startswith("s:")
        assert "1:0.500" in text
