"""Tests for full software-pipeline expansion (prologue/kernel/epilogue)."""

import pytest

from repro.arch.configs import four_cluster_config, unified_config
from repro.codegen import expand_software_pipeline, schedule_code_size
from repro.core.bsa import BsaScheduler
from repro.core.unified import UnifiedScheduler
from repro.workloads.kernels import daxpy, figure7_graph


class TestExpansion:
    def test_instruction_count(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        code = expand_software_pipeline(sched)
        assert len(code) == (2 * sched.stage_count - 1) * sched.ii

    def test_useful_ops_equal_ops_times_stages(self, kernel_graph, unified):
        sched = UnifiedScheduler(unified).schedule(kernel_graph)
        code = expand_software_pipeline(sched)
        useful = sum(instr.useful_ops for instr in code)
        assert useful == len(sched.ops) * sched.stage_count

    def test_matches_code_size_model(self, kernel_graph, four_cluster):
        """The analytic code-size model equals the actually expanded code."""
        sched = BsaScheduler(four_cluster).schedule(kernel_graph)
        code = expand_software_pipeline(sched)
        size = schedule_code_size(sched)
        assert sum(i.total_slots for i in code) == size.total_ops
        assert sum(i.useful_ops for i in code) == size.useful_ops

    def test_prologue_ramps_up(self, unified):
        """Each prologue group adds one more stage's operations."""
        sched = UnifiedScheduler(unified).schedule(daxpy())
        if sched.stage_count < 3:
            pytest.skip("needs a multi-stage schedule")
        code = expand_software_pipeline(sched)
        ii = sched.ii
        group_useful = [
            sum(instr.useful_ops for instr in code[k * ii : (k + 1) * ii])
            for k in range(sched.stage_count - 1)
        ]
        assert group_useful == sorted(group_useful)

    def test_epilogue_drains(self, unified):
        sched = UnifiedScheduler(unified).schedule(daxpy())
        if sched.stage_count < 3:
            pytest.skip("needs a multi-stage schedule")
        code = expand_software_pipeline(sched)
        ii = sched.ii
        sc = sched.stage_count
        epilogue_start = sc * ii  # prologue (sc-1 groups) + kernel
        group_useful = [
            sum(
                instr.useful_ops
                for instr in code[epilogue_start + k * ii : epilogue_start + (k + 1) * ii]
            )
            for k in range(sc - 1)
        ]
        assert group_useful == sorted(group_useful, reverse=True)

    def test_kernel_group_contains_all_ops(self, two_cluster):
        sched = BsaScheduler(two_cluster).schedule(figure7_graph())
        code = expand_software_pipeline(sched)
        ii = sched.ii
        sc = sched.stage_count
        kernel = code[(sc - 1) * ii : sc * ii]
        assert sum(i.useful_ops for i in kernel) == len(sched.ops)
